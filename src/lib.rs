//! # pphw-repro — reproduction of *Generating Configurable Hardware from
//! Parallel Patterns*
//!
//! This crate re-exports the whole stack for convenience:
//!
//! * [`pphw_ir`] — the parallel pattern IR (Figure 2), interpreter, and
//!   analyses;
//! * [`pphw_transform`] — fusion/CSE/DCE, strip mining (Table 1),
//!   interchange (§4), tile copies, and the Figure 5c cost model;
//! * [`pphw_hw`] — template-based hardware generation (Table 4), memory
//!   allocation, metapipelining, the area model, and MaxJ emission;
//! * [`pphw_verify`] — the static semantic analyzers (IR verifier,
//!   parallelization race detector, metapipeline hazard checker) with
//!   stable `PPHW0xx` diagnostic codes;
//! * [`pphw_sim`] — the cycle-approximate DRAM/controller simulator;
//! * [`pphw`] — the compiler driver (`compile`, `evaluate`);
//! * [`pphw_apps`] — the six benchmarks of Table 5.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use pphw;
pub use pphw_apps;
pub use pphw_hw;
pub use pphw_ir;
pub use pphw_sim;
pub use pphw_transform;
pub use pphw_verify;
