//! Automated tile-size selection.
//!
//! The paper leaves tile sizes to the user and names automated selection
//! "through modeling and design space exploration" as future work (§4,
//! Discussion). This module implements that extension: it enumerates
//! dividing tile sizes per dimension, compiles each candidate, prunes
//! configurations that exceed the on-chip memory budget, and ranks the
//! rest by simulated cycles.

use pphw_sim::SimConfig;

use crate::{compile, CompileError, CompileOptions};
use pphw_ir::program::Program;

/// One evaluated tiling configuration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Tile size per tuned dimension.
    pub tiles: Vec<(String, i64)>,
    /// Simulated cycles of the metapipelined design.
    pub cycles: u64,
    /// On-chip memory bytes of the design.
    pub on_chip_bytes: u64,
}

/// The result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best configuration found.
    pub best: Candidate,
    /// Every evaluated configuration, best first.
    pub evaluated: Vec<Candidate>,
    /// Configurations skipped (budget exceeded or compile failure).
    pub skipped: usize,
}

/// Errors from tuning.
#[derive(Debug)]
pub enum TuneError {
    /// No dimension produced any feasible configuration.
    NoFeasibleConfig,
    /// A tuned dimension has no concrete size in the options.
    UnknownDim(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoFeasibleConfig => write!(f, "no feasible tiling configuration"),
            TuneError::UnknownDim(d) => write!(f, "tuned dimension `{d}` has no concrete size"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Power-of-two divisors of `n` in `[4, n)`, largest first.
fn tile_candidates(n: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut b = 4i64;
    while b < n {
        if n % b == 0 {
            out.push(b);
        }
        b *= 2;
    }
    out.reverse();
    out
}

/// Searches tile sizes for the named dimensions and returns the
/// cycle-optimal configuration of the metapipelined design.
///
/// The search is the exhaustive cross product of power-of-two dividing
/// tile sizes per dimension, capped at `max_evals` simulations (largest
/// tiles first, since locality usually favors them).
///
/// # Errors
///
/// Returns [`TuneError`] if a tuned dimension has no concrete size or no
/// configuration compiles within the on-chip budget.
pub fn autotune(
    prog: &Program,
    base: &CompileOptions,
    dims: &[&str],
    sim: &SimConfig,
    max_evals: usize,
) -> Result<TuneResult, TuneError> {
    // Candidate lists per dimension.
    let mut per_dim: Vec<(String, Vec<i64>)> = Vec::new();
    for d in dims {
        let n = base
            .sizes
            .iter()
            .find(|(k, _)| k == d)
            .map(|(_, v)| *v)
            .ok_or_else(|| TuneError::UnknownDim(d.to_string()))?;
        let cands = tile_candidates(n);
        if cands.is_empty() {
            return Err(TuneError::UnknownDim(d.to_string()));
        }
        per_dim.push((d.to_string(), cands));
    }

    // Cross product, depth-first, largest tiles first.
    let mut configs: Vec<Vec<(String, i64)>> = vec![Vec::new()];
    for (dim, cands) in &per_dim {
        let mut next = Vec::new();
        for cfg in &configs {
            for b in cands {
                let mut c = cfg.clone();
                c.push((dim.clone(), *b));
                next.push(c);
            }
        }
        configs = next;
    }
    configs.truncate(max_evals);

    let mut evaluated: Vec<Candidate> = Vec::new();
    let mut skipped = 0usize;
    for tiles in configs {
        let pairs: Vec<(&str, i64)> = tiles.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let opts = base.clone().tiles(&pairs);
        let compiled = match compile(prog, &opts) {
            Ok(c) => c,
            Err(CompileError::Tile(_)) | Err(CompileError::Hw(_)) => {
                skipped += 1;
                continue;
            }
        };
        let bytes = compiled.design.on_chip_bytes();
        if bytes > opts.on_chip_budget_bytes {
            skipped += 1;
            continue;
        }
        let report = compiled.simulate(sim);
        evaluated.push(Candidate {
            tiles: tiles.clone(),
            cycles: report.cycles,
            on_chip_bytes: bytes,
        });
    }
    evaluated.sort_by_key(|c| c.cycles);
    let best = evaluated
        .first()
        .cloned()
        .ok_or(TuneError::NoFeasibleConfig)?;
    Ok(TuneResult {
        best,
        evaluated,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_candidates_are_dividing_powers_of_two() {
        assert_eq!(tile_candidates(64), vec![32, 16, 8, 4]);
        assert_eq!(tile_candidates(48), vec![16, 8, 4]);
        assert!(tile_candidates(4).is_empty());
    }
}
