//! Automated tile-size selection — now a thin compatibility shim over the
//! [`pphw_dse`] design-space-exploration engine.
//!
//! The paper leaves tile sizes to the user and names automated selection
//! "through modeling and design space exploration" as future work (§4,
//! Discussion). The original implementation of this module compiled and
//! simulated every dividing tile size serially; that machinery now lives
//! in [`crate::dse`] (analytic prefilter, memoized parallel evaluation,
//! Pareto reporting). This module keeps the original single-objective
//! `autotune` entry point and its types for existing callers: it sweeps
//! tile sizes only — one parallelism factor, one substrate — and returns
//! the cycle-optimal configuration.

use pphw_dse::cache::EvalCache;
use pphw_dse::space::SearchSpace;
use pphw_dse::{DseConfig, DseError};
use pphw_sim::SimConfig;

use crate::dse::CompileEvaluator;
use crate::CompileOptions;
use pphw_ir::program::Program;

/// One evaluated tiling configuration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Tile size per tuned dimension.
    pub tiles: Vec<(String, i64)>,
    /// Simulated cycles of the metapipelined design.
    pub cycles: u64,
    /// On-chip memory bytes of the design.
    pub on_chip_bytes: u64,
}

/// The result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best configuration found.
    pub best: Candidate,
    /// Every evaluated configuration, best first.
    pub evaluated: Vec<Candidate>,
    /// Configurations skipped (pruned analytically, budget exceeded, or
    /// compile failure).
    pub skipped: usize,
}

/// Errors from tuning.
#[derive(Debug)]
pub enum TuneError {
    /// No dimension produced any feasible configuration.
    NoFeasibleConfig,
    /// A tuned dimension has no concrete size in the options.
    UnknownDim(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoFeasibleConfig => write!(f, "no feasible tiling configuration"),
            TuneError::UnknownDim(d) => write!(f, "tuned dimension `{d}` has no concrete size"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Searches tile sizes for the named dimensions and returns the
/// cycle-optimal configuration of the metapipelined design.
///
/// The search is the exhaustive cross product of power-of-two dividing
/// tile sizes per dimension, capped at `max_evals` simulations (largest
/// tiles first, since locality usually favors them). For joint sweeps over
/// parallelism factors and DRAM substrates, Pareto frontiers, and parallel
/// evaluation, use [`crate::dse::explore_program`] directly.
///
/// # Errors
///
/// Returns [`TuneError`] if a tuned dimension has no concrete size or no
/// configuration compiles within the on-chip budget.
pub fn autotune(
    prog: &Program,
    base: &CompileOptions,
    dims: &[&str],
    sim: &SimConfig,
    max_evals: usize,
) -> Result<TuneResult, TuneError> {
    let size_pairs: Vec<(&str, i64)> = base.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    // The evaluator lets the candidate's parallelism override any
    // meta_inner_par in the base options, so resolve the effective lanes
    // here to preserve the legacy behavior.
    let effective_par = match base.opt {
        crate::OptLevel::Metapipelined => base.meta_inner_par.unwrap_or(base.inner_par),
        _ => base.inner_par,
    };
    let mut space = SearchSpace::new(&size_pairs)
        .with_inner_pars(&[effective_par])
        .with_sim_variants(&[("tune", sim.clone())]);
    for d in dims {
        space = space.tune_dim(d).map_err(|e| match e {
            DseError::UnknownDim(d) => TuneError::UnknownDim(d),
            _ => TuneError::NoFeasibleConfig,
        })?;
    }

    let cfg = DseConfig {
        on_chip_budget_bytes: base.on_chip_budget_bytes,
        max_evals,
        ..DseConfig::default()
    };
    let evaluator = CompileEvaluator::new(prog, base);
    let report = pphw_dse::engine::explore(prog, &space, &evaluator, &EvalCache::new(), &cfg)
        .map_err(|e| match e {
            DseError::UnknownDim(d) => TuneError::UnknownDim(d),
            DseError::EmptySpace | DseError::NoFeasibleConfig => TuneError::NoFeasibleConfig,
        })?;

    let evaluated: Vec<Candidate> = report
        .evaluated
        .iter()
        .map(|p| Candidate {
            tiles: p.tiles.clone(),
            cycles: p.cycles,
            on_chip_bytes: p.on_chip_bytes,
        })
        .collect();
    let best = evaluated
        .first()
        .cloned()
        .ok_or(TuneError::NoFeasibleConfig)?;
    Ok(TuneResult {
        best,
        evaluated,
        skipped: report.stats.pruned_total() + report.stats.infeasible + report.stats.failed,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn tile_candidates_are_dividing_powers_of_two() {
        // The legacy candidate generator now lives in pphw-dse; the shim
        // relies on it keeping the same semantics.
        use pphw_dse::space::pow2_divisors;
        assert_eq!(pow2_divisors(64), vec![32, 16, 8, 4]);
        assert_eq!(pow2_divisors(48), vec![16, 8, 4]);
        assert!(pow2_divisors(4).is_empty());
    }
}
