//! Design-space exploration over the real compile+simulate pipeline.
//!
//! The generic engine lives in [`pphw_dse`] (below this crate in the
//! dependency graph); this module supplies the expensive part it is
//! parameterized over: [`CompileEvaluator`], which runs a candidate
//! through [`compile`] and [`Compiled::simulate`](crate::Compiled::simulate)
//! and enforces the authoritative post-compile on-chip budget check that
//! the analytic prefilter only approximates.
//!
//! ```no_run
//! use pphw::dse::{explore_program, CompileEvaluator};
//! use pphw::CompileOptions;
//! use pphw_dse::{DseConfig, SearchSpace};
//! # let prog: pphw_ir::program::Program = unimplemented!();
//!
//! let base = CompileOptions::new(&[("m", 256), ("n", 256)]);
//! let space = SearchSpace::new(&[("m", 256), ("n", 256)])
//!     .tune_dim("m").unwrap()
//!     .with_inner_pars(&[16, 32, 64]);
//! let report = explore_program(&prog, &base, &space, &DseConfig::default()).unwrap();
//! println!("{}", report.summary());
//! ```

use std::sync::Arc;

use pphw_dse::cache::{design_key, DesignCache, EvalCache};
use pphw_dse::report::DseReport;
use pphw_dse::space::{Candidate, SearchSpace};
use pphw_dse::{DseConfig, DseError, EvalOutcome, Evaluate, Measurement};

pub use pphw_dse::CapacityMode;
use pphw_ir::program::Program;
use pphw_verify::flow;

use crate::{compile, CompileOptions, Compiled};

/// The substrate-independent result of compiling one candidate: either a
/// generated design that fits the on-chip budget, or the reason it cannot
/// exist. Shared by every simulation variant of the same tile/parallelism
/// point through a [`DesignCache`], so a sweep with N substrate configs
/// compiles each distinct design once, not N times.
///
/// The budget verdict is cacheable because the budget is part of the
/// evaluator's salt (and therefore of the design key); an artifact is
/// never consulted under a different budget.
#[derive(Debug)]
pub enum DesignArtifact {
    /// Compilation succeeded and the design fits the on-chip budget.
    Ready {
        /// The compiled program + design (boxed: the variant is ~400
        /// bytes and shares an enum with a thin error string).
        compiled: Box<Compiled>,
        /// `compiled.design.on_chip_bytes()`, precomputed.
        on_chip_bytes: u64,
    },
    /// Compilation failed or the design exceeds the on-chip budget.
    Infeasible(String),
}

/// Evaluates a candidate by compiling the program with the candidate's
/// tile sizes and parallelism factor and simulating the generated design
/// on the candidate's substrate.
///
/// The candidate's `inner_par` is the parallelism being swept, so it
/// replaces both `inner_par` and any `meta_inner_par` override in the
/// base options — otherwise a fixed override would silently mask the
/// sweep. Every other base option (opt level, interchange, budget) is
/// preserved and folded into the cache salt so cached measurements are
/// never shared across differing pipelines.
pub struct CompileEvaluator<'a> {
    prog: &'a Program,
    base: CompileOptions,
    designs: Arc<DesignCache<DesignArtifact>>,
    capacity_mode: CapacityMode,
}

impl<'a> CompileEvaluator<'a> {
    /// Creates an evaluator for the program under the given base options,
    /// with a private (per-evaluator) design cache.
    #[must_use]
    pub fn new(prog: &'a Program, base: &CompileOptions) -> CompileEvaluator<'a> {
        CompileEvaluator::with_design_cache(prog, base, Arc::new(DesignCache::new()))
    }

    /// Like [`CompileEvaluator::new`] but shares a caller-owned design
    /// cache, so consecutive sweeps (or a driver inspecting hit counters)
    /// see compile reuse across evaluator instances.
    #[must_use]
    pub fn with_design_cache(
        prog: &'a Program,
        base: &CompileOptions,
        designs: Arc<DesignCache<DesignArtifact>>,
    ) -> CompileEvaluator<'a> {
        CompileEvaluator {
            prog,
            base: base.clone(),
            designs,
            capacity_mode: CapacityMode::default(),
        }
    }

    /// Sets how generated channel capacities are sized before measuring
    /// (see [`CapacityMode`]).
    #[must_use]
    pub fn with_capacity_mode(mut self, mode: CapacityMode) -> CompileEvaluator<'a> {
        self.capacity_mode = mode;
        self
    }

    /// The compile-artifact cache this evaluator consults.
    #[must_use]
    pub fn design_cache(&self) -> &DesignCache<DesignArtifact> {
        &self.designs
    }

    fn options_for(&self, c: &Candidate) -> CompileOptions {
        let mut opts = self.base.clone().tiles(&c.tile_pairs());
        opts.inner_par = c.inner_par;
        opts.meta_inner_par = None;
        opts
    }

    /// Compiles the candidate's design and applies the authoritative
    /// post-compile on-chip budget check (the analytic prefilter bounds
    /// this from below but cannot see double buffering or banking).
    fn build_artifact(&self, c: &Candidate) -> DesignArtifact {
        let opts = self.options_for(c);
        let mut compiled = match compile(self.prog, &opts) {
            Ok(compiled) => compiled,
            Err(e) => return DesignArtifact::Infeasible(e.to_string()),
        };
        // Resize channels per the candidate's swept scale, then (when
        // requested) normalize to the flow analyzer's minimal safe
        // depths. Both happen before the budget check and the area model,
        // so capacity decisions flow into cost exactly like generated
        // depths do.
        if c.cap_permille != 1000 {
            flow::scale_capacities(&mut compiled.design, c.cap_permille);
        }
        if self.capacity_mode == CapacityMode::InferredMinimal {
            flow::infer_capacities(&mut compiled.design);
        }
        let on_chip_bytes = compiled.design.on_chip_bytes();
        if on_chip_bytes > opts.on_chip_budget_bytes {
            return DesignArtifact::Infeasible(format!(
                "design needs {on_chip_bytes} on-chip bytes, budget is {}",
                opts.on_chip_budget_bytes
            ));
        }
        DesignArtifact::Ready {
            compiled: Box::new(compiled),
            on_chip_bytes,
        }
    }
}

impl Evaluate for CompileEvaluator<'_> {
    fn evaluate(&self, c: &Candidate) -> EvalOutcome {
        let key = design_key(&self.prog.name, &self.base.sizes, &self.cache_salt(), c);
        let artifact = self.designs.get_or_compute(key, || self.build_artifact(c));
        let (compiled, on_chip_bytes) = match &*artifact {
            DesignArtifact::Ready {
                compiled,
                on_chip_bytes,
            } => (compiled, *on_chip_bytes),
            DesignArtifact::Infeasible(e) => return EvalOutcome::Infeasible(e.clone()),
        };
        // A simulation failure (invalid substrate, cycle-budget overrun)
        // is not an infeasible *design* — record it as a failed
        // evaluation so the report says what was lost and the cache does
        // not pin the failure.
        let report = match compiled.simulate(&c.sim) {
            Ok(report) => report,
            Err(e) => return EvalOutcome::Failed(e.to_string()),
        };
        EvalOutcome::Feasible(Measurement {
            cycles: report.cycles,
            dram_words: report.dram_words,
            on_chip_bytes,
            area: compiled.area(),
        })
    }

    fn cache_salt(&self) -> String {
        // inner_par and meta_inner_par are intentionally absent: the
        // candidate overrides both, so they cannot influence a measurement.
        // The capacity mode only joins the salt off its default, so every
        // pre-existing cache entry keeps its key.
        let capmode = match self.capacity_mode {
            CapacityMode::AsGenerated => "",
            CapacityMode::InferredMinimal => ";capmode=inferred",
        };
        format!(
            "opt={:?};interchange={};budget={}{capmode}",
            self.base.opt, self.base.interchange, self.base.on_chip_budget_bytes
        )
    }

    fn area_hint(&self, c: &Candidate) -> Option<pphw_hw::Area> {
        // Compile-only: the design (and its area) is independent of the
        // candidate's substrate, so this shares the same cached artifact
        // the full evaluation would build — never a simulation.
        let key = design_key(&self.prog.name, &self.base.sizes, &self.cache_salt(), c);
        let artifact = self.designs.get_or_compute(key, || self.build_artifact(c));
        match &*artifact {
            DesignArtifact::Ready { compiled, .. } => Some(compiled.area()),
            DesignArtifact::Infeasible(_) => None,
        }
    }
}

/// One-call exploration: builds a [`CompileEvaluator`] and a fresh cache
/// and runs the engine.
///
/// # Errors
///
/// Returns [`DseError`] if the space is empty or no candidate survives
/// both the prefilter and compilation.
pub fn explore_program(
    prog: &Program,
    base: &CompileOptions,
    space: &SearchSpace,
    cfg: &DseConfig,
) -> Result<DseReport, DseError> {
    explore_with_cache(prog, base, space, cfg, &EvalCache::new())
}

/// Like [`explore_program`] but reuses a caller-owned cache, so repeated
/// or overlapping searches only compile points they have not seen.
///
/// # Errors
///
/// Returns [`DseError`] if the space is empty or no candidate survives
/// both the prefilter and compilation.
pub fn explore_with_cache(
    prog: &Program,
    base: &CompileOptions,
    space: &SearchSpace,
    cfg: &DseConfig,
    cache: &EvalCache,
) -> Result<DseReport, DseError> {
    explore_with_caches(prog, base, space, cfg, cache, Arc::new(DesignCache::new()))
}

/// Like [`explore_with_cache`] but additionally shares a caller-owned
/// compile-artifact cache, so each distinct design (tile config ×
/// parallelism) compiles exactly once per sweep no matter how many
/// substrate variants sample it, and drivers can report
/// [`DesignCache::builds`] / [`DesignCache::hits`] afterwards.
///
/// # Errors
///
/// Returns [`DseError`] if the space is empty or no candidate survives
/// both the prefilter and compilation.
pub fn explore_with_caches(
    prog: &Program,
    base: &CompileOptions,
    space: &SearchSpace,
    cfg: &DseConfig,
    cache: &EvalCache,
    designs: Arc<DesignCache<DesignArtifact>>,
) -> Result<DseReport, DseError> {
    // The prefilter runs the tiling transform before any compile; install
    // the per-pass verifier first so even pruned candidates are checked.
    crate::install_verifier();
    let evaluator = CompileEvaluator::with_design_cache(prog, base, designs)
        .with_capacity_mode(cfg.capacity_mode);
    pphw_dse::engine::explore(prog, space, &evaluator, cache, cfg)
}
