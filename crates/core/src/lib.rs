//! # pphw — parallel patterns to configurable hardware
//!
//! The compiler driver for this reproduction of *Generating Configurable
//! Hardware from Parallel Patterns*: one call takes a PPL program (built
//! with [`pphw_ir::builder::ProgramBuilder`]) through tiling (strip mining
//! plus interchange and tile copies), hardware generation (template
//! selection, memory allocation, metapipelining), and simulation.
//!
//! ```
//! use pphw::{compile, CompileOptions, OptLevel};
//! use pphw_ir::builder::ProgramBuilder;
//! use pphw_ir::types::DType;
//!
//! let mut b = ProgramBuilder::new("double");
//! let d = b.size("d");
//! let x = b.input("x", DType::F32, vec![d.clone()]);
//! let out = b.map(vec![d], |c, i| c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])])));
//! let prog = b.finish(vec![out]);
//!
//! let opts = CompileOptions::new(&[("d", 4096)])
//!     .tiles(&[("d", 512)])
//!     .opt(OptLevel::Metapipelined);
//! let compiled = compile(&prog, &opts).unwrap();
//! let report = compiled.simulate_default().unwrap();
//! assert!(report.cycles > 0);
//! ```

pub mod autotune;
pub mod dse;

use pphw_hw::design::DesignStyle;
use pphw_hw::{design_area, generate, Area, HwConfig, HwError};
use pphw_ir::interp::{EvalError, Interpreter, Value};
use pphw_ir::program::Program;
use pphw_ir::size::{Size, SizeEnv};
use pphw_sim::{simulate, simulate_with_faults, FaultConfig, SimConfig, SimError, SimReport};
use pphw_transform::cost::{analyze_cost, CostReport};
use pphw_transform::{tile_program, tile_program_no_interchange, TileConfig, TileError};

pub use pphw_hw::Design;
pub use pphw_verify::{VerifyConfig, VerifyReport};

/// Installs the deep (semantic) verifier into the transform pipeline's
/// per-pass checkpoint, once per process. After this, every tiling pass
/// is followed by a full IR verification (def-before-use, typing, shape
/// and arity consistency) whenever
/// [`pphw_transform::verification_enabled`] says so — always in debug
/// builds, and in release when `PPHW_VERIFY` is set.
///
/// [`compile`] and the DSE entry points call this themselves; it is
/// public so drivers that invoke `pphw_transform` directly get the same
/// coverage.
pub fn install_verifier() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        pphw_transform::install_deep_verifier(Box::new(|prog, _pass| {
            // Per-pass checks are parallelism-agnostic (the race detector
            // and hazard checker run at the endpoints, where inner_par
            // and the design are known), so the default config — which
            // disables the race check — is exactly right here.
            let report = pphw_verify::verify_program(prog, &pphw_verify::VerifyConfig::default());
            if report.is_clean() {
                Ok(())
            } else {
                Err(report.to_text().trim_end().to_string())
            }
        }));
    });
}

/// Optimization level — the three design points of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// HLS-style baseline: inner parallelism and burst locality only.
    Baseline,
    /// Automatic tiling, sequential stage composition.
    Tiled,
    /// Tiling plus metapipelining.
    Metapipelined,
}

impl OptLevel {
    /// All three levels in evaluation order.
    pub fn all() -> [OptLevel; 3] {
        [OptLevel::Baseline, OptLevel::Tiled, OptLevel::Metapipelined]
    }

    fn style(self) -> DesignStyle {
        match self {
            OptLevel::Baseline => DesignStyle::Baseline,
            OptLevel::Tiled => DesignStyle::Tiled,
            OptLevel::Metapipelined => DesignStyle::Metapipelined,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.style().fmt(f)
    }
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt: OptLevel,
    /// Concrete dimension sizes.
    pub sizes: Vec<(String, i64)>,
    /// Tile sizes per dimension (ignored for the baseline).
    pub tiles: Vec<(String, i64)>,
    /// Innermost parallelism factor (kept constant across levels, §6.1).
    pub inner_par: u32,
    /// On-chip memory budget in bytes.
    pub on_chip_budget_bytes: u64,
    /// Apply pattern interchange (disable to reproduce the Figure 5a
    /// strip-mined-only variant).
    pub interchange: bool,
    /// Parallelism override applied only at the metapipelined level —
    /// models the paper's per-benchmark stage parallelization ("we
    /// parallelize the vector outer product stage", §6.2).
    pub meta_inner_par: Option<u32>,
}

impl CompileOptions {
    /// Creates options with the given concrete sizes.
    pub fn new(sizes: &[(&str, i64)]) -> Self {
        CompileOptions {
            opt: OptLevel::Metapipelined,
            sizes: sizes.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            tiles: Vec::new(),
            inner_par: 64,
            on_chip_budget_bytes: 6 * 1024 * 1024,
            interchange: true,
            meta_inner_par: None,
        }
    }

    /// Sets tile sizes.
    pub fn tiles(mut self, tiles: &[(&str, i64)]) -> Self {
        self.tiles = tiles.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self
    }

    /// Sets the optimization level.
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Sets the innermost parallelism factor.
    pub fn inner_par(mut self, lanes: u32) -> Self {
        self.inner_par = lanes;
        self
    }

    /// Enables or disables interchange.
    pub fn interchange(mut self, on: bool) -> Self {
        self.interchange = on;
        self
    }

    /// Sets the metapipelined-level parallelism override.
    pub fn meta_inner_par(mut self, lanes: u32) -> Self {
        self.meta_inner_par = Some(lanes);
        self
    }

    fn size_pairs(&self) -> Vec<(&str, i64)> {
        self.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    fn tile_pairs(&self) -> Vec<(&str, i64)> {
        self.tiles.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    /// The size environment.
    pub fn env(&self) -> SizeEnv {
        Size::env(&self.size_pairs())
    }

    fn tile_config(&self) -> TileConfig {
        TileConfig::new(&self.tile_pairs(), &self.size_pairs())
            .with_budget(self.on_chip_budget_bytes)
    }

    fn hw_config(&self) -> HwConfig {
        let mut cfg = match self.opt {
            OptLevel::Baseline => HwConfig::baseline(),
            OptLevel::Tiled => HwConfig::default().with_metapipeline(false),
            OptLevel::Metapipelined => HwConfig::default(),
        };
        cfg.inner_par = match self.opt {
            OptLevel::Metapipelined => self.meta_inner_par.unwrap_or(self.inner_par),
            _ => self.inner_par,
        };
        cfg.on_chip_budget_bytes = self.on_chip_budget_bytes;
        cfg
    }
}

/// Errors from any stage of the pipeline: tiling, hardware generation,
/// simulation, or reference interpretation.
///
/// Every fallible entry point in this crate returns this type, so a
/// driver (or the DSE engine) can run untrusted configurations end to
/// end and get a structured error instead of a panic.
#[derive(Debug)]
pub enum PphwError {
    /// Tiling failed.
    Tile(TileError),
    /// Hardware generation failed.
    Hw(HwError),
    /// Simulation rejected the configuration or exceeded its budget.
    Sim(SimError),
    /// The reference interpreter rejected the program or its inputs.
    Eval(EvalError),
}

/// Historical name for [`PphwError`], kept for the compile-stage entry
/// points ([`compile`], [`evaluate`]). The variants are shared: a
/// `CompileError` from [`compile`] can only be `Tile` or `Hw`.
pub type CompileError = PphwError;

impl std::fmt::Display for PphwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PphwError::Tile(e) => write!(f, "tiling failed: {e}"),
            PphwError::Hw(e) => write!(f, "hardware generation failed: {e}"),
            PphwError::Sim(e) => write!(f, "simulation failed: {e}"),
            PphwError::Eval(e) => write!(f, "interpretation failed: {e}"),
        }
    }
}

impl std::error::Error for PphwError {}

impl From<TileError> for PphwError {
    fn from(e: TileError) -> Self {
        PphwError::Tile(e)
    }
}

impl From<HwError> for PphwError {
    fn from(e: HwError) -> Self {
        PphwError::Hw(e)
    }
}

impl From<SimError> for PphwError {
    fn from(e: SimError) -> Self {
        PphwError::Sim(e)
    }
}

impl From<EvalError> for PphwError {
    fn from(e: EvalError) -> Self {
        PphwError::Eval(e)
    }
}

/// A compiled application: transformed IR plus the generated design.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The (possibly tiled) program the design implements.
    pub program: Program,
    /// The hardware design.
    pub design: Design,
    /// Options used.
    pub options: CompileOptions,
}

impl Compiled {
    /// Simulates the design with the given DRAM/clock parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PphwError::Sim`] if the configuration is invalid or the
    /// run exceeds its cycle budget.
    pub fn simulate(&self, cfg: &SimConfig) -> Result<SimReport, PphwError> {
        Ok(simulate(&self.design, cfg)?)
    }

    /// Simulates with deterministic fault injection (DRAM latency jitter,
    /// bandwidth degradation windows, transient burst failures).
    ///
    /// # Errors
    ///
    /// Returns [`PphwError::Sim`] if either configuration is invalid or
    /// the run exceeds its cycle budget.
    pub fn simulate_with_faults(
        &self,
        cfg: &SimConfig,
        faults: &FaultConfig,
    ) -> Result<SimReport, PphwError> {
        Ok(simulate_with_faults(&self.design, cfg, faults)?)
    }

    /// Simulates with default (Max4 Maia class) parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PphwError::Sim`] if the run exceeds the default cycle
    /// budget.
    pub fn simulate_default(&self) -> Result<SimReport, PphwError> {
        self.simulate(&SimConfig::default())
    }

    /// Area estimate of the design.
    pub fn area(&self) -> Area {
        design_area(&self.design)
    }

    /// Memory traffic / on-chip storage analysis of the transformed IR
    /// (the Figure 5c table).
    pub fn cost(&self) -> CostReport {
        analyze_cost(&self.program)
    }

    /// Executes the transformed program on concrete inputs via the
    /// reference interpreter — the functional semantics of the design.
    ///
    /// # Errors
    ///
    /// Returns [`PphwError::Eval`] on malformed inputs.
    pub fn execute(&self, inputs: Vec<Value>) -> Result<Vec<Value>, PphwError> {
        Ok(Interpreter::with_env(&self.program, self.options.env()).run(inputs)?)
    }

    /// Emits MaxJ-style HGL for the design.
    pub fn emit_hgl(&self) -> String {
        pphw_hw::hgl::emit_maxj(&self.design)
    }

    /// Runs the full static analyzer — IR verifier, race detector at this
    /// compilation's effective parallelism, and the metapipeline hazard
    /// checker over the generated design — and returns every finding.
    pub fn verify(&self) -> VerifyReport {
        let cfg = VerifyConfig {
            inner_par: self.options.hw_config().inner_par,
            on_chip_budget_bytes: Some(self.options.on_chip_budget_bytes),
            ..VerifyConfig::default()
        };
        let mut report = pphw_verify::verify_program(&self.program, &cfg);
        report.merge(pphw_verify::verify_design(&self.design, &cfg));
        report
    }
}

/// Compiles a PPL program at the requested optimization level.
///
/// # Errors
///
/// Returns a [`CompileError`] if tiling or hardware generation fails.
pub fn compile(prog: &Program, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    install_verifier();
    let transformed = match opts.opt {
        OptLevel::Baseline => prog.clone(),
        OptLevel::Tiled | OptLevel::Metapipelined => {
            let cfg = opts.tile_config();
            if opts.interchange {
                tile_program(prog, &cfg)?
            } else {
                tile_program_no_interchange(prog, &cfg)?
            }
        }
    };
    let design = generate(
        &transformed,
        &opts.env(),
        &opts.hw_config(),
        opts.opt.style(),
    )?;
    Ok(Compiled {
        program: transformed,
        design,
        options: opts.clone(),
    })
}

/// One row of a Figure 7-style evaluation.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Optimization level.
    pub opt: OptLevel,
    /// Simulated cycles.
    pub cycles: u64,
    /// Speedup over the baseline.
    pub speedup: f64,
    /// Resource use relative to the baseline (logic, FF, mem).
    pub relative_area: Area,
    /// Absolute area.
    pub area: Area,
    /// DRAM words requested.
    pub dram_words: u64,
}

/// A complete three-point evaluation of one benchmark.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Benchmark name.
    pub name: String,
    /// Baseline / tiled / metapipelined rows, in that order.
    pub rows: Vec<EvalRow>,
}

impl Evaluation {
    /// The row for a given level, if that level was evaluated.
    pub fn try_row(&self, opt: OptLevel) -> Option<&EvalRow> {
        self.rows.iter().find(|r| r.opt == opt)
    }

    /// The row for a given level.
    ///
    /// # Panics
    ///
    /// Panics if the level was not evaluated; [`evaluate`] always
    /// produces all three levels, so this only fires on hand-built
    /// `Evaluation`s. Use [`Evaluation::try_row`] when that matters.
    pub fn row(&self, opt: OptLevel) -> &EvalRow {
        match self.try_row(opt) {
            Some(r) => r,
            None => panic!("level {opt} was not evaluated"),
        }
    }

    /// Formats the evaluation as a text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<26} {:>14} {:>9} {:>8} {:>8} {:>8} {:>14}\n",
            self.name, "cycles", "speedup", "logic", "FF", "mem", "DRAM words"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<24} {:>14} {:>8.1}x {:>8.2} {:>8.2} {:>8.2} {:>14}\n",
                r.opt.to_string(),
                r.cycles,
                r.speedup,
                r.relative_area.logic,
                r.relative_area.ff,
                r.relative_area.mem,
                r.dram_words
            ));
        }
        out
    }
}

/// Runs the full baseline/tiled/metapipelined comparison for one program —
/// the experiment behind Figure 7.
///
/// # Errors
///
/// Returns a [`PphwError`] if any level fails to compile or simulate.
pub fn evaluate(
    prog: &Program,
    opts: &CompileOptions,
    sim: &SimConfig,
) -> Result<Evaluation, CompileError> {
    let mut rows = Vec::new();
    let mut base_cycles = None;
    let mut base_area = None;
    for level in OptLevel::all() {
        let compiled = compile(prog, &opts.clone().opt(level))?;
        let report = compiled.simulate(sim)?;
        let area = compiled.area();
        let bc = *base_cycles.get_or_insert(report.cycles);
        let ba = *base_area.get_or_insert(area);
        rows.push(EvalRow {
            opt: level,
            cycles: report.cycles,
            speedup: bc as f64 / report.cycles.max(1) as f64,
            relative_area: area.relative_to(ba),
            area,
            dram_words: report.dram_words,
        });
    }
    Ok(Evaluation {
        name: prog.name.clone(),
        rows,
    })
}
