//! Compiler-driver tests: options plumbing, error paths, and the
//! level-to-design mapping.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw::{compile, evaluate, CompileError, CompileOptions, OptLevel};
use pphw_hw::design::{CtrlKind, DesignStyle};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_sim::SimConfig;

fn sumrows_program() -> Program {
    let mut b = ProgramBuilder::new("sumrows");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m], |c, i| {
            let i = i[0];
            c.fold(
                "rowsum",
                vec![n.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

#[test]
fn indivisible_tile_is_a_compile_error() {
    let prog = sumrows_program();
    let opts = CompileOptions::new(&[("m", 100), ("n", 64)])
        .tiles(&[("m", 33)])
        .opt(OptLevel::Tiled);
    match compile(&prog, &opts) {
        Err(CompileError::Tile(_)) => {}
        other => panic!("expected tile error, got {other:?}"),
    }
}

#[test]
fn baseline_ignores_tiles() {
    // The same bad tile config compiles fine at the baseline level.
    let prog = sumrows_program();
    let opts = CompileOptions::new(&[("m", 100), ("n", 64)])
        .tiles(&[("m", 33)])
        .opt(OptLevel::Baseline);
    let compiled = compile(&prog, &opts).expect("baseline ignores tiling");
    assert_eq!(compiled.design.style, DesignStyle::Baseline);
}

#[test]
fn levels_map_to_design_styles() {
    let prog = sumrows_program();
    let base = CompileOptions::new(&[("m", 64), ("n", 64)]).tiles(&[("m", 16)]);
    for (level, style) in [
        (OptLevel::Baseline, DesignStyle::Baseline),
        (OptLevel::Tiled, DesignStyle::Tiled),
        (OptLevel::Metapipelined, DesignStyle::Metapipelined),
    ] {
        let compiled = compile(&prog, &base.clone().opt(level)).expect("compiles");
        assert_eq!(compiled.design.style, style);
    }
}

#[test]
fn metapipelined_level_has_memory_overlap_tiled_does_not() {
    let prog = sumrows_program();
    let base = CompileOptions::new(&[("m", 256), ("n", 256)]).tiles(&[("m", 32)]);
    let tiled = compile(&prog, &base.clone().opt(OptLevel::Tiled)).expect("tiled");
    let meta = compile(&prog, &base.clone().opt(OptLevel::Metapipelined)).expect("meta");
    let has_mem_meta = |d: &pphw_hw::Design| {
        let mut found = false;
        d.root.visit_ctrls(&mut |c| {
            if c.kind == CtrlKind::Metapipeline {
                let mem = c.stages.iter().any(|s| {
                    let mut m = false;
                    s.visit_units(&mut |u| {
                        if !u.streams.is_empty() {
                            m = true;
                        }
                    });
                    m
                });
                if mem {
                    found = true;
                }
            }
        });
        found
    };
    assert!(has_mem_meta(&meta.design), "{}", meta.design.to_diagram());
    assert!(
        !has_mem_meta(&tiled.design),
        "{}",
        tiled.design.to_diagram()
    );
}

#[test]
fn interchange_toggle_changes_the_ir() {
    // Figure 5a (no interchange) vs 5b for a gemm-shaped nest.
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    let prog = b.finish(vec![out]);
    let base = CompileOptions::new(&[("m", 32), ("n", 32), ("p", 32)]).tiles(&[
        ("m", 8),
        ("n", 8),
        ("p", 8),
    ]);
    let with_ic = compile(&prog, &base.clone()).expect("interchange on");
    let without = compile(&prog, &base.clone().interchange(false)).expect("interchange off");
    assert_ne!(
        pphw_ir::pretty::print_program(&with_ic.program),
        pphw_ir::pretty::print_program(&without.program)
    );
}

#[test]
fn meta_inner_par_only_affects_metapipelined_level() {
    let prog = sumrows_program();
    let base = CompileOptions::new(&[("m", 256), ("n", 256)])
        .tiles(&[("m", 32)])
        .inner_par(16)
        .meta_inner_par(64);
    let sim = SimConfig::default();
    let tiled16 = compile(&prog, &base.clone().opt(OptLevel::Tiled)).expect("t");
    let tiled_ref = compile(
        &prog,
        &CompileOptions::new(&[("m", 256), ("n", 256)])
            .tiles(&[("m", 32)])
            .inner_par(16)
            .opt(OptLevel::Tiled),
    )
    .expect("t2");
    assert_eq!(
        tiled16.simulate(&sim).expect("simulates").cycles,
        tiled_ref.simulate(&sim).expect("simulates").cycles,
        "meta_inner_par must not change the tiled design"
    );
    let meta64 = compile(&prog, &base.clone().opt(OptLevel::Metapipelined)).expect("m");
    let meta16 = compile(
        &prog,
        &CompileOptions::new(&[("m", 256), ("n", 256)])
            .tiles(&[("m", 32)])
            .inner_par(16)
            .opt(OptLevel::Metapipelined),
    )
    .expect("m2");
    assert!(
        meta64.simulate(&sim).expect("simulates").cycles
            < meta16.simulate(&sim).expect("simulates").cycles,
        "wider metapipelined design should be faster"
    );
}

#[test]
fn evaluate_reports_three_monotone_rows() {
    let prog = sumrows_program();
    let opts = CompileOptions::new(&[("m", 512), ("n", 256)]).tiles(&[("m", 64)]);
    let eval = evaluate(&prog, &opts, &SimConfig::default()).expect("evaluates");
    let b = eval.row(OptLevel::Baseline);
    let t = eval.row(OptLevel::Tiled);
    let m = eval.row(OptLevel::Metapipelined);
    assert!(b.cycles >= t.cycles, "tiling should help sumrows");
    assert!(t.cycles >= m.cycles, "metapipelining should help sumrows");
    assert!(m.speedup >= t.speedup && t.speedup > 1.0);
}

#[test]
fn options_builders_chain() {
    let opts = CompileOptions::new(&[("n", 10)])
        .tiles(&[("n", 5)])
        .inner_par(8)
        .interchange(false)
        .meta_inner_par(32)
        .opt(OptLevel::Tiled);
    assert_eq!(opts.inner_par, 8);
    assert!(!opts.interchange);
    assert_eq!(opts.meta_inner_par, Some(32));
    assert_eq!(opts.env().get("n"), Some(&10));
}

#[test]
fn opt_level_display_names() {
    assert_eq!(OptLevel::Baseline.to_string(), "baseline");
    assert_eq!(OptLevel::Tiled.to_string(), "+tiling");
    assert_eq!(
        OptLevel::Metapipelined.to_string(),
        "+tiling+metapipelining"
    );
}

#[test]
fn autotune_finds_a_good_gemm_tile() {
    use pphw::autotune::autotune;
    let prog = gemm_program();
    let base = CompileOptions::new(&[("m", 128), ("n", 128), ("p", 128)]);
    let sim = SimConfig::default();
    let result = autotune(&prog, &base, &["m", "n", "p"], &sim, 64).expect("tunes");
    assert!(!result.evaluated.is_empty());
    // The best config is at least as fast as the smallest-tile config.
    let worst = result.evaluated.last().expect("non-empty");
    assert!(result.best.cycles <= worst.cycles);
    // And beats an arbitrary small tiling by a sane margin.
    let small =
        compile(&prog, &base.clone().tiles(&[("m", 4), ("n", 4), ("p", 4)])).expect("compiles");
    assert!(
        result.best.cycles <= small.simulate(&sim).expect("simulates").cycles,
        "autotuned {} vs 4x4x4 {}",
        result.best.cycles,
        small.simulate(&sim).expect("simulates").cycles
    );
    // The chosen design respects the budget.
    assert!(result.best.on_chip_bytes <= base.on_chip_budget_bytes);
}

#[test]
fn autotune_rejects_unknown_dimension() {
    let prog = sumrows_program();
    let base = CompileOptions::new(&[("m", 64), ("n", 64)]);
    let r = pphw::autotune::autotune(&prog, &base, &["zzz"], &SimConfig::default(), 8);
    assert!(matches!(r, Err(pphw::autotune::TuneError::UnknownDim(_))));
}

#[test]
fn autotune_reports_no_feasible_config_under_tiny_budget() {
    // Gemm's interchanged (b_m, b_n) accumulator tile is mandatory and
    // needs at least 4x4x4 = 64 bytes; a 16-byte budget rejects every
    // candidate, analytically or at the post-compile check.
    let prog = gemm_program();
    let mut base = CompileOptions::new(&[("m", 32), ("n", 32), ("p", 32)]);
    base.on_chip_budget_bytes = 16;
    let r = pphw::autotune::autotune(&prog, &base, &["m", "n", "p"], &SimConfig::default(), 64);
    assert!(matches!(
        r,
        Err(pphw::autotune::TuneError::NoFeasibleConfig)
    ));
}

#[test]
fn autotune_counts_skipped_configurations() {
    // A budget that admits small gemm tiles but rejects the largest ones:
    // the shim surfaces the engine's prune + infeasible tally as `skipped`.
    let prog = gemm_program();
    let mut base = CompileOptions::new(&[("m", 32), ("n", 32), ("p", 32)]);
    base.on_chip_budget_bytes = 2 * 1024;
    let r = pphw::autotune::autotune(&prog, &base, &["m", "n", "p"], &SimConfig::default(), 64)
        .expect("small tiles fit");
    assert!(!r.evaluated.is_empty());
    assert!(r.skipped > 0, "large tiles must be skipped");
    assert!(r.best.on_chip_bytes <= base.on_chip_budget_bytes);
}
