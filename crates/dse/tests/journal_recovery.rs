//! Crash-recovery tests for the journaled evaluation cache: a kill-matrix
//! that cuts or corrupts the journal at every byte boundary of the last
//! record, compaction under concurrent append, and checkpoint semantics.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use pphw_dse::cache::EvalCache;
use pphw_dse::{journal_path, EvalOutcome, JournalConfig, Measurement};
use pphw_hw::Area;

/// Bytes of the journal header (magic + version).
const HEADER: u64 = 12;
/// Bytes of one journaled `Feasible` record: key u64 + len u32 +
/// payload (tag byte + 3×u64 + 3×f64-bits = 49) + checksum u64.
const FEASIBLE_RECORD: u64 = 8 + 4 + 49 + 8;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pphw-journal-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn feasible(cycles: u64) -> EvalOutcome {
    EvalOutcome::Feasible(Measurement {
        cycles,
        dram_words: cycles + 1,
        on_chip_bytes: cycles + 2,
        area: Area {
            logic: 1.0,
            ff: 2.0,
            mem: 3.0,
        },
    })
}

/// Every insert on a journaled cache survives a reopen, including
/// `Infeasible`; `Failed` is never journaled.
#[test]
fn journaled_inserts_survive_reopen() {
    let dir = fresh_dir("reopen");
    let path = dir.join("evals.pphwc");
    {
        let cache = EvalCache::open_journaled(&path).unwrap();
        assert!(cache.is_journaled());
        cache.insert(1, feasible(100));
        cache.insert(2, EvalOutcome::Infeasible("too big".into()));
        cache.insert(3, EvalOutcome::Failed("transient".into()));
        // No checkpoint, no cooperative save: the journal alone carries it.
    }
    let reopened = EvalCache::open_journaled(&path).unwrap();
    assert_eq!(reopened.get(1), Some(feasible(100)));
    assert_eq!(
        reopened.get(2),
        Some(EvalOutcome::Infeasible("too big".into()))
    );
    assert!(reopened.get(3).is_none(), "Failed must not be journaled");
    let stats = reopened.journal_stats().unwrap();
    assert_eq!(stats.recovered_journal, 2);
    assert_eq!(stats.recovered_snapshot, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The kill-matrix: with N flushed fixed-size records, truncating the
/// journal at EVERY byte boundary recovers exactly the complete-record
/// prefix, truncates the torn tail on disk, and accepts new appends.
#[test]
fn kill_matrix_truncation_at_every_byte() {
    let dir = fresh_dir("killmatrix");
    let path = dir.join("evals.pphwc");
    const N: u64 = 5;
    {
        let cache = EvalCache::open_journaled_with(
            &path,
            JournalConfig {
                sync_every: 1,
                compact_bytes: u64::MAX,
            },
        )
        .unwrap();
        for k in 0..N {
            cache.insert(k, feasible(1000 + k));
        }
    }
    let full = std::fs::read(journal_path(&path)).unwrap();
    assert_eq!(full.len() as u64, HEADER + N * FEASIBLE_RECORD);

    for cut in 0..=full.len() {
        let case = dir.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&case).unwrap();
        let snap = case.join("evals.pphwc");
        std::fs::write(journal_path(&snap), &full[..cut]).unwrap();

        let expected = if (cut as u64) < HEADER {
            0
        } else {
            (cut as u64 - HEADER) / FEASIBLE_RECORD
        };
        let cache = EvalCache::open_journaled_with(
            &snap,
            JournalConfig {
                sync_every: 1,
                compact_bytes: u64::MAX,
            },
        )
        .unwrap();
        assert_eq!(
            cache.len() as u64,
            expected,
            "cut at byte {cut}: wrong recovery count"
        );
        for k in 0..expected {
            assert_eq!(cache.get(k), Some(feasible(1000 + k)), "cut {cut} key {k}");
        }
        // The torn tail is gone from disk: appends resume on a record
        // boundary and survive the next reopen.
        cache.insert(900 + cut as u64, feasible(7));
        drop(cache);
        let on_disk = std::fs::read(journal_path(&snap)).unwrap();
        assert_eq!(
            on_disk.len() as u64,
            HEADER + (expected + 1) * FEASIBLE_RECORD,
            "cut {cut}: tail not truncated"
        );
        let reopened = EvalCache::open_journaled(&snap).unwrap();
        assert_eq!(reopened.len() as u64, expected + 1);
        assert_eq!(reopened.get(900 + cut as u64), Some(feasible(7)));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupting any single byte of the LAST record loses only that record:
/// the intact prefix survives bit-exact.
#[test]
fn corrupting_last_record_loses_only_that_record() {
    let dir = fresh_dir("corrupt-last");
    let path = dir.join("evals.pphwc");
    const N: u64 = 4;
    {
        let cache = EvalCache::open_journaled_with(
            &path,
            JournalConfig {
                sync_every: 1,
                compact_bytes: u64::MAX,
            },
        )
        .unwrap();
        for k in 0..N {
            cache.insert(k, feasible(2000 + k));
        }
    }
    let full = std::fs::read(journal_path(&path)).unwrap();
    let last_start = (HEADER + (N - 1) * FEASIBLE_RECORD) as usize;

    for offset in last_start..full.len() {
        let case = dir.join(format!("flip-{offset}"));
        std::fs::create_dir_all(&case).unwrap();
        let snap = case.join("evals.pphwc");
        let mut bytes = full.clone();
        bytes[offset] ^= 0xA5;
        std::fs::write(journal_path(&snap), &bytes).unwrap();

        let cache = EvalCache::open_journaled(&snap).unwrap();
        assert_eq!(
            cache.len() as u64,
            N - 1,
            "flip at byte {offset}: prefix lost or corrupt record accepted"
        );
        for k in 0..N - 1 {
            assert_eq!(cache.get(k), Some(feasible(2000 + k)));
        }
        let stats = cache.journal_stats().unwrap();
        assert!(
            stats.torn_tail_bytes >= FEASIBLE_RECORD,
            "flip {offset}: torn tail not counted ({stats:?})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A journal that outgrows `compact_bytes` is folded into the snapshot
/// and reset; nothing is lost across the compactions and the journal file
/// stays bounded.
#[test]
fn compaction_bounds_journal_and_loses_nothing() {
    let dir = fresh_dir("compaction");
    let path = dir.join("evals.pphwc");
    let cfg = JournalConfig {
        sync_every: 1,
        // Roughly three Feasible records.
        compact_bytes: 3 * FEASIBLE_RECORD,
    };
    const N: u64 = 20;
    {
        let cache = EvalCache::open_journaled_with(&path, cfg).unwrap();
        for k in 0..N {
            cache.insert(k, feasible(3000 + k));
        }
        let stats = cache.journal_stats().unwrap();
        assert!(
            stats.compactions >= 4,
            "expected many compactions: {stats:?}"
        );
        assert_eq!(stats.appended, N);
    }
    // The journal never grew past threshold + one record.
    let jnl = std::fs::read(journal_path(&path)).unwrap();
    assert!(
        (jnl.len() as u64) <= cfg.compact_bytes + FEASIBLE_RECORD,
        "journal not bounded: {} bytes",
        jnl.len()
    );
    // The snapshot now exists and, with the journal tail, covers all N.
    let reopened = EvalCache::open_journaled_with(&path, cfg).unwrap();
    assert_eq!(reopened.len() as u64, N);
    for k in 0..N {
        assert_eq!(reopened.get(k), Some(feasible(3000 + k)));
    }
    let stats = reopened.journal_stats().unwrap();
    assert!(
        stats.recovered_snapshot > 0,
        "compaction never published a snapshot: {stats:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction racing concurrent appenders: every key inserted by any
/// thread is durable, whether it landed in the snapshot or the journal.
#[test]
fn compaction_under_concurrent_append_loses_nothing() {
    let dir = fresh_dir("concurrent");
    let path = dir.join("evals.pphwc");
    let cfg = JournalConfig {
        sync_every: 2,
        compact_bytes: 4 * FEASIBLE_RECORD,
    };
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50;
    {
        let cache = EvalCache::open_journaled_with(&path, cfg).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let key = t * 10_000 + i;
                        cache.insert(key, feasible(key));
                    }
                });
            }
        });
        assert_eq!(cache.len() as u64, THREADS * PER_THREAD);
    }
    let reopened = EvalCache::open_journaled_with(&path, cfg).unwrap();
    assert_eq!(reopened.len() as u64, THREADS * PER_THREAD);
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = t * 10_000 + i;
            assert_eq!(reopened.get(key), Some(feasible(key)), "lost key {key}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `checkpoint` folds everything into the snapshot and empties the
/// journal, so the next open replays nothing.
#[test]
fn checkpoint_empties_journal_and_publishes_snapshot() {
    let dir = fresh_dir("checkpoint");
    let path = dir.join("evals.pphwc");
    let cache = EvalCache::open_journaled(&path).unwrap();
    for k in 0..6u64 {
        cache.insert(k, feasible(4000 + k));
    }
    cache.checkpoint().unwrap();
    let jnl = std::fs::read(journal_path(&path)).unwrap();
    assert_eq!(jnl.len() as u64, HEADER, "checkpoint left journal records");
    drop(cache);

    let reopened = EvalCache::open_journaled(&path).unwrap();
    assert_eq!(reopened.len(), 6);
    let stats = reopened.journal_stats().unwrap();
    assert_eq!(stats.recovered_snapshot, 6);
    assert_eq!(stats.recovered_journal, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Journal entries are newer than the snapshot and win on key collision.
#[test]
fn journal_replay_wins_over_snapshot() {
    let dir = fresh_dir("replay-wins");
    let path = dir.join("evals.pphwc");
    {
        let cache = EvalCache::open_journaled(&path).unwrap();
        cache.insert(1, feasible(111));
        cache.checkpoint().unwrap(); // snapshot: key 1 -> 111
        cache.insert(1, feasible(222)); // journal only: key 1 -> 222
    }
    let reopened = EvalCache::open_journaled(&path).unwrap();
    assert_eq!(reopened.get(1), Some(feasible(222)));
    std::fs::remove_dir_all(&dir).ok();
}

/// A foreign or half-written journal header is treated as empty — the
/// snapshot still loads, nothing panics, and the journal is rebuilt.
#[test]
fn foreign_journal_header_degrades_to_snapshot_only() {
    let dir = fresh_dir("foreign-header");
    let path = dir.join("evals.pphwc");
    {
        let cache = EvalCache::open_journaled(&path).unwrap();
        cache.insert(1, feasible(10));
        cache.checkpoint().unwrap();
    }
    std::fs::write(journal_path(&path), b"NOTAJRNL").unwrap();
    let reopened = EvalCache::open_journaled(&path).unwrap();
    assert_eq!(reopened.get(1), Some(feasible(10)));
    let stats = reopened.journal_stats().unwrap();
    assert_eq!(stats.recovered_journal, 0);
    // And it is usable again.
    reopened.insert(2, feasible(20));
    drop(reopened);
    let again = EvalCache::open_journaled(&path).unwrap();
    assert_eq!(again.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// The journal API is a harmless no-op on an unjournaled cache.
#[test]
fn unjournaled_cache_noops() {
    let cache = EvalCache::new();
    cache.insert(1, feasible(1));
    assert!(!cache.is_journaled());
    assert!(cache.journal_stats().is_none());
    cache.flush_journal().unwrap();
    cache.checkpoint().unwrap();
    assert_eq!(cache.len(), 1);
}
