//! Search results: the best point, the Pareto frontier, evaluation
//! counts, and JSON/CSV export (hand-rolled — the workspace carries no
//! serialization dependency).

use pphw_hw::Area;

/// One evaluated (feasible) point of the search space.
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// Candidate identity, e.g. `m=32,n=16 par=64 sim=max4`.
    pub label: String,
    /// Tile size per tuned dimension.
    pub tiles: Vec<(String, i64)>,
    /// Innermost parallelism factor.
    pub inner_par: u32,
    /// Simulation substrate variant.
    pub sim_label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Useful DRAM words requested during simulation.
    pub dram_words: u64,
    /// On-chip memory footprint of the generated design.
    pub on_chip_bytes: u64,
    /// Estimated design area.
    pub area: Area,
    /// Scalar area objective (worst-case device utilization fraction).
    pub area_score: f64,
    /// The calibrated cost model's cycle prediction for this point, when
    /// the search ran guided (`None` under exhaustive search). Reported
    /// next to the measured cycles so model quality is auditable from the
    /// report alone.
    pub predicted_cycles: Option<f64>,
}

impl EvaluatedPoint {
    /// Relative error of the model's prediction against the measurement:
    /// `(predicted - actual) / actual`. `None` when there is no
    /// prediction or the measurement is zero cycles.
    #[must_use]
    pub fn prediction_error(&self) -> Option<f64> {
        let predicted = self.predicted_cycles?;
        if self.cycles == 0 {
            return None;
        }
        Some((predicted - self.cycles as f64) / self.cycles as f64)
    }
}

/// A candidate whose evaluation failed outright (evaluator panic caught
/// by the pool, or an internal error such as a simulation budget
/// overrun). These are listed in the report so a sweep that lost points
/// says so instead of silently shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedPoint {
    /// Candidate identity, e.g. `m=32,n=16 par=64 sim=max4`.
    pub label: String,
    /// What went wrong.
    pub error: String,
}

/// Where every enumerated point went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Size of the exhaustive cross product.
    pub exhaustive: usize,
    /// Rejected by the prefilter: tiling infeasible.
    pub pruned_tile: usize,
    /// Rejected by the prefilter: the static analyzer found the tiled
    /// program illegal (IR-verifier errors, or a combine the candidate's
    /// parallelism would race).
    pub pruned_verify: usize,
    /// Rejected by the prefilter: the dataflow-balance analyzer found the
    /// candidate's channel-capacity scale statically deadlocking
    /// (zero-slot channels, `PPHW041`) — never compiled.
    pub pruned_flow: usize,
    /// Rejected by the prefilter: predicted on-chip footprint over budget.
    pub pruned_budget: usize,
    /// Rejected by the prefilter: area lower bound over budget.
    pub pruned_area: usize,
    /// Points that reached the compile+simulate evaluator (cache hits
    /// included — they were *measured*, just not re-compiled).
    pub evaluated: usize,
    /// Evaluated points the evaluator rejected (compile error, post-compile
    /// budget violation, …).
    pub infeasible: usize,
    /// Evaluated points whose evaluation failed outright (panic even after
    /// retries, simulation budget overrun).
    pub failed: usize,
    /// Guided search: survivors measured for model calibration (the
    /// deterministic seeded sample). Zero under exhaustive search.
    pub sampled: usize,
    /// Guided search: survivors ranked by the calibrated model's
    /// predicted objective. Zero under exhaustive search.
    pub ranked: usize,
    /// Survivors this search actually measured (simulated or served from
    /// the cache). Equals `evaluated`; reported separately so guided
    /// reports state their simulation budget explicitly.
    pub simulated: usize,
    /// Guided search: survivors the model ranked unpromising and the
    /// search therefore never measured.
    pub skipped_model: usize,
    /// Survivors owned by other shards of a `--shard i/N` run.
    pub shard_skipped: usize,
    /// Measurements served from the memoization cache.
    pub cache_hits: u64,
    /// Measurements that actually ran the compile+simulate path.
    pub cache_misses: u64,
}

impl DseStats {
    /// Total points removed by the analytic prefilter.
    #[must_use]
    pub fn pruned_total(&self) -> usize {
        self.pruned_tile
            + self.pruned_verify
            + self.pruned_flow
            + self.pruned_budget
            + self.pruned_area
    }
}

/// A completed design-space exploration.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Program name.
    pub name: String,
    /// The single best point (fewest cycles; area and label break ties).
    pub best: EvaluatedPoint,
    /// The cycles-vs-area Pareto frontier, fastest first.
    pub frontier: Vec<EvaluatedPoint>,
    /// Every feasible point, best first (canonical total order).
    pub evaluated: Vec<EvaluatedPoint>,
    /// Candidates whose evaluation failed, in canonical candidate order.
    pub failures: Vec<FailedPoint>,
    /// Where every enumerated point went.
    pub stats: DseStats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn point_json(p: &EvaluatedPoint) -> String {
    let tiles = p
        .tiles
        .iter()
        .map(|(k, v)| format!("{{\"dim\":\"{}\",\"tile\":{v}}}", json_escape(k)))
        .collect::<Vec<_>>()
        .join(",");
    let predicted = match p.predicted_cycles {
        Some(v) => format!("{v:.1}"),
        None => "null".to_string(),
    };
    let pred_err = match p.prediction_error() {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    };
    format!(
        "{{\"label\":\"{}\",\"tiles\":[{tiles}],\"inner_par\":{},\"sim\":\"{}\",\
         \"cycles\":{},\"dram_words\":{},\"on_chip_bytes\":{},\
         \"area\":{{\"logic\":{},\"ff\":{},\"mem\":{}}},\"area_score\":{},\
         \"predicted_cycles\":{predicted},\"prediction_error\":{pred_err}}}",
        json_escape(&p.label),
        p.inner_par,
        json_escape(&p.sim_label),
        p.cycles,
        p.dram_words,
        p.on_chip_bytes,
        p.area.logic,
        p.area.ff,
        p.area.mem,
        p.area_score
    )
}

impl DseReport {
    /// Renders the full report as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let frontier = self
            .frontier
            .iter()
            .map(point_json)
            .collect::<Vec<_>>()
            .join(",");
        let evaluated = self
            .evaluated
            .iter()
            .map(point_json)
            .collect::<Vec<_>>()
            .join(",");
        let failures = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"label\":\"{}\",\"error\":\"{}\"}}",
                    json_escape(&f.label),
                    json_escape(&f.error)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let s = &self.stats;
        // `cache_hits`/`cache_misses` must stay the last two stats keys:
        // the perf harness masks the counters from `"cache_hits"` to the
        // object's closing brace when comparing warm and cold reports.
        format!(
            "{{\"name\":\"{}\",\"best\":{},\"frontier\":[{frontier}],\
             \"evaluated\":[{evaluated}],\"failures\":[{failures}],\
             \"stats\":{{\"exhaustive\":{},\
             \"pruned_tile\":{},\"pruned_verify\":{},\"pruned_flow\":{},\
             \"pruned_budget\":{},\"pruned_area\":{},\
             \"evaluated\":{},\"infeasible\":{},\"failed\":{},\
             \"sampled\":{},\"ranked\":{},\"simulated\":{},\
             \"skipped_model\":{},\"shard_skipped\":{},\
             \"cache_hits\":{},\"cache_misses\":{}}}}}",
            json_escape(&self.name),
            point_json(&self.best),
            s.exhaustive,
            s.pruned_tile,
            s.pruned_verify,
            s.pruned_flow,
            s.pruned_budget,
            s.pruned_area,
            s.evaluated,
            s.infeasible,
            s.failed,
            s.sampled,
            s.ranked,
            s.simulated,
            s.skipped_model,
            s.shard_skipped,
            s.cache_hits,
            s.cache_misses
        )
    }

    /// Renders every feasible point as CSV (best first), with a
    /// `on_frontier` marker column.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "program,label,tiles,inner_par,sim,cycles,dram_words,on_chip_bytes,\
             logic,ff,mem,area_score,predicted_cycles,prediction_error,on_frontier\n",
        );
        for p in &self.evaluated {
            let tiles = p
                .tiles
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let on_frontier = self.frontier.iter().any(|f| f.label == p.label);
            let predicted = p
                .predicted_cycles
                .map_or(String::new(), |v| format!("{v:.1}"));
            let pred_err = p
                .prediction_error()
                .map_or(String::new(), |v| format!("{v:.4}"));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.0},{:.0},{:.1},{:.6},{},{},{}\n",
                self.name,
                p.label,
                tiles,
                p.inner_par,
                p.sim_label,
                p.cycles,
                p.dram_words,
                p.on_chip_bytes,
                p.area.logic,
                p.area.ff,
                p.area.mem,
                p.area_score,
                predicted,
                pred_err,
                on_frontier
            ));
        }
        out
    }

    /// Human-readable summary: counts, the frontier, and the best point.
    #[must_use]
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "dse `{}`: {} points enumerated, {} pruned analytically \
             (tile {}, verify {}, flow {}, budget {}, area {}), {} evaluated \
             ({} compiled, {} from cache), {} infeasible, {} failed\n",
            self.name,
            s.exhaustive,
            s.pruned_total(),
            s.pruned_tile,
            s.pruned_verify,
            s.pruned_flow,
            s.pruned_budget,
            s.pruned_area,
            s.evaluated,
            s.cache_misses,
            s.cache_hits,
            s.infeasible,
            s.failed
        );
        if s.ranked > 0 {
            out.push_str(&format!(
                "  guided: {} calibration samples, {} ranked by model, \
                 {} simulated, {} skipped by model\n",
                s.sampled, s.ranked, s.simulated, s.skipped_model
            ));
        }
        if s.shard_skipped > 0 {
            out.push_str(&format!(
                "  shard: {} survivors owned by other shards\n",
                s.shard_skipped
            ));
        }
        for f in &self.failures {
            out.push_str(&format!("  FAILED {}: {}\n", f.label, f.error));
        }
        out.push_str(&format!(
            "  {:<34} {:>12} {:>12} {:>10}\n",
            "pareto frontier (cycles vs area)", "cycles", "DRAM words", "area"
        ));
        for p in &self.frontier {
            out.push_str(&format!(
                "  {:<34} {:>12} {:>12} {:>9.4}\n",
                p.label, p.cycles, p.dram_words, p.area_score
            ));
        }
        out.push_str(&format!(
            "  best: {} at {} cycles (area {:.4})\n",
            self.best.label, self.best.cycles, self.best.area_score
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn pt(label: &str, cycles: u64) -> EvaluatedPoint {
        EvaluatedPoint {
            label: label.to_string(),
            tiles: vec![("m".into(), 8)],
            inner_par: 16,
            sim_label: "max4".into(),
            cycles,
            dram_words: 10,
            on_chip_bytes: 256,
            area: Area {
                logic: 100.0,
                ff: 200.0,
                mem: 3.0,
            },
            area_score: 0.25,
            predicted_cycles: None,
        }
    }

    fn report() -> DseReport {
        DseReport {
            name: "t".into(),
            best: pt("a", 10),
            frontier: vec![pt("a", 10)],
            evaluated: vec![pt("a", 10), pt("b", 20)],
            failures: vec![FailedPoint {
                label: "c".into(),
                error: "evaluator panicked: boom".into(),
            }],
            stats: DseStats {
                exhaustive: 6,
                pruned_budget: 2,
                pruned_flow: 1,
                evaluated: 3,
                failed: 1,
                cache_misses: 3,
                ..DseStats::default()
            },
        }
    }

    #[test]
    fn json_contains_every_section() {
        let j = report().to_json();
        for needle in [
            "\"name\":\"t\"",
            "\"best\":",
            "\"frontier\":[",
            "\"evaluated\":[",
            "\"exhaustive\":6",
            "\"pruned_budget\":2",
            "\"pruned_flow\":1",
            "\"cycles\":10",
            "\"failures\":[{\"label\":\"c\"",
            "\"failed\":1",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let c = report().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("program,label"));
        assert!(lines[1].contains("true"), "best is on the frontier");
        assert!(lines[2].contains("false"));
    }

    #[test]
    fn summary_reports_prune_savings() {
        let s = report().summary();
        assert!(s.contains("6 points enumerated"));
        assert!(s.contains("3 pruned analytically"));
        assert!(s.contains("flow 1"));
        assert!(s.contains("best: a"));
    }

    #[test]
    fn summary_lists_failed_candidates() {
        let s = report().summary();
        assert!(s.contains("1 failed"));
        assert!(s.contains("FAILED c: evaluator panicked: boom"));
    }

    #[test]
    fn prediction_columns_are_null_when_exhaustive_and_audited_when_guided() {
        let exhaustive = report();
        let j = exhaustive.to_json();
        assert!(j.contains("\"predicted_cycles\":null"), "{j}");
        assert!(j.contains("\"prediction_error\":null"), "{j}");
        let csv = exhaustive.to_csv();
        assert!(csv.lines().next().unwrap().contains("predicted_cycles"));
        assert!(csv.lines().next().unwrap().contains("prediction_error"));

        let mut guided = report();
        // Predicted 11 against measured 10: +10% relative error.
        for p in guided
            .evaluated
            .iter_mut()
            .chain(guided.frontier.iter_mut())
            .chain(std::iter::once(&mut guided.best))
        {
            p.predicted_cycles = Some(11.0);
        }
        guided.stats.sampled = 1;
        guided.stats.ranked = 3;
        guided.stats.simulated = 2;
        guided.stats.skipped_model = 1;
        assert_eq!(guided.best.prediction_error(), Some(0.1));
        let j = guided.to_json();
        assert!(j.contains("\"predicted_cycles\":11.0"), "{j}");
        assert!(j.contains("\"prediction_error\":0.1000"), "{j}");
        assert!(j.contains("\"sampled\":1"), "{j}");
        assert!(j.contains("\"skipped_model\":1"), "{j}");
        let csv = guided.to_csv();
        assert!(csv.contains(",11.0,"), "{csv}");
        // New stats keys must precede the cache counters so the perf
        // harness's counter masking cannot swallow them.
        let stats_tail = j.split("\"sampled\"").nth(1).unwrap();
        assert!(stats_tail.contains("\"cache_hits\""));
        let s = guided.summary();
        assert!(s.contains("guided: 1 calibration samples"), "{s}");
    }
}
