//! Search-space definition and deterministic enumeration.

use pphw_sim::SimConfig;

use crate::DseError;

/// Power-of-two divisors of `n` in `[4, n)`, largest first — the default
/// tile-size candidates for a dimension (locality usually favors large
/// tiles, so they are tried first and win ties).
#[must_use]
pub fn pow2_divisors(n: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut b = 4i64;
    while b < n {
        if n % b == 0 {
            out.push(b);
        }
        b *= 2;
    }
    out.reverse();
    out
}

/// One fully-resolved point of the search space: everything the evaluator
/// needs to compile and simulate a design.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Tile size per tuned dimension, in space dimension order.
    pub tiles: Vec<(String, i64)>,
    /// Innermost parallelism factor.
    pub inner_par: u32,
    /// Label of the simulation substrate variant.
    pub sim_label: String,
    /// The simulation substrate.
    pub sim: SimConfig,
    /// Channel-capacity scale in permille of the generated depth (1000 =
    /// as generated). Applied by the evaluator to every FIFO/double
    /// buffer that carries a metapipeline channel; scales below 500
    /// statically deadlock exact-token channels and are rejected by the
    /// prefilter before any compile.
    pub cap_permille: u32,
}

impl Candidate {
    /// Human-readable identity, e.g. `m=32,n=16 par=64 sim=max4` (with a
    /// ` cap=0.5` suffix only when the capacity scale is swept off its
    /// default, so pre-existing labels — and the fingerprints and cache
    /// keys derived from them — are unchanged).
    #[must_use]
    pub fn label(&self) -> String {
        let tiles = if self.tiles.is_empty() {
            "untiled".to_string()
        } else {
            self.tiles
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let cap = if self.cap_permille == 1000 {
            String::new()
        } else {
            format!(" cap={}", self.cap_permille as f64 / 1000.0)
        };
        format!("{tiles} par={} sim={}{cap}", self.inner_par, self.sim_label)
    }

    /// Tile sizes as borrowed pairs, for `TileConfig`/`CompileOptions`.
    #[must_use]
    pub fn tile_pairs(&self) -> Vec<(&str, i64)> {
        self.tiles.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }
}

/// The joint search space: tile candidates per tuned dimension ×
/// parallelism factors × simulation substrate variants × channel-capacity
/// scales.
///
/// Enumeration order is deterministic — dimensions in the order they were
/// added, tile candidates in their given order, then parallelism factors,
/// then substrate variants, then capacity scales — and independent of how
/// the engine later schedules evaluation.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    sizes: Vec<(String, i64)>,
    dims: Vec<(String, Vec<i64>)>,
    inner_pars: Vec<u32>,
    sim_variants: Vec<(String, SimConfig)>,
    cap_permilles: Vec<u32>,
}

impl SearchSpace {
    /// Creates a space over programs with the given concrete sizes. The
    /// space starts with no tuned dimensions, a single default parallelism
    /// factor of 64 lanes, and the default substrate.
    #[must_use]
    pub fn new(sizes: &[(&str, i64)]) -> SearchSpace {
        SearchSpace {
            sizes: sizes.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            dims: Vec::new(),
            inner_pars: vec![64],
            sim_variants: vec![("max4".to_string(), SimConfig::default())],
            cap_permilles: vec![1000],
        }
    }

    /// Adds a tuned dimension with the default power-of-two dividing tile
    /// candidates.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::UnknownDim`] if the dimension has no concrete
    /// size or no candidate tile divides it.
    pub fn tune_dim(self, dim: &str) -> Result<SearchSpace, DseError> {
        let n = self
            .sizes
            .iter()
            .find(|(k, _)| k == dim)
            .map(|(_, v)| *v)
            .ok_or_else(|| DseError::UnknownDim(dim.to_string()))?;
        let cands = pow2_divisors(n);
        if cands.is_empty() {
            return Err(DseError::UnknownDim(dim.to_string()));
        }
        Ok(self.with_tile_candidates(dim, &cands))
    }

    /// Adds a tuned dimension with explicit tile candidates.
    #[must_use]
    pub fn with_tile_candidates(mut self, dim: &str, cands: &[i64]) -> SearchSpace {
        self.dims.push((dim.to_string(), cands.to_vec()));
        self
    }

    /// Sets the parallelism factors to sweep.
    #[must_use]
    pub fn with_inner_pars(mut self, pars: &[u32]) -> SearchSpace {
        self.inner_pars = pars.to_vec();
        self
    }

    /// Sets the simulation substrate variants to sweep.
    #[must_use]
    pub fn with_sim_variants(mut self, variants: &[(&str, SimConfig)]) -> SearchSpace {
        self.sim_variants = variants
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        self
    }

    /// Sets the channel-capacity scales (permille of the generated
    /// depth) to sweep. The default single `1000` leaves capacities as
    /// generated.
    #[must_use]
    pub fn with_cap_permilles(mut self, permilles: &[u32]) -> SearchSpace {
        self.cap_permilles = permilles.to_vec();
        self
    }

    /// The concrete sizes the space was built over.
    #[must_use]
    pub fn sizes(&self) -> &[(String, i64)] {
        &self.sizes
    }

    /// Size pairs as borrowed tuples.
    #[must_use]
    pub fn size_pairs(&self) -> Vec<(&str, i64)> {
        self.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    /// Number of points in the full cross product.
    #[must_use]
    pub fn len(&self) -> usize {
        let tiles: usize = self.dims.iter().map(|(_, c)| c.len()).product();
        tiles * self.inner_pars.len() * self.sim_variants.len() * self.cap_permilles.len()
    }

    /// Whether the space enumerates to nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every point of the space, in canonical order.
    #[must_use]
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut tile_cfgs: Vec<Vec<(String, i64)>> = vec![Vec::new()];
        for (dim, cands) in &self.dims {
            let mut next = Vec::with_capacity(tile_cfgs.len() * cands.len());
            for cfg in &tile_cfgs {
                for b in cands {
                    let mut c = cfg.clone();
                    c.push((dim.clone(), *b));
                    next.push(c);
                }
            }
            tile_cfgs = next;
        }
        let mut out = Vec::with_capacity(self.len());
        for tiles in &tile_cfgs {
            for par in &self.inner_pars {
                for (label, sim) in &self.sim_variants {
                    for cap in &self.cap_permilles {
                        out.push(Candidate {
                            tiles: tiles.clone(),
                            inner_par: *par,
                            sim_label: label.clone(),
                            sim: sim.clone(),
                            cap_permille: *cap,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn pow2_divisors_match_legacy_tile_candidates() {
        assert_eq!(pow2_divisors(64), vec![32, 16, 8, 4]);
        assert_eq!(pow2_divisors(48), vec![16, 8, 4]);
        assert!(pow2_divisors(4).is_empty());
        assert!(pow2_divisors(3).is_empty());
    }

    #[test]
    fn enumeration_is_full_cross_product_in_canonical_order() {
        let space = SearchSpace::new(&[("m", 16), ("n", 16)])
            .tune_dim("m")
            .unwrap()
            .tune_dim("n")
            .unwrap()
            .with_inner_pars(&[8, 16]);
        // 2 tiles per dim x 2 dims x 2 pars x 1 sim variant.
        assert_eq!(space.len(), 8);
        let cands = space.candidates();
        assert_eq!(cands.len(), 8);
        // Largest tiles first, inner_par varies fastest after tiles.
        assert_eq!(cands[0].tiles, vec![("m".into(), 8), ("n".into(), 8)]);
        assert_eq!(cands[0].inner_par, 8);
        assert_eq!(cands[1].inner_par, 16);
        assert_eq!(cands[7].tiles, vec![("m".into(), 4), ("n".into(), 4)]);
        // Enumeration is stable across calls.
        assert_eq!(cands, space.candidates());
    }

    #[test]
    fn unknown_dim_is_rejected() {
        let err = SearchSpace::new(&[("m", 16)]).tune_dim("zzz").unwrap_err();
        assert_eq!(err, DseError::UnknownDim("zzz".into()));
        // A dimension too small to tile is also rejected.
        let err = SearchSpace::new(&[("m", 4)]).tune_dim("m").unwrap_err();
        assert_eq!(err, DseError::UnknownDim("m".into()));
    }

    #[test]
    fn labels_are_stable_identities() {
        let mut c = Candidate {
            tiles: vec![("m".into(), 8)],
            inner_par: 32,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
            cap_permille: 1000,
        };
        assert_eq!(c.label(), "m=8 par=32 sim=max4");
        // A swept capacity scale is visible; the default leaves the
        // legacy label (and everything keyed off it) untouched.
        c.cap_permille = 500;
        assert_eq!(c.label(), "m=8 par=32 sim=max4 cap=0.5");
    }

    #[test]
    fn capacity_scales_sweep_innermost() {
        let space = SearchSpace::new(&[("m", 16)])
            .tune_dim("m")
            .unwrap()
            .with_cap_permilles(&[1000, 500]);
        assert_eq!(space.len(), 4);
        let cands = space.candidates();
        assert_eq!(cands.len(), 4);
        assert_eq!(cands[0].cap_permille, 1000);
        assert_eq!(cands[1].cap_permille, 500);
        assert_eq!(cands[0].tiles, cands[1].tiles);
        assert_ne!(cands[0].label(), cands[1].label());
    }
}
