//! The exploration engine: prefilter, memoized parallel evaluation,
//! deterministic ranking.

use pphw_hw::{area_objective, AreaBudget};
use pphw_ir::program::Program;

use crate::cache::{config_key, EvalCache};
use crate::pareto::{compare_points, pareto_frontier};
use crate::prune::{prefilter, PruneDecision};
use crate::report::{DseReport, DseStats, EvaluatedPoint, FailedPoint};
use crate::space::{Candidate, SearchSpace};
use crate::{DseError, EvalOutcome, Evaluate};

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Worker threads for candidate evaluation (`0` = one per available
    /// core). The result is identical for every value.
    pub threads: usize,
    /// On-chip memory budget in bytes (prefilter and reporting; the
    /// evaluator enforces its own authoritative post-compile check).
    pub on_chip_budget_bytes: u64,
    /// Area budget for the analytic prefilter.
    pub area_budget: AreaBudget,
    /// Run the analytic prefilter (disable to force exhaustive
    /// evaluation, e.g. to measure what pruning saves).
    pub prefilter: bool,
    /// Cap on the number of candidates evaluated after pruning (in
    /// canonical enumeration order; `usize::MAX` = no cap).
    pub max_evals: usize,
    /// Total attempts per candidate when the evaluator panics (`1` = no
    /// retry). A candidate that fails every attempt is recorded as a
    /// [`EvalOutcome::Failed`] in the report; the sweep always completes.
    pub eval_attempts: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            threads: 0,
            on_chip_budget_bytes: 6 * 1024 * 1024,
            area_budget: AreaBudget::full_device(),
            prefilter: true,
            max_evals: usize::MAX,
            eval_attempts: 2,
        }
    }
}

impl DseConfig {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Explores the space: analytic prefilter, then memoized parallel
/// evaluation of the survivors, then deterministic ranking into the best
/// point and the cycles-vs-area Pareto frontier.
///
/// Determinism: the returned report is a pure function of (program,
/// space, evaluator, pre-existing cache contents) — thread count and
/// scheduling cannot change it. Candidates are enumerated and pruned in
/// canonical order, results are merged by candidate index, and ranking
/// uses a total order.
///
/// # Errors
///
/// [`DseError::EmptySpace`] if the space enumerates to nothing;
/// [`DseError::NoFeasibleConfig`] if every point is pruned or infeasible.
pub fn explore(
    prog: &Program,
    space: &SearchSpace,
    evaluator: &dyn Evaluate,
    cache: &EvalCache,
    cfg: &DseConfig,
) -> Result<DseReport, DseError> {
    let candidates = space.candidates();
    if candidates.is_empty() {
        return Err(DseError::EmptySpace);
    }
    let mut stats = DseStats {
        exhaustive: candidates.len(),
        ..DseStats::default()
    };

    // Analytic prefilter: reject before compiling.
    let survivors: Vec<Candidate> = if cfg.prefilter {
        let decisions = prefilter(
            prog,
            space.sizes(),
            &candidates,
            cfg.on_chip_budget_bytes,
            &cfg.area_budget,
        );
        candidates
            .into_iter()
            .zip(decisions)
            .filter_map(|(c, d)| match d {
                PruneDecision::Keep => Some(c),
                PruneDecision::Tile(_) => {
                    stats.pruned_tile += 1;
                    None
                }
                PruneDecision::Illegal(_) => {
                    stats.pruned_verify += 1;
                    None
                }
                PruneDecision::Budget { .. } => {
                    stats.pruned_budget += 1;
                    None
                }
                PruneDecision::Area => {
                    stats.pruned_area += 1;
                    None
                }
            })
            .collect()
    } else {
        candidates
    };
    let mut survivors = survivors;
    survivors.truncate(cfg.max_evals);
    stats.evaluated = survivors.len();

    // Memoized evaluation on the work-stealing pool. The bool records
    // whether the measurement came from the cache; counted after the
    // parallel section so the tallies are scheduling-independent. Each
    // job runs under panic isolation with bounded retry, so one crashing
    // candidate is a recorded failure, not a lost sweep. Failed outcomes
    // (panics, simulation budget overruns) are never cached: a later
    // sweep should retry them, not replay the failure.
    let salt = evaluator.cache_salt();
    let outcomes: Vec<Result<(EvalOutcome, bool), String>> = crate::pool::run_indexed_isolated(
        cfg.resolved_threads(),
        &survivors,
        cfg.eval_attempts.max(1),
        |_, c| {
            let key = config_key(&prog.name, space.sizes(), &salt, c);
            if let Some(hit) = cache.get(key) {
                (hit, true)
            } else {
                let out = evaluator.evaluate(c);
                if !matches!(out, EvalOutcome::Failed(_)) {
                    cache.insert(key, out.clone());
                }
                (out, false)
            }
        },
    );

    let mut points: Vec<EvaluatedPoint> = Vec::with_capacity(survivors.len());
    let mut failures: Vec<FailedPoint> = Vec::new();
    for (c, result) in survivors.iter().zip(&outcomes) {
        let (outcome, from_cache) = match result {
            Ok((outcome, from_cache)) => (outcome.clone(), *from_cache),
            Err(msg) => (
                EvalOutcome::Failed(format!("evaluator panicked: {msg}")),
                false,
            ),
        };
        if from_cache {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
        match outcome {
            EvalOutcome::Feasible(m) => points.push(EvaluatedPoint {
                label: c.label(),
                tiles: c.tiles.clone(),
                inner_par: c.inner_par,
                sim_label: c.sim_label.clone(),
                cycles: m.cycles,
                dram_words: m.dram_words,
                on_chip_bytes: m.on_chip_bytes,
                area: m.area,
                area_score: area_objective(m.area),
            }),
            EvalOutcome::Infeasible(_) => stats.infeasible += 1,
            EvalOutcome::Failed(error) => {
                stats.failed += 1;
                failures.push(FailedPoint {
                    label: c.label(),
                    error,
                });
            }
        }
    }

    points.sort_by(compare_points);
    let best = points.first().cloned().ok_or(DseError::NoFeasibleConfig)?;
    let frontier = pareto_frontier(&points);
    Ok(DseReport {
        name: prog.name.clone(),
        best,
        frontier,
        evaluated: points,
        failures,
        stats,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Measurement;
    use pphw_hw::Area;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// map(m,n){ x * 2 } — trivially tileable in both dims.
    fn program() -> Program {
        let mut b = ProgramBuilder::new("scale2d");
        let m = b.size("m");
        let n = b.size("n");
        let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
        let out = b.map(vec![m, n], |c, i| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0]), c.var(i[1])]))
        });
        b.finish(vec![out])
    }

    /// A synthetic evaluator: cycles fall with tile volume (locality) and
    /// lane count; area grows with lanes. Counts invocations so tests can
    /// assert what was actually (re)computed.
    struct Synthetic {
        calls: AtomicU64,
    }

    impl Synthetic {
        fn new() -> Synthetic {
            Synthetic {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Evaluate for Synthetic {
        fn evaluate(&self, c: &Candidate) -> EvalOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let vol: i64 = c.tiles.iter().map(|(_, v)| *v).product::<i64>().max(1);
            let cycles = 1_000_000 / (vol as u64) / (c.inner_par as u64);
            EvalOutcome::Feasible(Measurement {
                cycles,
                dram_words: vol as u64,
                on_chip_bytes: (vol * 4) as u64,
                area: Area {
                    logic: c.inner_par as f64 * 320.0,
                    ff: c.inner_par as f64 * 480.0,
                    mem: 4.0,
                },
            })
        }

        fn cache_salt(&self) -> String {
            "synthetic".into()
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new(&[("m", 64), ("n", 64)])
            .tune_dim("m")
            .unwrap()
            .tune_dim("n")
            .unwrap()
            .with_inner_pars(&[8, 16, 32])
    }

    #[test]
    fn best_and_frontier_identical_across_thread_counts() {
        let mut reference: Option<DseReport> = None;
        for threads in [1usize, 2, 8] {
            let eval = Synthetic::new();
            let cache = EvalCache::new();
            let cfg = DseConfig {
                threads,
                ..DseConfig::default()
            };
            let report = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
            if let Some(r) = &reference {
                assert_eq!(r.best.label, report.best.label, "threads={threads}");
                assert_eq!(r.best.cycles, report.best.cycles);
                assert_eq!(r.frontier.len(), report.frontier.len());
                for (a, b) in r.frontier.iter().zip(&report.frontier) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.cycles, b.cycles);
                    assert_eq!(a.area_score.to_bits(), b.area_score.to_bits());
                }
                let ra: Vec<_> = r.evaluated.iter().map(|p| &p.label).collect();
                let rb: Vec<_> = report.evaluated.iter().map(|p| &p.label).collect();
                assert_eq!(ra, rb, "full ranking identical at {threads} threads");
                assert_eq!(r.stats, report.stats);
            }
            reference = Some(report);
        }
    }

    #[test]
    fn shared_cache_prevents_recompilation() {
        let eval = Synthetic::new();
        let cache = EvalCache::new();
        let cfg = DseConfig::default();
        let first = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
        let compiled_once = eval.calls.load(Ordering::SeqCst);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, compiled_once);

        // Same search again: every measurement is a cache hit.
        let second = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
        assert_eq!(eval.calls.load(Ordering::SeqCst), compiled_once);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits as usize, second.stats.evaluated);
        assert_eq!(second.best.label, first.best.label);

        // An overlapping sweep (superset of lane counts) only compiles the
        // new points.
        let wider = space().with_inner_pars(&[8, 16, 32, 64]);
        let third = explore(&program(), &wider, &eval, &cache, &cfg).unwrap();
        assert_eq!(third.stats.cache_hits as usize, first.stats.evaluated);
        assert_eq!(
            third.stats.cache_misses as usize,
            third.stats.evaluated - first.stats.evaluated
        );
    }

    #[test]
    fn empty_space_is_an_error() {
        let s = SearchSpace::new(&[("m", 64)]).with_inner_pars(&[]);
        let err = explore(
            &program(),
            &s,
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, DseError::EmptySpace);
    }

    /// An evaluator that rejects everything: the engine must report
    /// NoFeasibleConfig, not panic or return an empty best.
    struct AlwaysInfeasible;
    impl Evaluate for AlwaysInfeasible {
        fn evaluate(&self, _c: &Candidate) -> EvalOutcome {
            EvalOutcome::Infeasible("nope".into())
        }
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let err = explore(
            &program(),
            &space(),
            &AlwaysInfeasible,
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, DseError::NoFeasibleConfig);
    }

    /// An evaluator that panics on some candidates: the engine must
    /// record those as failures and still rank the survivors — and the
    /// result must stay identical across thread counts.
    struct Explosive {
        calls: AtomicU64,
    }

    impl Evaluate for Explosive {
        fn evaluate(&self, c: &Candidate) -> EvalOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            assert!(c.inner_par != 16, "injected evaluator crash at par=16");
            Synthetic::new().evaluate(c)
        }

        fn cache_salt(&self) -> String {
            "explosive".into()
        }
    }

    #[test]
    fn panicking_candidates_are_recorded_failures_not_lost_sweeps() {
        let mut reference: Option<DseReport> = None;
        for threads in [1usize, 4] {
            let eval = Explosive {
                calls: AtomicU64::new(0),
            };
            let cfg = DseConfig {
                threads,
                eval_attempts: 2,
                ..DseConfig::default()
            };
            let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
            assert!(report.stats.failed > 0, "par=16 candidates must fail");
            assert_eq!(report.failures.len(), report.stats.failed);
            for f in &report.failures {
                assert!(f.label.contains("par=16"), "unexpected failure {f:?}");
                assert!(f.error.contains("injected evaluator crash"));
            }
            assert!(
                report.evaluated.iter().all(|p| p.inner_par != 16),
                "crashed candidates must not produce points"
            );
            assert!(!report.evaluated.is_empty(), "survivors still ranked");
            assert_eq!(
                report.stats.evaluated,
                report.evaluated.len() + report.stats.failed
            );
            if let Some(r) = &reference {
                assert_eq!(r.best.label, report.best.label, "threads={threads}");
                assert_eq!(r.failures, report.failures);
                assert_eq!(r.stats, report.stats);
            }
            reference = Some(report);
        }
    }

    #[test]
    fn failed_outcomes_are_retried_not_cached() {
        // Fails on the first call for each candidate at par=16; a retry
        // within the same sweep succeeds, so the report has no failures
        // and the retry actually ran (calls > candidates).
        struct FlakyOnce {
            calls: AtomicU64,
            first: std::sync::Mutex<std::collections::HashSet<String>>,
        }
        impl Evaluate for FlakyOnce {
            fn evaluate(&self, c: &Candidate) -> EvalOutcome {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if c.inner_par == 16 && self.first.lock().unwrap().insert(c.label()) {
                    panic!("transient fault");
                }
                Synthetic::new().evaluate(c)
            }
        }
        let eval = FlakyOnce {
            calls: AtomicU64::new(0),
            first: std::sync::Mutex::new(std::collections::HashSet::new()),
        };
        let cfg = DseConfig {
            threads: 1,
            eval_attempts: 2,
            ..DseConfig::default()
        };
        let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
        assert_eq!(report.stats.failed, 0, "{:?}", report.failures);
        assert!(eval.calls.load(Ordering::SeqCst) as usize > report.stats.evaluated);
    }

    #[test]
    fn max_evals_caps_the_survivor_list() {
        let eval = Synthetic::new();
        let cfg = DseConfig {
            max_evals: 3,
            ..DseConfig::default()
        };
        let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
        assert_eq!(report.stats.evaluated, 3);
        assert_eq!(eval.calls.load(Ordering::SeqCst), 3);
    }
}
