//! The exploration engine: prefilter, model-guided candidate selection,
//! memoized parallel evaluation, deterministic ranking.

use std::cmp::Ordering;

use pphw_hw::{area_objective, AreaBudget};
use pphw_ir::program::Program;

use crate::cache::{config_key, EvalCache};
use crate::model::{pick_sample, CostModel, FeatureExtractor};
use crate::pareto::{compare_points, pareto_frontier};
use crate::prune::{area_lower_bound, prefilter, PruneDecision};
use crate::report::{DseReport, DseStats, EvaluatedPoint, FailedPoint};
use crate::shard::{fingerprint, Shard};
use crate::space::{Candidate, SearchSpace};
use crate::{DseError, EvalOutcome, Evaluate};

/// Default seed for guided calibration sampling (`b"pphw-dse"` as a
/// little-endian word): fixed so two guided runs of the same space agree
/// without coordination.
pub const DEFAULT_GUIDED_SEED: u64 = u64::from_le_bytes(*b"pphw-dse");

/// Tuning for [`Strategy::Guided`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuidedConfig {
    /// Calibration sample size: how many survivors are measured to fit
    /// the cost model. The sample is chosen by stable fingerprint, so it
    /// is identical across thread counts and shards (every shard of a
    /// sharded guided run replicates it — that is what lets all shards
    /// fit the same model and agree on the top slice).
    pub sample: usize,
    /// How many of the model's top-ranked survivors to actually measure.
    pub top_k: usize,
    /// Exploration band: additionally measure this many survivors spread
    /// evenly across the rest of the ranking, so a systematically wrong
    /// model is visible in the report's prediction-error columns instead
    /// of silently steering the search.
    pub explore: usize,
    /// Seed for the deterministic calibration sample.
    pub seed: u64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        GuidedConfig {
            sample: 32,
            top_k: 64,
            explore: 8,
            seed: DEFAULT_GUIDED_SEED,
        }
    }
}

/// How the evaluator sizes the channels (FIFOs, double buffers) of each
/// candidate's generated design before measuring it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityMode {
    /// Keep the depths the hardware generator chose (scaled by the
    /// candidate's `cap_permille` when swept).
    #[default]
    AsGenerated,
    /// Rewrite every channel-carrying memory to the minimal safe depth
    /// the flow analyzer computes (`pphw_verify::flow::infer_capacities`),
    /// after any `cap_permille` scaling — the area-lean end of the
    /// throughput/area trade-off.
    InferredMinimal,
}

/// How the engine spends its simulation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Measure every prefilter survivor (the classic sweep).
    #[default]
    Exhaustive,
    /// Measure a seeded calibration sample, fit the analytic cost model
    /// to it, rank every survivor by predicted objective, and measure
    /// only the top slice plus an exploration band.
    Guided(GuidedConfig),
}

/// What "best" means.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Fewest simulated cycles (labels break ties).
    MinCycles,
    /// Fewest cycles, then smallest area, then label — the engine's
    /// historical total order.
    #[default]
    CyclesThenArea,
    /// Fewest cycles among points whose area objective fits under the
    /// cap; [`DseError::NoFeasibleConfig`] if nothing fits.
    FastestUnderAreaCap {
        /// Maximum admissible area objective (device utilization
        /// fraction, same scale as [`EvaluatedPoint::area_score`]).
        area_cap: f64,
    },
}

impl Objective {
    /// The total order this objective ranks feasible points with.
    #[must_use]
    pub fn cmp_points(&self, a: &EvaluatedPoint, b: &EvaluatedPoint) -> Ordering {
        match self {
            Objective::MinCycles => a.cycles.cmp(&b.cycles).then_with(|| a.label.cmp(&b.label)),
            Objective::CyclesThenArea => compare_points(a, b),
            Objective::FastestUnderAreaCap { area_cap } => {
                let a_fits = a.area_score <= *area_cap;
                let b_fits = b.area_score <= *area_cap;
                // Points under the cap sort strictly before points over it.
                b_fits.cmp(&a_fits).then_with(|| compare_points(a, b))
            }
        }
    }

    /// Whether a point satisfies the objective's hard constraint (always
    /// true except under an area cap).
    #[must_use]
    pub fn admits(&self, p: &EvaluatedPoint) -> bool {
        match self {
            Objective::FastestUnderAreaCap { area_cap } => p.area_score <= *area_cap,
            _ => true,
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Worker threads for candidate evaluation (`0` = one per available
    /// core). The result is identical for every value.
    pub threads: usize,
    /// On-chip memory budget in bytes (prefilter and reporting; the
    /// evaluator enforces its own authoritative post-compile check).
    pub on_chip_budget_bytes: u64,
    /// Area budget for the analytic prefilter.
    pub area_budget: AreaBudget,
    /// Run the analytic prefilter (disable to force exhaustive
    /// evaluation, e.g. to measure what pruning saves).
    pub prefilter: bool,
    /// Cap on the number of candidates evaluated after pruning (in
    /// canonical enumeration order; `usize::MAX` = no cap).
    pub max_evals: usize,
    /// Total attempts per candidate when the evaluator panics (`1` = no
    /// retry). A candidate that fails every attempt is recorded as a
    /// [`EvalOutcome::Failed`] in the report; the sweep always completes.
    pub eval_attempts: usize,
    /// Exhaustive or model-guided measurement.
    pub strategy: Strategy,
    /// How the evaluator sizes each candidate's channels (honored by
    /// evaluators that compile real designs; synthetic test evaluators
    /// ignore it).
    pub capacity_mode: CapacityMode,
    /// What "best" means when ranking feasible points.
    pub objective: Objective,
    /// When `Some`, this invocation measures only the survivors its shard
    /// owns (by stable fingerprint); see [`crate::shard`]. Guided runs
    /// additionally replicate the calibration sample on every shard so
    /// all shards select the same top slice.
    pub shard: Option<Shard>,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            threads: 0,
            on_chip_budget_bytes: 6 * 1024 * 1024,
            area_budget: AreaBudget::full_device(),
            prefilter: true,
            max_evals: usize::MAX,
            eval_attempts: 2,
            strategy: Strategy::Exhaustive,
            capacity_mode: CapacityMode::default(),
            objective: Objective::CyclesThenArea,
            shard: None,
        }
    }
}

impl DseConfig {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Explores the space: analytic prefilter, then measurement of the
/// survivors — all of them ([`Strategy::Exhaustive`]) or a model-selected
/// slice ([`Strategy::Guided`]) — then deterministic ranking under the
/// configured [`Objective`] into the best point and the cycles-vs-area
/// Pareto frontier.
///
/// Determinism: the returned report is a pure function of (program,
/// space, evaluator, pre-existing cache contents, config) — thread count
/// and scheduling cannot change it. Candidates are enumerated and pruned
/// in canonical order, the guided sample and ranking derive from stable
/// fingerprints and deterministic arithmetic, results are merged by
/// candidate index, and ranking uses a total order.
///
/// Sharding: with [`DseConfig::shard`] set, only the survivors this shard
/// owns are measured (plus, under [`Strategy::Guided`], the calibration
/// sample, which every shard replicates so all shards fit the same model
/// and agree on the top slice). The union of all shards' measurements
/// equals the unsharded run's, so merging the shards' caches and
/// re-running unsharded reproduces the unsharded report bit-for-bit.
///
/// # Errors
///
/// [`DseError::EmptySpace`] if the space enumerates to nothing;
/// [`DseError::NoFeasibleConfig`] if every point is pruned, infeasible,
/// owned by another shard, or (under an area cap) over the cap.
pub fn explore(
    prog: &Program,
    space: &SearchSpace,
    evaluator: &dyn Evaluate,
    cache: &EvalCache,
    cfg: &DseConfig,
) -> Result<DseReport, DseError> {
    let candidates = space.candidates();
    if candidates.is_empty() {
        return Err(DseError::EmptySpace);
    }
    let mut stats = DseStats {
        exhaustive: candidates.len(),
        ..DseStats::default()
    };

    // Analytic prefilter: reject before compiling.
    let survivors: Vec<Candidate> = if cfg.prefilter {
        let decisions = prefilter(
            prog,
            space.sizes(),
            &candidates,
            cfg.on_chip_budget_bytes,
            &cfg.area_budget,
        );
        candidates
            .into_iter()
            .zip(decisions)
            .filter_map(|(c, d)| match d {
                PruneDecision::Keep => Some(c),
                PruneDecision::Tile(_) => {
                    stats.pruned_tile += 1;
                    None
                }
                PruneDecision::Illegal(_) => {
                    stats.pruned_verify += 1;
                    None
                }
                PruneDecision::Flow(_) => {
                    stats.pruned_flow += 1;
                    None
                }
                PruneDecision::Budget { .. } => {
                    stats.pruned_budget += 1;
                    None
                }
                PruneDecision::Area => {
                    stats.pruned_area += 1;
                    None
                }
            })
            .collect()
    } else {
        candidates
    };
    let mut survivors = survivors;
    survivors.truncate(cfg.max_evals);
    let n = survivors.len();

    // Stable identity per survivor: drives both sharding and the guided
    // calibration sample, so neither depends on enumeration position.
    let fps: Vec<u64> = survivors
        .iter()
        .map(|c| fingerprint(&prog.name, c))
        .collect();
    let owned = |i: usize| cfg.shard.is_none_or(|s| s.owns(fps[i]));

    // Memoized evaluation of an index subset on the work-stealing pool.
    // The bool records whether the measurement came from the cache;
    // counted after the parallel section so the tallies are
    // scheduling-independent. Each job runs under panic isolation with
    // bounded retry, so one crashing candidate is a recorded failure, not
    // a lost sweep. Failed outcomes (panics, simulation budget overruns)
    // are never cached: a later sweep should retry them, not replay the
    // failure.
    let salt = evaluator.cache_salt();
    let measure = |indices: &[usize]| -> Vec<(usize, EvalOutcome, bool)> {
        let subset: Vec<Candidate> = indices.iter().map(|&i| survivors[i].clone()).collect();
        let outcomes: Vec<Result<(EvalOutcome, bool), String>> = crate::pool::run_indexed_isolated(
            cfg.resolved_threads(),
            &subset,
            cfg.eval_attempts.max(1),
            |_, c| {
                let key = config_key(&prog.name, space.sizes(), &salt, c);
                if let Some(hit) = cache.get(key) {
                    (hit, true)
                } else {
                    let out = evaluator.evaluate(c);
                    if !matches!(out, EvalOutcome::Failed(_)) {
                        cache.insert(key, out.clone());
                    }
                    (out, false)
                }
            },
        );
        indices
            .iter()
            .zip(outcomes)
            .map(|(&i, result)| match result {
                Ok((outcome, from_cache)) => (i, outcome, from_cache),
                Err(msg) => (
                    i,
                    EvalOutcome::Failed(format!("evaluator panicked: {msg}")),
                    false,
                ),
            })
            .collect()
    };

    // Decide which survivors to measure.
    let mut predictions: Vec<Option<f64>> = vec![None; n];
    let mut measured: Vec<(usize, EvalOutcome, bool)> = match &cfg.strategy {
        Strategy::Exhaustive => {
            let idx: Vec<usize> = (0..n).filter(|&i| owned(i)).collect();
            stats.shard_skipped = n - idx.len();
            measure(&idx)
        }
        Strategy::Guided(g) => {
            // 1. Calibration: measure a seeded sample chosen by stable
            //    fingerprint. Every shard replicates it (the evaluator is
            //    pure, so the replicated cache entries are byte-identical
            //    and merge cleanly) — that is what makes the fitted model,
            //    and therefore the selected slice, shard-independent.
            let sample_idx = pick_sample(&fps, g.sample.max(1), g.seed);
            let in_sample = {
                let mut flags = vec![false; n];
                for &i in &sample_idx {
                    flags[i] = true;
                }
                flags
            };
            let mut measured = measure(&sample_idx);

            // 2. Fit the cost model on the feasible sample measurements.
            let mut fx = FeatureExtractor::new(prog, space.sizes(), cfg.on_chip_budget_bytes);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (i, outcome, _) in &measured {
                if let EvalOutcome::Feasible(m) = outcome {
                    if let Some(f) = fx.features(&survivors[*i]) {
                        xs.push(f);
                        ys.push(m.cycles as f64);
                    }
                }
            }
            match CostModel::fit(&xs, &ys) {
                None => {
                    // Nothing feasible to calibrate on: degenerate to
                    // exhaustive over the remaining (owned) survivors
                    // rather than skip points on an unfit model's word.
                    let rest: Vec<usize> = (0..n).filter(|&i| !in_sample[i] && owned(i)).collect();
                    stats.shard_skipped = (0..n).filter(|&i| !in_sample[i] && !owned(i)).count();
                    measured.extend(measure(&rest));
                }
                Some(model) => {
                    stats.sampled = sample_idx.len();
                    stats.ranked = n;
                    // 3. Predict every survivor and rank the unsampled
                    //    ones by predicted objective. Under an area cap,
                    //    a candidate that cannot fit ranks last: exactly,
                    //    when the evaluator can compile (not simulate)
                    //    the design and report its true area — area is a
                    //    function of the design alone, so substrate
                    //    siblings share one compile — or conservatively
                    //    by the analytic area lower bound otherwise
                    //    (real designs are at least that large). Without
                    //    the exact check, fast-but-oversized points
                    //    flood the top slice only to be rejected after
                    //    measurement, squeezing out the true winner. A
                    //    survivor the feature extractor cannot analyze
                    //    ranks first: measuring it is the only safe
                    //    option.
                    let mut keys = Vec::with_capacity(n);
                    for (i, c) in survivors.iter().enumerate() {
                        predictions[i] = fx.features(c).map(|f| model.predict(&f));
                        let key = match predictions[i] {
                            None => f64::NEG_INFINITY,
                            Some(pred) => {
                                let capped = match cfg.objective {
                                    Objective::FastestUnderAreaCap { area_cap } => {
                                        match evaluator.area_hint(c) {
                                            Some(area) => area_objective(area) > area_cap,
                                            None => fx.traffic(c).is_some_and(|t| {
                                                let bytes = t.on_chip_bytes(c.sim.word_bytes);
                                                area_objective(area_lower_bound(c.inner_par, bytes))
                                                    > area_cap
                                            }),
                                        }
                                    }
                                    _ => false,
                                };
                                if capped {
                                    f64::INFINITY
                                } else {
                                    pred
                                }
                            }
                        };
                        keys.push(key);
                    }
                    let mut rest: Vec<usize> = (0..n).filter(|&i| !in_sample[i]).collect();
                    rest.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));

                    // 4. Select the top slice plus an exploration band
                    //    spread evenly over the rest of the ranking.
                    let top_end = g.top_k.min(rest.len());
                    let mut selected: Vec<usize> = rest[..top_end].to_vec();
                    let tail = &rest[top_end..];
                    let picks = g.explore.min(tail.len());
                    for k in 0..picks {
                        selected.push(tail[k * tail.len() / picks]);
                    }
                    selected.sort_unstable();
                    selected.dedup();
                    stats.skipped_model = rest.len() - selected.len();

                    // 5. Measure the selected slice — this shard's share
                    //    of it, when sharded.
                    let to_measure: Vec<usize> =
                        selected.iter().copied().filter(|&i| owned(i)).collect();
                    stats.shard_skipped = selected.len() - to_measure.len();
                    measured.extend(measure(&to_measure));
                }
            }
            measured
        }
    };
    stats.evaluated = measured.len();
    stats.simulated = measured.len();

    // Merge in candidate-index order so downstream processing (failure
    // lists, tallies) is independent of measurement pass structure.
    measured.sort_by_key(|(i, _, _)| *i);

    let mut points: Vec<EvaluatedPoint> = Vec::with_capacity(measured.len());
    let mut failures: Vec<FailedPoint> = Vec::new();
    for (i, outcome, from_cache) in measured {
        let c = &survivors[i];
        if from_cache {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
        match outcome {
            EvalOutcome::Feasible(m) => points.push(EvaluatedPoint {
                label: c.label(),
                tiles: c.tiles.clone(),
                inner_par: c.inner_par,
                sim_label: c.sim_label.clone(),
                cycles: m.cycles,
                dram_words: m.dram_words,
                on_chip_bytes: m.on_chip_bytes,
                area: m.area,
                area_score: area_objective(m.area),
                predicted_cycles: predictions[i],
            }),
            EvalOutcome::Infeasible(_) => stats.infeasible += 1,
            EvalOutcome::Failed(error) => {
                stats.failed += 1;
                failures.push(FailedPoint {
                    label: c.label(),
                    error,
                });
            }
        }
    }

    points.sort_by(|a, b| cfg.objective.cmp_points(a, b));
    let best = points.first().cloned().ok_or(DseError::NoFeasibleConfig)?;
    if !cfg.objective.admits(&best) {
        return Err(DseError::NoFeasibleConfig);
    }
    let frontier = pareto_frontier(&points);
    Ok(DseReport {
        name: prog.name.clone(),
        best,
        frontier,
        evaluated: points,
        failures,
        stats,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Measurement;
    use pphw_hw::Area;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// map(m,n){ x * 2 } — trivially tileable in both dims.
    fn program() -> Program {
        let mut b = ProgramBuilder::new("scale2d");
        let m = b.size("m");
        let n = b.size("n");
        let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
        let out = b.map(vec![m, n], |c, i| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0]), c.var(i[1])]))
        });
        b.finish(vec![out])
    }

    /// A synthetic evaluator: cycles fall with tile volume (locality) and
    /// lane count; area grows with lanes. Counts invocations so tests can
    /// assert what was actually (re)computed.
    struct Synthetic {
        calls: AtomicU64,
    }

    impl Synthetic {
        fn new() -> Synthetic {
            Synthetic {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Evaluate for Synthetic {
        fn evaluate(&self, c: &Candidate) -> EvalOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let vol: i64 = c.tiles.iter().map(|(_, v)| *v).product::<i64>().max(1);
            let cycles = 1_000_000 / (vol as u64) / (c.inner_par as u64);
            EvalOutcome::Feasible(Measurement {
                cycles,
                dram_words: vol as u64,
                on_chip_bytes: (vol * 4) as u64,
                area: Area {
                    logic: c.inner_par as f64 * 320.0,
                    ff: c.inner_par as f64 * 480.0,
                    mem: 4.0,
                },
            })
        }

        fn cache_salt(&self) -> String {
            "synthetic".into()
        }

        fn area_hint(&self, c: &Candidate) -> Option<Area> {
            // Exact, simulation-free: mirrors the area `evaluate` reports,
            // the way a compile-only pass does for the real evaluator.
            Some(Area {
                logic: c.inner_par as f64 * 320.0,
                ff: c.inner_par as f64 * 480.0,
                mem: 4.0,
            })
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new(&[("m", 64), ("n", 64)])
            .tune_dim("m")
            .unwrap()
            .tune_dim("n")
            .unwrap()
            .with_inner_pars(&[8, 16, 32])
    }

    #[test]
    fn best_and_frontier_identical_across_thread_counts() {
        let mut reference: Option<DseReport> = None;
        for threads in [1usize, 2, 8] {
            let eval = Synthetic::new();
            let cache = EvalCache::new();
            let cfg = DseConfig {
                threads,
                ..DseConfig::default()
            };
            let report = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
            if let Some(r) = &reference {
                assert_eq!(r.best.label, report.best.label, "threads={threads}");
                assert_eq!(r.best.cycles, report.best.cycles);
                assert_eq!(r.frontier.len(), report.frontier.len());
                for (a, b) in r.frontier.iter().zip(&report.frontier) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.cycles, b.cycles);
                    assert_eq!(a.area_score.to_bits(), b.area_score.to_bits());
                }
                let ra: Vec<_> = r.evaluated.iter().map(|p| &p.label).collect();
                let rb: Vec<_> = report.evaluated.iter().map(|p| &p.label).collect();
                assert_eq!(ra, rb, "full ranking identical at {threads} threads");
                assert_eq!(r.stats, report.stats);
            }
            reference = Some(report);
        }
    }

    #[test]
    fn shared_cache_prevents_recompilation() {
        let eval = Synthetic::new();
        let cache = EvalCache::new();
        let cfg = DseConfig::default();
        let first = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
        let compiled_once = eval.calls.load(Ordering::SeqCst);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, compiled_once);

        // Same search again: every measurement is a cache hit.
        let second = explore(&program(), &space(), &eval, &cache, &cfg).unwrap();
        assert_eq!(eval.calls.load(Ordering::SeqCst), compiled_once);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits as usize, second.stats.evaluated);
        assert_eq!(second.best.label, first.best.label);

        // An overlapping sweep (superset of lane counts) only compiles the
        // new points.
        let wider = space().with_inner_pars(&[8, 16, 32, 64]);
        let third = explore(&program(), &wider, &eval, &cache, &cfg).unwrap();
        assert_eq!(third.stats.cache_hits as usize, first.stats.evaluated);
        assert_eq!(
            third.stats.cache_misses as usize,
            third.stats.evaluated - first.stats.evaluated
        );
    }

    #[test]
    fn empty_space_is_an_error() {
        let s = SearchSpace::new(&[("m", 64)]).with_inner_pars(&[]);
        let err = explore(
            &program(),
            &s,
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, DseError::EmptySpace);
    }

    /// An evaluator that rejects everything: the engine must report
    /// NoFeasibleConfig, not panic or return an empty best.
    struct AlwaysInfeasible;
    impl Evaluate for AlwaysInfeasible {
        fn evaluate(&self, _c: &Candidate) -> EvalOutcome {
            EvalOutcome::Infeasible("nope".into())
        }
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let err = explore(
            &program(),
            &space(),
            &AlwaysInfeasible,
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, DseError::NoFeasibleConfig);
    }

    /// An evaluator that panics on some candidates: the engine must
    /// record those as failures and still rank the survivors — and the
    /// result must stay identical across thread counts.
    struct Explosive {
        calls: AtomicU64,
    }

    impl Evaluate for Explosive {
        fn evaluate(&self, c: &Candidate) -> EvalOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            assert!(c.inner_par != 16, "injected evaluator crash at par=16");
            Synthetic::new().evaluate(c)
        }

        fn cache_salt(&self) -> String {
            "explosive".into()
        }
    }

    #[test]
    fn panicking_candidates_are_recorded_failures_not_lost_sweeps() {
        let mut reference: Option<DseReport> = None;
        for threads in [1usize, 4] {
            let eval = Explosive {
                calls: AtomicU64::new(0),
            };
            let cfg = DseConfig {
                threads,
                eval_attempts: 2,
                ..DseConfig::default()
            };
            let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
            assert!(report.stats.failed > 0, "par=16 candidates must fail");
            assert_eq!(report.failures.len(), report.stats.failed);
            for f in &report.failures {
                assert!(f.label.contains("par=16"), "unexpected failure {f:?}");
                assert!(f.error.contains("injected evaluator crash"));
            }
            assert!(
                report.evaluated.iter().all(|p| p.inner_par != 16),
                "crashed candidates must not produce points"
            );
            assert!(!report.evaluated.is_empty(), "survivors still ranked");
            assert_eq!(
                report.stats.evaluated,
                report.evaluated.len() + report.stats.failed
            );
            if let Some(r) = &reference {
                assert_eq!(r.best.label, report.best.label, "threads={threads}");
                assert_eq!(r.failures, report.failures);
                assert_eq!(r.stats, report.stats);
            }
            reference = Some(report);
        }
    }

    #[test]
    fn failed_outcomes_are_retried_not_cached() {
        // Fails on the first call for each candidate at par=16; a retry
        // within the same sweep succeeds, so the report has no failures
        // and the retry actually ran (calls > candidates).
        struct FlakyOnce {
            calls: AtomicU64,
            first: std::sync::Mutex<std::collections::HashSet<String>>,
        }
        impl Evaluate for FlakyOnce {
            fn evaluate(&self, c: &Candidate) -> EvalOutcome {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if c.inner_par == 16 && self.first.lock().unwrap().insert(c.label()) {
                    panic!("transient fault");
                }
                Synthetic::new().evaluate(c)
            }
        }
        let eval = FlakyOnce {
            calls: AtomicU64::new(0),
            first: std::sync::Mutex::new(std::collections::HashSet::new()),
        };
        let cfg = DseConfig {
            threads: 1,
            eval_attempts: 2,
            ..DseConfig::default()
        };
        let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
        assert_eq!(report.stats.failed, 0, "{:?}", report.failures);
        assert!(eval.calls.load(Ordering::SeqCst) as usize > report.stats.evaluated);
    }

    #[test]
    fn max_evals_caps_the_survivor_list() {
        let eval = Synthetic::new();
        let cfg = DseConfig {
            max_evals: 3,
            ..DseConfig::default()
        };
        let report = explore(&program(), &space(), &eval, &EvalCache::new(), &cfg).unwrap();
        assert_eq!(report.stats.evaluated, 3);
        assert_eq!(eval.calls.load(Ordering::SeqCst), 3);
    }

    /// A wider space (96 points) so guided search has something to skip.
    fn wide_space() -> SearchSpace {
        SearchSpace::new(&[("m", 64), ("n", 64)])
            .tune_dim("m")
            .unwrap()
            .tune_dim("n")
            .unwrap()
            .with_inner_pars(&[1, 2, 4, 8, 16, 32])
    }

    fn guided_cfg(threads: usize) -> DseConfig {
        DseConfig {
            threads,
            strategy: Strategy::Guided(GuidedConfig {
                sample: 16,
                top_k: 8,
                explore: 4,
                seed: DEFAULT_GUIDED_SEED,
            }),
            ..DseConfig::default()
        }
    }

    #[test]
    fn guided_finds_the_exhaustive_optimum_while_skipping_most_points() {
        let exhaustive = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap();
        let eval = Synthetic::new();
        let guided = explore(
            &program(),
            &wide_space(),
            &eval,
            &EvalCache::new(),
            &guided_cfg(1),
        )
        .unwrap();
        assert_eq!(guided.best.label, exhaustive.best.label);
        assert_eq!(guided.best.cycles, exhaustive.best.cycles);
        let s = guided.stats;
        assert_eq!(s.sampled, 16);
        assert_eq!(s.ranked, 96, "every survivor ranked");
        assert!(
            s.simulated < s.ranked / 2,
            "guided must skip most points: simulated {} of {}",
            s.simulated,
            s.ranked
        );
        assert_eq!(s.simulated, s.evaluated);
        assert_eq!(
            s.sampled + s.skipped_model + (s.simulated - s.sampled),
            s.ranked
        );
        assert_eq!(eval.calls.load(Ordering::SeqCst) as usize, s.simulated);
        assert!(
            guided.best.predicted_cycles.is_some(),
            "guided points carry model predictions"
        );
    }

    #[test]
    fn guided_reports_are_identical_across_thread_counts() {
        let mut reference: Option<DseReport> = None;
        for threads in [1usize, 4] {
            let report = explore(
                &program(),
                &wide_space(),
                &Synthetic::new(),
                &EvalCache::new(),
                &guided_cfg(threads),
            )
            .unwrap();
            if let Some(r) = &reference {
                assert_eq!(r.best.label, report.best.label);
                assert_eq!(r.stats, report.stats);
                let ra: Vec<_> = r.evaluated.iter().map(|p| &p.label).collect();
                let rb: Vec<_> = report.evaluated.iter().map(|p| &p.label).collect();
                assert_eq!(ra, rb, "threads={threads}");
                for (a, b) in r.evaluated.iter().zip(&report.evaluated) {
                    assert_eq!(
                        a.predicted_cycles.map(f64::to_bits),
                        b.predicted_cycles.map(f64::to_bits)
                    );
                }
            }
            reference = Some(report);
        }
    }

    #[test]
    fn objectives_select_different_winners() {
        // Synthetic: cycles fall with lanes, area grows with lanes, so
        // min-cycles picks the widest design and an area cap forces a
        // narrower one.
        let run = |objective: Objective| {
            explore(
                &program(),
                &wide_space(),
                &Synthetic::new(),
                &EvalCache::new(),
                &DseConfig {
                    objective,
                    ..DseConfig::default()
                },
            )
        };
        let min_cycles = run(Objective::MinCycles).unwrap();
        let lex = run(Objective::CyclesThenArea).unwrap();
        assert_eq!(
            min_cycles.best.cycles, lex.best.cycles,
            "same fastest cycle count either way"
        );
        assert!(min_cycles.best.label.contains("par=32"));

        // Cap below the 32-lane design's area: the winner must fit and
        // be the fastest point that fits.
        let wide_area = min_cycles.best.area_score;
        let cap = wide_area * 0.9;
        let capped = run(Objective::FastestUnderAreaCap { area_cap: cap }).unwrap();
        assert!(capped.best.area_score <= cap);
        assert!(capped.best.cycles >= min_cycles.best.cycles);
        let fastest_fitting = lex
            .evaluated
            .iter()
            .filter(|p| p.area_score <= cap)
            .map(|p| p.cycles)
            .min()
            .unwrap();
        assert_eq!(capped.best.cycles, fastest_fitting);

        // A cap below every point is NoFeasibleConfig, not a silent
        // over-cap winner.
        let err = run(Objective::FastestUnderAreaCap { area_cap: 0.0 }).unwrap_err();
        assert_eq!(err, DseError::NoFeasibleConfig);
    }

    #[test]
    fn guided_respects_the_objective_under_an_area_cap() {
        let cap_source = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig {
                objective: Objective::MinCycles,
                ..DseConfig::default()
            },
        )
        .unwrap();
        let cap = cap_source.best.area_score * 0.9;
        let objective = Objective::FastestUnderAreaCap { area_cap: cap };
        let exhaustive = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig {
                objective,
                ..DseConfig::default()
            },
        )
        .unwrap();
        let guided = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig {
                objective,
                ..guided_cfg(1)
            },
        )
        .unwrap();
        assert_eq!(guided.best.label, exhaustive.best.label);
        assert!(guided.best.area_score <= cap);
    }

    #[test]
    fn exhaustive_shards_partition_the_work_and_merge_losslessly() {
        // Unsharded reference on a fresh cache.
        let reference = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &DseConfig::default(),
        )
        .unwrap();

        let merged = EvalCache::new();
        let mut measured_total = 0usize;
        for index in 0..3u64 {
            let shard_cache = EvalCache::new();
            let cfg = DseConfig {
                shard: Some(crate::shard::Shard { index, count: 3 }),
                ..DseConfig::default()
            };
            // A shard may own zero feasible points; that is not an error
            // for the merged result.
            match explore(
                &program(),
                &wide_space(),
                &Synthetic::new(),
                &shard_cache,
                &cfg,
            ) {
                Ok(r) => {
                    assert_eq!(
                        r.stats.evaluated + r.stats.shard_skipped,
                        reference.stats.evaluated,
                        "shard sees the same survivor set"
                    );
                    measured_total += r.stats.evaluated;
                }
                Err(DseError::NoFeasibleConfig) => {}
                Err(e) => panic!("unexpected shard error: {e}"),
            }
            merged.merge_from(&shard_cache).unwrap();
        }
        assert_eq!(
            measured_total, reference.stats.evaluated,
            "shards partition the survivors exactly"
        );

        // Re-running unsharded against the merged cache is all-hits and
        // reproduces the reference report (modulo cache tallies).
        let rerun = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &merged,
            &DseConfig::default(),
        )
        .unwrap();
        assert_eq!(rerun.stats.cache_misses, 0, "merged cache covers the space");
        assert_eq!(rerun.best.label, reference.best.label);
        let ra: Vec<_> = reference.evaluated.iter().map(|p| &p.label).collect();
        let rb: Vec<_> = rerun.evaluated.iter().map(|p| &p.label).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn guided_shards_agree_on_the_winner_for_every_shard_count() {
        let unsharded = explore(
            &program(),
            &wide_space(),
            &Synthetic::new(),
            &EvalCache::new(),
            &guided_cfg(1),
        )
        .unwrap();
        for count in [1u64, 3, 7] {
            let merged = EvalCache::new();
            for index in 0..count {
                let shard_cache = EvalCache::new();
                let cfg = DseConfig {
                    shard: Some(crate::shard::Shard { index, count }),
                    ..guided_cfg(1)
                };
                match explore(
                    &program(),
                    &wide_space(),
                    &Synthetic::new(),
                    &shard_cache,
                    &cfg,
                ) {
                    Ok(_) | Err(DseError::NoFeasibleConfig) => {}
                    Err(e) => panic!("unexpected shard error: {e}"),
                }
                merged.merge_from(&shard_cache).unwrap();
            }
            let rerun = explore(
                &program(),
                &wide_space(),
                &Synthetic::new(),
                &merged,
                &guided_cfg(1),
            )
            .unwrap();
            assert_eq!(
                rerun.stats.cache_misses, 0,
                "count={count}: merged shard caches cover the guided slice"
            );
            assert_eq!(rerun.best.label, unsharded.best.label, "count={count}");
            assert_eq!(rerun.best.cycles, unsharded.best.cycles);
            let ra: Vec<_> = unsharded.evaluated.iter().map(|p| &p.label).collect();
            let rb: Vec<_> = rerun.evaluated.iter().map(|p| &p.label).collect();
            assert_eq!(ra, rb, "count={count}: full ranking identical after merge");
        }
    }
}
