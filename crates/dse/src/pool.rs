//! A minimal std-only work-stealing thread pool.
//!
//! The workspace must build `--offline` with zero registry dependencies,
//! so this is scoped threads over per-worker deques: each worker pops
//! jobs from the front of its own queue and, when empty, steals from the
//! *back* of a peer's queue (the classic Chase-Lev discipline, with a
//! mutex per deque instead of lock-free buffers — candidate evaluation is
//! coarse enough that queue contention is irrelevant).
//!
//! Results are merged by job index after all workers join, so the output
//! order — and anything derived from it — is independent of thread count
//! and scheduling.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f` over every item, on `threads` workers, returning results in
/// item order. `threads <= 1` degenerates to a serial loop with no thread
/// spawns.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Deal indices round-robin so every worker starts with a share.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (w..items.len())
                    .step_by(threads)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let next_job = |worker: usize| -> Option<usize> {
        if let Some(i) = queues[worker].lock().expect("queue lock").pop_front() {
            return Some(i);
        }
        for (other, queue) in queues.iter().enumerate() {
            if other == worker {
                continue;
            }
            if let Some(i) = queue.lock().expect("queue lock").pop_back() {
                return Some(i);
            }
        }
        None
    };

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next_job = &next_job;
                let f = &f;
                s.spawn(move || {
                    let mut done = Vec::new();
                    while let Some(i) = next_job(w) {
                        done.push((i, f(i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                debug_assert!(slots[i].is_none(), "job {i} executed twice");
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 128] {
            let out = run_indexed(threads, &items, |i, v| {
                assert_eq!(i, *v);
                v * v
            });
            assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, &(0..50).collect::<Vec<usize>>(), |_, v| {
            counters[*v].fetch_add(1, Ordering::SeqCst)
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_indexed(8, &[] as &[u32], |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_steal_unbalanced_load() {
        // One expensive job dealt to worker 0; peers must steal the rest
        // rather than idle. (Observable as completion, not timing: with a
        // broken stealer the test would still pass serially, so also check
        // more than one worker participated when jobs outnumber threads.)
        let seen = Mutex::new(std::collections::HashSet::new());
        run_indexed(2, &(0..64).collect::<Vec<usize>>(), |_, v| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if *v == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(!seen.lock().unwrap().is_empty());
    }
}
