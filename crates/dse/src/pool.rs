//! A minimal std-only work-stealing thread pool.
//!
//! The workspace must build `--offline` with zero registry dependencies,
//! so this is scoped threads over per-worker deques: each worker pops
//! jobs from the front of its own queue and, when empty, steals from the
//! *back* of a peer's queue (the classic Chase-Lev discipline, with a
//! mutex per deque instead of lock-free buffers — candidate evaluation is
//! coarse enough that queue contention is irrelevant).
//!
//! Results are merged by job index after all workers join, so the output
//! order — and anything derived from it — is independent of thread count
//! and scheduling.
//!
//! Jobs run inside [`std::panic::catch_unwind`], so one panicking job
//! cannot take down the pool, poison a queue, or abort the sweep:
//! [`run_indexed`] re-raises the original payload after every other job
//! has finished, while [`run_indexed_isolated`] converts the panic into a
//! per-job `Err` (with bounded in-place retry) and keeps going.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

type Panic = Box<dyn Any + Send + 'static>;

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// the queues and result slots stay usable even if a job unwinds at an
/// unexpected point.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Extracts a human-readable message from a panic payload.
#[must_use]
pub fn panic_message(payload: &Panic) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job, retrying up to `attempts` times on panic; keeps the last
/// payload when every attempt panics.
fn attempt<R>(attempts: usize, mut job: impl FnMut() -> R) -> Result<R, Panic> {
    let mut last: Option<Panic> = None;
    for _ in 0..attempts.max(1) {
        match catch_unwind(AssertUnwindSafe(&mut job)) {
            Ok(r) => return Ok(r),
            Err(p) => last = Some(p),
        }
    }
    Err(match last {
        Some(p) => p,
        None => Box::new("job ran zero attempts"),
    })
}

fn run_caught<T, R, F>(threads: usize, items: &[T], attempts: usize, f: &F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| attempt(attempts, || f(i, t)))
            .collect();
    }

    // Deal indices round-robin so every worker starts with a share.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (w..items.len())
                    .step_by(threads)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let next_job = |worker: usize| -> Option<usize> {
        if let Some(i) = lock_unpoisoned(&queues[worker]).pop_front() {
            return Some(i);
        }
        for (other, queue) in queues.iter().enumerate() {
            if other == worker {
                continue;
            }
            if let Some(i) = lock_unpoisoned(queue).pop_back() {
                return Some(i);
            }
        }
        None
    };

    let mut slots: Vec<Option<Result<R, Panic>>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next_job = &next_job;
                s.spawn(move || {
                    let mut done = Vec::new();
                    while let Some(i) = next_job(w) {
                        done.push((i, attempt(attempts, || f(i, &items[i]))));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // The worker closure cannot panic (jobs are caught), so a join
            // failure is a harness bug — re-raise it rather than swallow.
            match h.join() {
                Ok(done) => {
                    for (i, r) in done {
                        debug_assert!(slots[i].is_none(), "job {i} executed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(p) => resume_unwind(p),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // Unreachable by construction (every index is dealt to exactly
            // one queue); surfaced as a job failure rather than a panic.
            None => Err(Box::new("job was never executed") as Panic),
        })
        .collect()
}

/// Runs `f` over every item, on `threads` workers, returning results in
/// item order. `threads <= 1` degenerates to a serial loop with no thread
/// spawns.
///
/// # Panics
///
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread *after* all other jobs have completed — the pool itself never
/// deadlocks or poisons on a panicking job.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_caught(threads, items, 1, &f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        })
        .collect()
}

/// Like [`run_indexed`], but a panicking job is retried in place up to
/// `attempts` total attempts and, if it keeps panicking, recorded as an
/// `Err` carrying the panic message — the sweep always completes and
/// every other job's result is preserved.
pub fn run_indexed_isolated<T, R, F>(
    threads: usize,
    items: &[T],
    attempts: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_caught(threads, items, attempts, &f)
        .into_iter()
        .map(|r| r.map_err(|p| panic_message(&p)))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 128] {
            let out = run_indexed(threads, &items, |i, v| {
                assert_eq!(i, *v);
                v * v
            });
            assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, &(0..50).collect::<Vec<usize>>(), |_, v| {
            counters[*v].fetch_add(1, Ordering::SeqCst)
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_indexed(8, &[] as &[u32], |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_steal_unbalanced_load() {
        // One expensive job dealt to worker 0; peers must steal the rest
        // rather than idle. (Observable as completion, not timing: with a
        // broken stealer the test would still pass serially, so also check
        // more than one worker participated when jobs outnumber threads.)
        let seen = Mutex::new(std::collections::HashSet::new());
        run_indexed(2, &(0..64).collect::<Vec<usize>>(), |_, v| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if *v == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn isolated_pool_records_panics_and_finishes_the_sweep() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 4] {
            let out = run_indexed_isolated(threads, &items, 1, |_, v| {
                assert!(*v % 7 != 3, "job {v} exploded");
                *v * 10
            });
            assert_eq!(out.len(), items.len());
            for (v, r) in items.iter().zip(&out) {
                if *v % 7 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert!(err.contains("exploded"), "got {err}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(*v * 10));
                }
            }
        }
    }

    #[test]
    fn isolated_pool_retries_each_job_a_bounded_number_of_times() {
        let attempts = AtomicUsize::new(0);
        let out = run_indexed_isolated(1, &[0u32], 3, |_, _| {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always fails");
        }) as Vec<Result<(), String>>;
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert!(out[0].is_err());
    }

    #[test]
    fn isolated_pool_retry_recovers_a_flaky_job() {
        let attempts = AtomicUsize::new(0);
        let out = run_indexed_isolated(1, &[0u32], 3, |_, _| {
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            7u32
        });
        assert_eq!(out[0].as_ref().unwrap(), &7);
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn non_isolated_pool_reraises_the_original_panic_after_the_sweep() {
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(2, &(0..16).collect::<Vec<usize>>(), |_, v| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(*v != 5, "boom at five");
            });
        }));
        let payload = caught.unwrap_err();
        assert!(panic_message(&payload).contains("boom at five"));
        // Every other job still ran to completion before the re-raise.
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }
}
