//! Pareto-frontier extraction over (cycles, area).
//!
//! Points are ranked by a *total* order — cycles, then the scalar area
//! objective (worst-case device utilization, [`pphw_hw::area_objective`]),
//! then the candidate label — so the frontier and the best point are
//! unique and identical regardless of evaluation order or thread count.

use std::cmp::Ordering;

use crate::report::EvaluatedPoint;

/// The canonical total order on evaluated points: fewest cycles first,
/// ties broken by smaller area, then lexicographic label.
#[must_use]
pub fn compare_points(a: &EvaluatedPoint, b: &EvaluatedPoint) -> Ordering {
    a.cycles
        .cmp(&b.cycles)
        .then(a.area_score.total_cmp(&b.area_score))
        .then_with(|| a.label.cmp(&b.label))
}

/// Extracts the cycles-vs-area Pareto frontier: every point for which no
/// other point is at least as fast *and* at least as small (with one
/// canonical representative per (cycles, area) pair). Returned fastest
/// first; area strictly decreases along the frontier.
#[must_use]
pub fn pareto_frontier(points: &[EvaluatedPoint]) -> Vec<EvaluatedPoint> {
    let mut sorted: Vec<EvaluatedPoint> = points.to_vec();
    sorted.sort_by(compare_points);
    let mut frontier: Vec<EvaluatedPoint> = Vec::new();
    for p in sorted {
        match frontier.last() {
            Some(last) if p.area_score >= last.area_score => {}
            _ => frontier.push(p),
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_hw::Area;

    fn pt(label: &str, cycles: u64, area_score: f64) -> EvaluatedPoint {
        EvaluatedPoint {
            label: label.to_string(),
            tiles: vec![],
            inner_par: 1,
            sim_label: "max4".into(),
            cycles,
            dram_words: 0,
            on_chip_bytes: 0,
            area: Area::default(),
            area_score,
            predicted_cycles: None,
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = vec![
            pt("fast-big", 100, 0.9),
            pt("dominated", 200, 0.95), // slower and bigger than fast-big
            pt("slow-small", 300, 0.1),
            pt("mid", 150, 0.5),
        ];
        let f = pareto_frontier(&pts);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast-big", "mid", "slow-small"]);
        // Area strictly decreases along the frontier.
        for w in f.windows(2) {
            assert!(w[1].area_score < w[0].area_score);
            assert!(w[1].cycles > w[0].cycles);
        }
    }

    #[test]
    fn equal_points_keep_one_canonical_representative() {
        let pts = vec![pt("b", 100, 0.5), pt("a", 100, 0.5)];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].label, "a", "lexicographic tie-break");
    }

    #[test]
    fn frontier_is_order_independent() {
        let mut pts = vec![
            pt("a", 10, 0.3),
            pt("b", 20, 0.2),
            pt("c", 15, 0.25),
            pt("d", 5, 0.9),
        ];
        let f1 = pareto_frontier(&pts);
        pts.reverse();
        let f2 = pareto_frontier(&pts);
        let l1: Vec<_> = f1.iter().map(|p| &p.label).collect();
        let l2: Vec<_> = f2.iter().map(|p| &p.label).collect();
        assert_eq!(l1, l2);
    }
}
