//! The crash-safe append-only journal behind [`EvalCache::open_journaled`].
//!
//! A journaled cache makes every evaluation durable *as it lands* instead
//! of only at cooperative shutdown: each [`EvalCache::insert`] appends one
//! checksummed record to a sibling `<snapshot>.jnl` file, fsynced in
//! batches, so a `kill -9` at any instant loses at most the unflushed
//! batch. Recovery loads the snapshot (if any), then replays the journal
//! record by record, stopping at the first torn or corrupt record — the
//! intact prefix is trusted, the tail is truncated away, and appending
//! resumes from there.
//!
//! On-disk layout (all integers little-endian, same entry encoding and
//! checksum as the snapshot format documented on
//! [`CacheFileError`](crate::cache::CacheFileError)):
//!
//! ```text
//! magic    [u8; 8]  = b"PPHWEVJ\0"
//! version  u32      = 1
//! record*:
//!   key       u64      canonical configuration hash
//!   len       u32      payload length in bytes
//!   payload   [u8;len] encoded EvalOutcome (Failed is never journaled)
//!   checksum  u64      fnv1a64(key-bytes ++ payload)
//! ```
//!
//! The journal is bounded by compaction: when it outgrows
//! [`JournalConfig::compact_bytes`], the full cache is rewritten as a
//! snapshot through the existing unique-temp + atomic-rename path and the
//! journal is reset to an empty header. A crash between those two steps
//! is safe in both orders — replaying journal records that are already in
//! the snapshot re-inserts identical values, and a half-written header is
//! recognized as an empty journal while every entry lives in the
//! just-published snapshot.
//!
//! [`EvalCache::insert`]: crate::cache::EvalCache::insert
//! [`EvalCache::open_journaled`]: crate::cache::EvalCache::open_journaled

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::cache::{decode_outcome, encode_outcome, entry_checksum};
use crate::EvalOutcome;

/// File magic for the evaluation-cache journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PPHWEVJ\0";

/// Journal format version; readers treat any other version as an empty
/// (untrusted) journal and start fresh — the snapshot is never at risk.
pub const JOURNAL_VERSION: u32 = 1;

/// Bytes of the journal header (magic + version).
const HEADER_LEN: u64 = 12;

/// Tuning for a journaled cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// `fsync` the journal after this many appended records. `1` makes
    /// every insert durable before it returns; larger values batch the
    /// syncs (a crash loses at most the unflushed batch).
    pub sync_every: usize,
    /// Rewrite the snapshot and reset the journal once the journal file
    /// exceeds this many bytes.
    pub compact_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            sync_every: 8,
            compact_bytes: 4 << 20,
        }
    }
}

/// Lifetime counters for a journaled cache, including what recovery saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Entries recovered from the snapshot file at open.
    pub recovered_snapshot: u64,
    /// Entries replayed from the journal at open.
    pub recovered_journal: u64,
    /// Bytes discarded from the journal's torn tail at open.
    pub torn_tail_bytes: u64,
    /// Records appended since open.
    pub appended: u64,
    /// `fsync` calls issued for appended batches.
    pub syncs: u64,
    /// Snapshot rewrites triggered by journal growth or [`checkpoint`].
    ///
    /// [`checkpoint`]: crate::cache::EvalCache::checkpoint
    pub compactions: u64,
    /// Journal write errors (the entry stays in memory; persistence
    /// degrades but serving continues).
    pub io_errors: u64,
}

/// The sibling journal path for a snapshot path: `<snapshot>.jnl`.
#[must_use]
pub fn journal_path(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.as_os_str().to_os_string();
    os.push(".jnl");
    PathBuf::from(os)
}

/// Parses journal bytes into the entries of every intact record plus the
/// byte offset where the intact prefix ends. A missing/short/foreign
/// header yields `(vec![], 0)`: the whole file is untrusted. Any torn or
/// corrupt record ends the replay; everything before it is kept.
#[must_use]
pub fn replay(bytes: &[u8]) -> (Vec<(u64, EvalOutcome)>, u64) {
    if bytes.len() < HEADER_LEN as usize
        || bytes[..8] != JOURNAL_MAGIC
        || bytes[8..12] != JOURNAL_VERSION.to_le_bytes()
    {
        return (Vec::new(), 0);
    }
    let mut entries = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while let Some((key, outcome, next)) = parse_record(bytes, pos) {
        entries.push((key, outcome));
        pos = next;
    }
    (entries, pos as u64)
}

/// Parses one record at `pos`, returning `(key, outcome, next_pos)` or
/// `None` if the record is truncated, corrupt, or undecodable.
fn parse_record(bytes: &[u8], pos: usize) -> Option<(u64, EvalOutcome, usize)> {
    let fixed = bytes.get(pos..pos + 12)?;
    let key = u64::from_le_bytes([
        fixed[0], fixed[1], fixed[2], fixed[3], fixed[4], fixed[5], fixed[6], fixed[7],
    ]);
    let len = u32::from_le_bytes([fixed[8], fixed[9], fixed[10], fixed[11]]) as usize;
    let payload_start = pos + 12;
    let payload = bytes.get(payload_start..payload_start.checked_add(len)?)?;
    let sum_bytes = bytes.get(payload_start + len..payload_start + len + 8)?;
    let checksum = u64::from_le_bytes([
        sum_bytes[0],
        sum_bytes[1],
        sum_bytes[2],
        sum_bytes[3],
        sum_bytes[4],
        sum_bytes[5],
        sum_bytes[6],
        sum_bytes[7],
    ]);
    if checksum != entry_checksum(key, payload) {
        return None;
    }
    let outcome = decode_outcome(payload)?;
    Some((key, outcome, payload_start + len + 8))
}

/// One record, encoded: `key | len | payload | checksum`.
#[must_use]
pub(crate) fn encode_record(key: u64, outcome: &EvalOutcome) -> Vec<u8> {
    let payload = encode_outcome(outcome);
    let mut rec = Vec::with_capacity(20 + payload.len());
    rec.extend_from_slice(&key.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec.extend_from_slice(&entry_checksum(key, &payload).to_le_bytes());
    rec
}

/// The live append handle plus its counters. Owned by the cache behind a
/// mutex; all methods assume the caller holds that lock.
#[derive(Debug)]
pub(crate) struct Journal {
    pub(crate) snapshot_path: PathBuf,
    file: File,
    /// Current journal file length in bytes.
    bytes: u64,
    /// Records appended since the last fsync.
    pending: usize,
    pub(crate) cfg: JournalConfig,
    pub(crate) stats: JournalStats,
}

impl Journal {
    /// Opens (creating if absent) the journal next to `snapshot`,
    /// replaying its intact prefix and truncating any torn tail so that
    /// appends resume cleanly. Returns the handle plus the replayed
    /// entries (the caller folds them into the in-memory table).
    pub(crate) fn open(
        snapshot: &Path,
        cfg: JournalConfig,
    ) -> io::Result<(Journal, Vec<(u64, EvalOutcome)>)> {
        let path = journal_path(snapshot);
        let existing = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (entries, valid) = replay(&existing);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let bytes = if valid < HEADER_LEN {
            // Missing, short, or foreign header: start a fresh journal.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&JOURNAL_MAGIC)?;
            file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
            file.sync_data()?;
            HEADER_LEN
        } else {
            // Drop the torn tail so the next append starts on a record
            // boundary, then continue from the intact prefix.
            if existing.len() as u64 > valid {
                file.set_len(valid)?;
                file.sync_data()?;
            }
            file.seek(SeekFrom::End(0))?;
            valid
        };
        let stats = JournalStats {
            recovered_journal: entries.len() as u64,
            torn_tail_bytes: existing.len() as u64 - torn_base(existing.len() as u64, valid),
            ..JournalStats::default()
        };
        Ok((
            Journal {
                snapshot_path: snapshot.to_path_buf(),
                file,
                bytes,
                pending: 0,
                cfg,
                stats,
            },
            entries,
        ))
    }

    /// Appends one record, syncing when the pending batch is full.
    pub(crate) fn append(&mut self, key: u64, outcome: &EvalOutcome) -> io::Result<()> {
        let rec = encode_record(key, outcome);
        self.file.write_all(&rec)?;
        self.bytes += rec.len() as u64;
        self.stats.appended += 1;
        self.pending += 1;
        if self.pending >= self.cfg.sync_every.max(1) {
            self.file.sync_data()?;
            self.pending = 0;
            self.stats.syncs += 1;
        }
        Ok(())
    }

    /// Whether the journal has outgrown its compaction threshold.
    pub(crate) fn wants_compaction(&self) -> bool {
        self.bytes >= self.cfg.compact_bytes
    }

    /// Forces any pending batch to disk.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
            self.stats.syncs += 1;
        }
        Ok(())
    }

    /// Resets the journal to an empty header (called after the snapshot
    /// has been atomically republished, so no entry is ever only-here).
    pub(crate) fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&JOURNAL_MAGIC)?;
        self.file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        self.file.sync_data()?;
        self.bytes = HEADER_LEN;
        self.pending = 0;
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best effort: flush the last batch on clean teardown. A crash
        // skips this, which is exactly the case the journal exists for.
        let _ = self.sync();
    }
}

/// How many of `total` bytes survive recovery: the intact prefix, or
/// nothing when the header itself was unusable.
fn torn_base(total: u64, valid: u64) -> u64 {
    if valid < HEADER_LEN {
        0
    } else {
        valid.min(total)
    }
}
