//! Memoized evaluation cache.
//!
//! Every candidate is identified by a canonical 64-bit hash of its full
//! configuration — program name, concrete sizes, tile sizes, parallelism
//! factor, simulation substrate, and the evaluator's salt (optimization
//! level, budgets, …). Repeated searches, resumed searches, and
//! overlapping sweeps that share a cache therefore never recompile the
//! same design: the second encounter is a lookup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::space::Candidate;
use crate::EvalOutcome;

/// FNV-1a 64-bit over a byte string — stable across runs, platforms, and
/// thread counts (unlike `std`'s randomized hasher).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical configuration hash of one candidate. Sizes and tiles are
/// sorted by dimension name so two sweeps that enumerate dimensions in
/// different orders still share cache entries.
#[must_use]
pub fn config_key(program: &str, sizes: &[(String, i64)], salt: &str, c: &Candidate) -> u64 {
    let mut sorted_sizes: Vec<_> = sizes.iter().collect();
    sorted_sizes.sort();
    let mut sorted_tiles: Vec<_> = c.tiles.iter().collect();
    sorted_tiles.sort();
    let canon = format!(
        "prog={program}|sizes={:?}|tiles={:?}|par={}|sim={}|salt={salt}",
        sorted_sizes,
        sorted_tiles,
        c.inner_par,
        c.sim.canonical_key()
    );
    fnv1a64(canon.as_bytes())
}

/// A thread-safe memoization table from configuration hash to evaluation
/// outcome, with lifetime hit/miss counters.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<u64, EvalOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Locks the table, recovering from poisoning: entries are only ever
    /// inserted whole, so a panic elsewhere cannot leave a half-written
    /// measurement behind.
    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<u64, EvalOutcome>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a configuration, counting a hit or miss.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<EvalOutcome> {
        let out = self.table().get(&key).cloned();
        match out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Stores a measurement.
    pub fn insert(&self, key: u64, outcome: EvalOutcome) {
        self.table().insert(key, outcome);
    }

    /// Number of cached configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Measurement;
    use pphw_hw::Area;
    use pphw_sim::SimConfig;

    fn cand(tiles: &[(&str, i64)], par: u32) -> Candidate {
        Candidate {
            tiles: tiles.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            inner_par: par,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
        }
    }

    fn sizes(pairs: &[(&str, i64)]) -> Vec<(String, i64)> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    fn outcome(cycles: u64) -> EvalOutcome {
        EvalOutcome::Feasible(Measurement {
            cycles,
            dram_words: 1,
            on_chip_bytes: 1,
            area: Area::default(),
        })
    }

    #[test]
    fn key_is_stable_and_order_insensitive() {
        let s1 = sizes(&[("m", 64), ("n", 32)]);
        let s2 = sizes(&[("n", 32), ("m", 64)]);
        let c1 = cand(&[("m", 8), ("n", 4)], 16);
        let c2 = cand(&[("n", 4), ("m", 8)], 16);
        assert_eq!(config_key("p", &s1, "", &c1), config_key("p", &s2, "", &c2));
    }

    #[test]
    fn key_distinguishes_every_component() {
        let s = sizes(&[("m", 64)]);
        let base = config_key("p", &s, "", &cand(&[("m", 8)], 16));
        assert_ne!(base, config_key("q", &s, "", &cand(&[("m", 8)], 16)));
        assert_ne!(base, config_key("p", &s, "", &cand(&[("m", 4)], 16)));
        assert_ne!(base, config_key("p", &s, "", &cand(&[("m", 8)], 32)));
        assert_ne!(base, config_key("p", &s, "meta", &cand(&[("m", 8)], 16)));
        let mut other_sim = cand(&[("m", 8)], 16);
        other_sim.sim = SimConfig::default().with_clock_mhz(200.0);
        assert_ne!(base, config_key("p", &s, "", &other_sim));
        assert_ne!(
            base,
            config_key("p", &sizes(&[("m", 128)]), "", &cand(&[("m", 8)], 16))
        );
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = EvalCache::new();
        let key = 42u64;
        assert!(cache.get(key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key, outcome(100));
        assert_eq!(cache.get(key), Some(outcome(100)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
