//! The two-level evaluation cache.
//!
//! Every candidate is identified by a canonical 64-bit hash of its full
//! configuration — program name, concrete sizes, tile sizes, parallelism
//! factor, simulation substrate, and the evaluator's salt (optimization
//! level, budgets, …). Repeated searches, resumed searches, and
//! overlapping sweeps that share a cache therefore never recompile the
//! same design: the second encounter is a lookup.
//!
//! Two cache levels stack on that key scheme:
//!
//! * [`DesignCache`] — in-memory, per-sweep, keyed by [`design_key`] (the
//!   configuration hash *minus* the simulation substrate). Candidates
//!   differing only in their `SimConfig` share one compiled design, built
//!   exactly once even under concurrent evaluation.
//! * [`EvalCache`] — the full-key measurement memo, optionally persisted
//!   to disk ([`EvalCache::save`] / [`EvalCache::load`]) in a versioned,
//!   checksummed binary format. A truncated, corrupt, or
//!   version-mismatched file degrades to a cold cache — a typed
//!   [`CacheFileError`] or a silent miss, never a panic — and
//!   [`EvalOutcome::Failed`] entries are never persisted.
//!
//! For crash safety beyond cooperative shutdown, a cache can be opened
//! *journaled* ([`EvalCache::open_journaled`]): every insert is also
//! appended to a sibling write-ahead journal (see [`crate::journal`]), so
//! a process killed at any instant loses at most the last unflushed fsync
//! batch instead of everything since the previous `save`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pphw_hw::Area;

use crate::journal::{Journal, JournalConfig, JournalStats};
use crate::space::Candidate;
use crate::{EvalOutcome, Measurement};

/// FNV-1a 64-bit over a byte string — stable across runs, platforms, and
/// thread counts (unlike `std`'s randomized hasher).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical configuration hash of one candidate. Sizes and tiles are
/// sorted by dimension name so two sweeps that enumerate dimensions in
/// different orders still share cache entries.
#[must_use]
pub fn config_key(program: &str, sizes: &[(String, i64)], salt: &str, c: &Candidate) -> u64 {
    let mut sorted_sizes: Vec<_> = sizes.iter().collect();
    sorted_sizes.sort();
    let mut sorted_tiles: Vec<_> = c.tiles.iter().collect();
    sorted_tiles.sort();
    let canon = format!(
        "prog={program}|sizes={:?}|tiles={:?}|par={}|sim={}|salt={salt}{}",
        sorted_sizes,
        sorted_tiles,
        c.inner_par,
        c.sim.canonical_key(),
        cap_suffix(c)
    );
    fnv1a64(canon.as_bytes())
}

/// Key suffix for a swept channel-capacity scale. Empty at the default
/// scale so every pre-existing cache entry (and on-disk cache file) keeps
/// its key.
fn cap_suffix(c: &Candidate) -> String {
    if c.cap_permille == 1000 {
        String::new()
    } else {
        format!("|cap={}", c.cap_permille)
    }
}

/// The design identity of a candidate: the canonical configuration hash
/// *without* the simulation substrate. Two candidates with equal design
/// keys compile to the same hardware — only their simulated substrate
/// differs — so they can share one compile artifact.
#[must_use]
pub fn design_key(program: &str, sizes: &[(String, i64)], salt: &str, c: &Candidate) -> u64 {
    let mut sorted_sizes: Vec<_> = sizes.iter().collect();
    sorted_sizes.sort();
    let mut sorted_tiles: Vec<_> = c.tiles.iter().collect();
    sorted_tiles.sort();
    let canon = format!(
        "prog={program}|sizes={sorted_sizes:?}|tiles={sorted_tiles:?}|par={}|salt={salt}{}",
        c.inner_par,
        cap_suffix(c)
    );
    fnv1a64(canon.as_bytes())
}

/// A thread-safe share-one-computation table: the first caller of
/// [`DesignCache::get_or_compute`] for a key runs the builder exactly
/// once; concurrent callers for the same key block on the entry's
/// [`OnceLock`] and receive the same [`Arc`]. Used to share compile
/// artifacts across candidates that differ only in simulation substrate,
/// deterministically at any thread count (the builder is pure, and
/// exactly one invocation ever runs per key).
#[derive(Debug)]
pub struct DesignCache<T> {
    slots: Mutex<HashMap<u64, Arc<OnceLock<Arc<T>>>>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl<T> Default for DesignCache<T> {
    fn default() -> Self {
        DesignCache::new()
    }
}

impl<T> DesignCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> DesignCache<T> {
        DesignCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// Returns the artifact for `key`, running `build` only if this is the
    /// key's first sighting. Concurrent callers block until the one
    /// builder finishes and then share its result.
    pub fn get_or_compute(&self, key: u64, build: impl FnOnce() -> T) -> Arc<T> {
        let slot = {
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(slots.entry(key).or_default())
        };
        let mut built = false;
        let value = Arc::clone(slot.get_or_init(|| {
            built = true;
            Arc::new(build())
        }));
        if built {
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Number of distinct keys seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of lookups served from an existing artifact.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of builder invocations (one per distinct key).
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }
}

/// A thread-safe memoization table from configuration hash to evaluation
/// outcome, with lifetime hit/miss counters and an optional write-ahead
/// journal for crash safety ([`EvalCache::open_journaled`]).
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<u64, EvalOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// `Some` iff the cache was opened journaled. Locked strictly *after*
    /// (never while holding a wait on) `map`: `insert` releases the table
    /// lock before appending, and compaction — which takes the table lock
    /// inside the journal lock via `save` — is therefore cycle-free.
    journal: Mutex<Option<Journal>>,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Locks the table, recovering from poisoning: entries are only ever
    /// inserted whole, so a panic elsewhere cannot leave a half-written
    /// measurement behind.
    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<u64, EvalOutcome>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a configuration, counting a hit or miss.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<EvalOutcome> {
        let out = self.table().get(&key).cloned();
        match out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Stores a measurement. On a journaled cache the entry is also
    /// appended to the write-ahead journal (unless it is an
    /// [`EvalOutcome::Failed`], which is never persisted), and the journal
    /// is compacted into a fresh snapshot once it outgrows its size
    /// threshold. The in-memory insert always happens first, so a
    /// snapshot written by compaction is always a superset of what the
    /// journal recorded.
    pub fn insert(&self, key: u64, outcome: EvalOutcome) {
        let journal_worthy = !matches!(outcome, EvalOutcome::Failed(_));
        if journal_worthy {
            self.table().insert(key, outcome.clone());
            self.journal_append(key, &outcome);
        } else {
            self.table().insert(key, outcome);
        }
    }

    /// Locks the journal slot, recovering from poisoning (the journal's
    /// own byte-level invariants are maintained by `Journal`, not by the
    /// critical section).
    fn journal_slot(&self) -> std::sync::MutexGuard<'_, Option<Journal>> {
        self.journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one already-inserted entry to the journal (no-op on an
    /// unjournaled cache) and compacts if the journal has outgrown its
    /// threshold. Journal I/O errors degrade persistence, never serving:
    /// they are counted in [`JournalStats::io_errors`] and the in-memory
    /// entry stands.
    fn journal_append(&self, key: u64, outcome: &EvalOutcome) {
        let mut slot = self.journal_slot();
        let Some(j) = slot.as_mut() else { return };
        if let Err(e) = j.append(key, outcome) {
            j.stats.io_errors += 1;
            eprintln!("warning: eval-cache journal append failed: {e}");
            return;
        }
        if j.wants_compaction() {
            let snapshot = j.snapshot_path.clone();
            // Publish the snapshot first, then reset the journal: a crash
            // between the two replays entries that are already in the
            // snapshot, which is harmless.
            match self.save(&snapshot) {
                Ok(()) => {
                    if let Err(e) = j.reset() {
                        j.stats.io_errors += 1;
                        eprintln!("warning: eval-cache journal reset failed: {e}");
                    } else {
                        j.stats.compactions += 1;
                    }
                }
                Err(e) => {
                    j.stats.io_errors += 1;
                    eprintln!("warning: eval-cache compaction save failed: {e}");
                }
            }
        }
    }

    /// Number of cached configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Serializes every persistable entry to `path`, atomically (written
    /// to a uniquely-named sibling temp file, then renamed — safe under
    /// concurrent savers: readers always see a complete image, and the
    /// last completed save wins). [`EvalOutcome::Failed`]
    /// entries are skipped: a later sweep should retry a failure, not
    /// replay it. The format is the versioned, checksummed layout
    /// documented on [`CacheFileError`].
    ///
    /// # Errors
    ///
    /// [`CacheFileError::Io`] if the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), CacheFileError> {
        let table = self.table();
        let mut entries: Vec<(u64, Vec<u8>)> = table
            .iter()
            .filter(|(_, out)| !matches!(out, EvalOutcome::Failed(_)))
            .map(|(&key, out)| (key, encode_outcome(out)))
            .collect();
        drop(table);
        entries.sort_by_key(|(key, _)| *key);
        let mut bytes = Vec::with_capacity(16 + entries.len() * 64);
        bytes.extend_from_slice(&CACHE_MAGIC);
        bytes.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (key, payload) in &entries {
            bytes.extend_from_slice(&key.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
            bytes.extend_from_slice(&entry_checksum(*key, payload).to_le_bytes());
        }
        // The temp name must be unique per save: concurrent savers (e.g.
        // two daemons pointed at the same cache file, or a sweep racing a
        // server shutdown) sharing one `.tmp` path would truncate each
        // other mid-write and one rename would publish a torn file. With
        // unique names each rename atomically publishes a complete image;
        // last writer wins, which is the best a keyed merge-free format
        // can offer.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, &bytes).map_err(CacheFileError::Io)?;
        std::fs::rename(&tmp, path).map_err(|e| {
            // Never leave an orphaned temp file behind a failed publish.
            let _ = std::fs::remove_file(&tmp);
            CacheFileError::Io(e)
        })
    }

    /// Deserializes a cache previously written by [`EvalCache::save`].
    ///
    /// # Errors
    ///
    /// A typed [`CacheFileError`] on any irregularity — missing file, bad
    /// magic, unsupported version, truncation, or a per-entry checksum or
    /// encoding mismatch. The whole file is rejected (cold cache): a
    /// partially trusted cache is worse than no cache.
    pub fn load(path: &Path) -> Result<EvalCache, CacheFileError> {
        let bytes = std::fs::read(path).map_err(CacheFileError::Io)?;
        let mut r = Reader::new(&bytes);
        if r.take(8)? != CACHE_MAGIC {
            return Err(CacheFileError::BadMagic);
        }
        let version = r.u32()?;
        if version != CACHE_VERSION {
            return Err(CacheFileError::UnsupportedVersion(version));
        }
        let count = r.u64()?;
        let cache = EvalCache::new();
        {
            let mut table = cache.table();
            for entry in 0..count {
                let key = r.u64()?;
                let len = r.u32()? as usize;
                let payload = r.take(len)?;
                let checksum = r.u64()?;
                if checksum != entry_checksum(key, payload) {
                    return Err(CacheFileError::Corrupt { entry });
                }
                let outcome = decode_outcome(payload).ok_or(CacheFileError::Corrupt { entry })?;
                table.insert(key, outcome);
            }
            if !r.at_end() {
                return Err(CacheFileError::TrailingBytes);
            }
        }
        Ok(cache)
    }

    /// Loads `path` if it holds a valid cache, otherwise returns an empty
    /// (cold) cache. Never panics and never errors: a missing, truncated,
    /// corrupt, or incompatible file is simply not a cache.
    #[must_use]
    pub fn load_or_cold(path: &Path) -> EvalCache {
        EvalCache::load(path).unwrap_or_default()
    }

    /// Opens a crash-safe journaled cache at `path` with default tuning:
    /// [`EvalCache::open_journaled_with`] with [`JournalConfig::default`].
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the journal file cannot be opened or
    /// repaired (a corrupt *snapshot* still degrades to cold, as with
    /// [`EvalCache::load_or_cold`]).
    pub fn open_journaled(path: &Path) -> std::io::Result<EvalCache> {
        EvalCache::open_journaled_with(path, JournalConfig::default())
    }

    /// Opens a crash-safe journaled cache: loads the snapshot at `path`
    /// (cold on any irregularity), replays the intact prefix of the
    /// sibling `<path>.jnl` journal on top of it (journal entries win —
    /// they are newer), truncates any torn journal tail, and arms the
    /// cache so every subsequent [`EvalCache::insert`] is appended to the
    /// journal (fsynced every [`JournalConfig::sync_every`] records) and
    /// compacted into a fresh snapshot once the journal exceeds
    /// [`JournalConfig::compact_bytes`].
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the journal file cannot be opened,
    /// repaired, or created.
    pub fn open_journaled_with(path: &Path, cfg: JournalConfig) -> std::io::Result<EvalCache> {
        let cache = EvalCache::load_or_cold(path);
        let recovered_snapshot = cache.len() as u64;
        let (mut journal, replayed) = Journal::open(path, cfg)?;
        journal.stats.recovered_snapshot = recovered_snapshot;
        {
            let mut table = cache.table();
            for (key, outcome) in replayed {
                table.insert(key, outcome);
            }
        }
        *cache.journal_slot() = Some(journal);
        Ok(cache)
    }

    /// Whether this cache was opened with a write-ahead journal.
    #[must_use]
    pub fn is_journaled(&self) -> bool {
        self.journal_slot().is_some()
    }

    /// A snapshot of the journal's recovery/append/compaction counters,
    /// or `None` on an unjournaled cache.
    #[must_use]
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal_slot().as_ref().map(|j| j.stats)
    }

    /// Forces any unsynced journal batch to disk. No-op (and `Ok`) on an
    /// unjournaled cache.
    ///
    /// # Errors
    ///
    /// The underlying `fsync` error, if any.
    pub fn flush_journal(&self) -> std::io::Result<()> {
        match self.journal_slot().as_mut() {
            Some(j) => j.sync(),
            None => Ok(()),
        }
    }

    /// Rewrites the snapshot from the full in-memory table (atomic
    /// temp-file + rename) and resets the journal to empty. Call at
    /// cooperative shutdown so the next open replays nothing. No-op on an
    /// unjournaled cache — use [`EvalCache::save`] there.
    ///
    /// # Errors
    ///
    /// A [`CacheFileError`] if the snapshot cannot be written or the
    /// journal cannot be reset.
    pub fn checkpoint(&self) -> Result<(), CacheFileError> {
        let mut slot = self.journal_slot();
        let Some(j) = slot.as_mut() else {
            return Ok(());
        };
        let snapshot = j.snapshot_path.clone();
        self.save(&snapshot)?;
        j.reset().map_err(CacheFileError::Io)?;
        j.stats.compactions += 1;
        Ok(())
    }

    /// Folds another cache's entries into this one — the primitive behind
    /// `dse --merge-cache`, which unifies the per-shard caches of a
    /// sharded search back into one file.
    ///
    /// The conflict policy is strict: evaluation is a pure function of the
    /// configuration key, so two caches holding the *same* key must hold
    /// byte-identical outcomes (compared on the canonical entry encoding).
    /// Any divergence aborts the merge *before* anything is inserted —
    /// self is untouched on error — because a divergent entry means a
    /// salt/version mismatch and neither value can be trusted.
    /// [`EvalOutcome::Failed`] entries in `other` are never merged (same
    /// rule as persistence: a failure should be retried, not replayed);
    /// `Failed` entries in `self` are overwritten by a feasible result
    /// from `other`, which is exactly the retry succeeding elsewhere.
    ///
    /// Entries land through [`EvalCache::insert`], so merging into a
    /// journaled cache is itself crash-safe.
    ///
    /// # Errors
    ///
    /// [`CacheMergeError::Divergent`] naming the first conflicting key (in
    /// ascending key order, deterministically).
    pub fn merge_from(&self, other: &EvalCache) -> Result<MergeStats, CacheMergeError> {
        let mut incoming: Vec<(u64, EvalOutcome)> = {
            let table = other.table();
            table.iter().map(|(&k, v)| (k, v.clone())).collect()
        };
        incoming.sort_by_key(|(k, _)| *k);
        let mut stats = MergeStats::default();
        // Validate every key first so a divergence leaves self untouched.
        {
            let table = self.table();
            for (key, theirs) in &incoming {
                if matches!(theirs, EvalOutcome::Failed(_)) {
                    continue;
                }
                match table.get(key) {
                    Some(EvalOutcome::Failed(_)) | None => {}
                    Some(ours) => {
                        if encode_outcome(ours) != encode_outcome(theirs) {
                            return Err(CacheMergeError::Divergent { key: *key });
                        }
                    }
                }
            }
        }
        for (key, theirs) in incoming {
            if matches!(theirs, EvalOutcome::Failed(_)) {
                stats.failed_skipped += 1;
                continue;
            }
            let existing = self.table().get(&key).cloned();
            match existing {
                Some(EvalOutcome::Failed(_)) | None => {
                    self.insert(key, theirs);
                    stats.inserted += 1;
                }
                Some(_) => stats.identical += 1,
            }
        }
        Ok(stats)
    }

    /// Loads the snapshot at `path` *plus* the intact prefix of its
    /// sibling journal, without arming the journal for appends — the
    /// read-only open used for `--merge-cache` sources, so a shard killed
    /// before its final checkpoint still contributes every durable entry.
    /// Any irregularity in either file degrades to fewer entries, never an
    /// error.
    #[must_use]
    pub fn load_including_journal(path: &Path) -> EvalCache {
        let cache = EvalCache::load_or_cold(path);
        if let Ok(bytes) = std::fs::read(crate::journal::journal_path(path)) {
            let (entries, _) = crate::journal::replay(&bytes);
            let mut table = cache.table();
            for (key, outcome) in entries {
                table.insert(key, outcome);
            }
        }
        cache
    }
}

/// What [`EvalCache::merge_from`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Entries newly inserted from the other cache.
    pub inserted: u64,
    /// Entries present in both caches and byte-identical (kept as-is).
    pub identical: u64,
    /// [`EvalOutcome::Failed`] entries in the source, skipped by policy.
    pub failed_skipped: u64,
}

/// Why [`EvalCache::merge_from`] refused to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMergeError {
    /// Both caches hold this key with byte-different outcomes. Evaluation
    /// is pure per key, so this means the caches were produced by
    /// incompatible evaluators (differing salt, version, or substrate) and
    /// neither entry can be trusted over the other.
    Divergent {
        /// The conflicting configuration key.
        key: u64,
    },
}

impl std::fmt::Display for CacheMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheMergeError::Divergent { key } => write!(
                f,
                "cache merge conflict: key {key:#018x} has divergent outcomes \
                 (caches were produced by incompatible evaluators)"
            ),
        }
    }
}

impl std::error::Error for CacheMergeError {}

/// File magic for the persistent evaluation cache.
pub const CACHE_MAGIC: [u8; 8] = *b"PPHWEVC\0";

/// Current format version. Bump on any layout or encoding change; readers
/// reject every other version (cold cache).
pub const CACHE_VERSION: u32 = 1;

/// Why a persistent cache file was rejected.
///
/// The on-disk layout, all integers little-endian and floats stored by
/// bit pattern:
///
/// ```text
/// magic    [u8; 8]  = b"PPHWEVC\0"
/// version  u32      = 1
/// count    u64
/// entry*count:
///   key       u64      canonical configuration hash
///   len       u32      payload length in bytes
///   payload   [u8;len] tag 0 (Feasible): cycles u64, dram_words u64,
///                        on_chip_bytes u64, area logic/ff/mem f64-bits
///                      tag 1 (Infeasible): reason length u32 + UTF-8
///   checksum  u64      fnv1a64(key-bytes ++ payload)
/// ```
#[derive(Debug)]
pub enum CacheFileError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`CACHE_MAGIC`].
    BadMagic,
    /// The file's format version is not [`CACHE_VERSION`].
    UnsupportedVersion(u32),
    /// The file ended before the declared content did.
    Truncated,
    /// Bytes remain after the declared entries.
    TrailingBytes,
    /// An entry failed its checksum or could not be decoded.
    Corrupt {
        /// Zero-based index of the offending entry.
        entry: u64,
    },
}

impl std::fmt::Display for CacheFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFileError::Io(e) => write!(f, "cache file I/O: {e}"),
            CacheFileError::BadMagic => write!(f, "not a pphw evaluation cache (bad magic)"),
            CacheFileError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported cache version {v} (expected {CACHE_VERSION})"
                )
            }
            CacheFileError::Truncated => write!(f, "cache file truncated"),
            CacheFileError::TrailingBytes => write!(f, "cache file has trailing bytes"),
            CacheFileError::Corrupt { entry } => {
                write!(
                    f,
                    "cache entry {entry} corrupt (checksum or encoding mismatch)"
                )
            }
        }
    }
}

impl std::error::Error for CacheFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

pub(crate) fn entry_checksum(key: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

pub(crate) fn encode_outcome(out: &EvalOutcome) -> Vec<u8> {
    match out {
        EvalOutcome::Feasible(m) => {
            let mut b = Vec::with_capacity(1 + 6 * 8);
            b.push(0u8);
            b.extend_from_slice(&m.cycles.to_le_bytes());
            b.extend_from_slice(&m.dram_words.to_le_bytes());
            b.extend_from_slice(&m.on_chip_bytes.to_le_bytes());
            b.extend_from_slice(&m.area.logic.to_bits().to_le_bytes());
            b.extend_from_slice(&m.area.ff.to_bits().to_le_bytes());
            b.extend_from_slice(&m.area.mem.to_bits().to_le_bytes());
            b
        }
        EvalOutcome::Infeasible(reason) => {
            let mut b = Vec::with_capacity(1 + 4 + reason.len());
            b.push(1u8);
            b.extend_from_slice(&(reason.len() as u32).to_le_bytes());
            b.extend_from_slice(reason.as_bytes());
            b
        }
        // Never reached: `save` filters Failed out. Encoded defensively as
        // an empty Infeasible so a future caller cannot corrupt the file.
        EvalOutcome::Failed(_) => vec![1, 0, 0, 0, 0],
    }
}

pub(crate) fn decode_outcome(payload: &[u8]) -> Option<EvalOutcome> {
    let mut r = Reader::new(payload);
    let out = match r.take(1).ok()?[0] {
        0 => {
            let cycles = r.u64().ok()?;
            let dram_words = r.u64().ok()?;
            let on_chip_bytes = r.u64().ok()?;
            let logic = f64::from_bits(r.u64().ok()?);
            let ff = f64::from_bits(r.u64().ok()?);
            let mem = f64::from_bits(r.u64().ok()?);
            EvalOutcome::Feasible(Measurement {
                cycles,
                dram_words,
                on_chip_bytes,
                area: Area { logic, ff, mem },
            })
        }
        1 => {
            let len = r.u32().ok()? as usize;
            let reason = String::from_utf8(r.take(len).ok()?.to_vec()).ok()?;
            EvalOutcome::Infeasible(reason)
        }
        _ => return None,
    };
    if !r.at_end() {
        return None;
    }
    Some(out)
}

/// A bounds-checked little-endian byte reader: every read that would run
/// past the end is [`CacheFileError::Truncated`], never a panic.
struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn new(bytes: &'b [u8]) -> Reader<'b> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], CacheFileError> {
        let end = self.pos.checked_add(n).ok_or(CacheFileError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CacheFileError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CacheFileError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CacheFileError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Measurement;
    use pphw_hw::Area;
    use pphw_sim::SimConfig;

    fn cand(tiles: &[(&str, i64)], par: u32) -> Candidate {
        Candidate {
            tiles: tiles.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            inner_par: par,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
            cap_permille: 1000,
        }
    }

    fn sizes(pairs: &[(&str, i64)]) -> Vec<(String, i64)> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    fn outcome(cycles: u64) -> EvalOutcome {
        EvalOutcome::Feasible(Measurement {
            cycles,
            dram_words: 1,
            on_chip_bytes: 1,
            area: Area::default(),
        })
    }

    #[test]
    fn key_is_stable_and_order_insensitive() {
        let s1 = sizes(&[("m", 64), ("n", 32)]);
        let s2 = sizes(&[("n", 32), ("m", 64)]);
        let c1 = cand(&[("m", 8), ("n", 4)], 16);
        let c2 = cand(&[("n", 4), ("m", 8)], 16);
        assert_eq!(config_key("p", &s1, "", &c1), config_key("p", &s2, "", &c2));
    }

    #[test]
    fn key_distinguishes_every_component() {
        let s = sizes(&[("m", 64)]);
        let base = config_key("p", &s, "", &cand(&[("m", 8)], 16));
        assert_ne!(base, config_key("q", &s, "", &cand(&[("m", 8)], 16)));
        assert_ne!(base, config_key("p", &s, "", &cand(&[("m", 4)], 16)));
        assert_ne!(base, config_key("p", &s, "", &cand(&[("m", 8)], 32)));
        assert_ne!(base, config_key("p", &s, "meta", &cand(&[("m", 8)], 16)));
        let mut other_sim = cand(&[("m", 8)], 16);
        other_sim.sim = SimConfig::default().with_clock_mhz(200.0);
        assert_ne!(base, config_key("p", &s, "", &other_sim));
        assert_ne!(
            base,
            config_key("p", &sizes(&[("m", 128)]), "", &cand(&[("m", 8)], 16))
        );
        // A swept capacity scale is a different design; both key levels
        // must see it.
        let mut scaled = cand(&[("m", 8)], 16);
        scaled.cap_permille = 500;
        assert_ne!(base, config_key("p", &s, "", &scaled));
        assert_ne!(
            design_key("p", &s, "", &cand(&[("m", 8)], 16)),
            design_key("p", &s, "", &scaled)
        );
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = EvalCache::new();
        let key = 42u64;
        assert!(cache.get(key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key, outcome(100));
        assert_eq!(cache.get(key), Some(outcome(100)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn design_key_ignores_sim_config_but_config_key_does_not() {
        let s = sizes(&[("m", 64)]);
        let c1 = cand(&[("m", 8)], 16);
        let mut c2 = cand(&[("m", 8)], 16);
        c2.sim = SimConfig::default().with_clock_mhz(200.0);
        assert_eq!(design_key("p", &s, "", &c1), design_key("p", &s, "", &c2));
        assert_ne!(config_key("p", &s, "", &c1), config_key("p", &s, "", &c2));
        // Tile, par, program, salt, and sizes still all matter.
        let base = design_key("p", &s, "", &c1);
        assert_ne!(base, design_key("q", &s, "", &c1));
        assert_ne!(base, design_key("p", &s, "salted", &c1));
        assert_ne!(base, design_key("p", &s, "", &cand(&[("m", 4)], 16)));
        assert_ne!(base, design_key("p", &s, "", &cand(&[("m", 8)], 32)));
        assert_ne!(base, design_key("p", &sizes(&[("m", 128)]), "", &c1));
    }

    #[test]
    fn design_cache_builds_each_key_exactly_once() {
        let cache: DesignCache<u64> = DesignCache::new();
        let a = cache.get_or_compute(1, || 10);
        let b = cache.get_or_compute(1, || 99);
        let c = cache.get_or_compute(2, || 20);
        assert_eq!((*a, *b, *c), (10, 10, 20));
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn design_cache_is_exactly_once_under_concurrency() {
        use std::sync::atomic::AtomicUsize;

        let cache: Arc<DesignCache<usize>> = Arc::new(DesignCache::new());
        let built = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let built = Arc::clone(&built);
                std::thread::spawn(move || {
                    let v = cache.get_or_compute(7, || {
                        built.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        1234
                    });
                    assert_eq!(*v, 1234);
                    i
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 7);
    }

    fn sample_cache() -> EvalCache {
        let cache = EvalCache::new();
        cache.insert(
            1,
            EvalOutcome::Feasible(Measurement {
                cycles: 123_456,
                dram_words: 789,
                on_chip_bytes: 4096,
                area: Area {
                    logic: 1.5,
                    ff: 0.25,
                    mem: 42.0,
                },
            }),
        );
        cache.insert(2, EvalOutcome::Infeasible("budget exceeded".into()));
        cache.insert(3, EvalOutcome::Failed("transient".into()));
        cache
    }

    #[test]
    fn persistent_cache_round_trips_and_drops_failed() {
        let dir = std::env::temp_dir().join("pphw-cache-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evals.pphwc");
        sample_cache().save(&path).unwrap();
        let loaded = EvalCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.get(1),
            Some(EvalOutcome::Feasible(Measurement {
                cycles: 123_456,
                dram_words: 789,
                on_chip_bytes: 4096,
                area: Area {
                    logic: 1.5,
                    ff: 0.25,
                    mem: 42.0,
                },
            }))
        );
        assert_eq!(
            loaded.get(2),
            Some(EvalOutcome::Infeasible("budget exceeded".into()))
        );
        assert!(loaded.get(3).is_none(), "Failed outcomes must not persist");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_savers_never_publish_a_torn_file() {
        let dir = std::env::temp_dir().join("pphw-cache-concurrent-save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evals.pphwc");
        // Each saver writes a differently-sized cache to the same path;
        // every interleaving must leave a loadable image of one of them.
        std::thread::scope(|scope| {
            for round in 0u64..4 {
                let path = &path;
                scope.spawn(move || {
                    let cache = EvalCache::new();
                    for key in 0..=round * 8 {
                        cache.insert(key, EvalOutcome::Infeasible(format!("r{round}")));
                    }
                    for _ in 0..16 {
                        cache.save(path).unwrap();
                    }
                });
            }
        });
        let loaded = EvalCache::load(&path).expect("last completed save is intact");
        assert!(
            [1, 9, 17, 25].contains(&loaded.len()),
            "len {}",
            loaded.len()
        );
        // No orphaned temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphaned temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_unions_disjoint_caches_and_counts_identicals() {
        let a = EvalCache::new();
        a.insert(1, outcome(100));
        a.insert(2, EvalOutcome::Infeasible("budget".into()));
        let b = EvalCache::new();
        b.insert(2, EvalOutcome::Infeasible("budget".into()));
        b.insert(3, outcome(300));
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                inserted: 1,
                identical: 1,
                failed_skipped: 0
            }
        );
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(3), Some(outcome(300)));
        // Merging again is idempotent.
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.identical, 2);
    }

    #[test]
    fn merge_rejects_divergent_keys_without_mutating() {
        let a = EvalCache::new();
        a.insert(1, outcome(100));
        a.insert(7, outcome(700));
        let b = EvalCache::new();
        b.insert(7, outcome(701));
        b.insert(9, outcome(900));
        let err = a.merge_from(&b).unwrap_err();
        assert_eq!(err, CacheMergeError::Divergent { key: 7 });
        assert!(err.to_string().contains("divergent"), "{err}");
        // Nothing from b landed, not even the non-conflicting key 9.
        assert_eq!(a.len(), 2);
        assert!(a.table().get(&9).is_none());
        assert_eq!(a.get(7), Some(outcome(700)));
    }

    #[test]
    fn merge_never_imports_failed_and_lets_success_replace_failed() {
        let a = EvalCache::new();
        a.insert(5, EvalOutcome::Failed("transient here".into()));
        let b = EvalCache::new();
        b.insert(5, outcome(555));
        b.insert(6, EvalOutcome::Failed("transient there".into()));
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                inserted: 1,
                identical: 0,
                failed_skipped: 1
            }
        );
        assert_eq!(a.get(5), Some(outcome(555)), "retry success wins");
        assert!(a.get(6).is_none(), "Failed entries never merge");
    }

    #[test]
    fn merge_from_a_journaled_source_sees_unsnapshotted_entries() {
        let dir = std::env::temp_dir().join("pphw-cache-merge-journaled");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.pphwc");
        {
            // A journaled shard that dies before any checkpoint: entries
            // exist only in the write-ahead journal, not the snapshot.
            let shard = EvalCache::open_journaled_with(
                &path,
                JournalConfig {
                    sync_every: 1,
                    compact_bytes: u64::MAX,
                },
            )
            .unwrap();
            shard.insert(11, outcome(1100));
            shard.insert(12, EvalOutcome::Infeasible("no fit".into()));
            shard.insert(13, EvalOutcome::Failed("panic".into()));
            // No checkpoint, no save: simulate the crash by dropping.
        }
        assert!(
            EvalCache::load_or_cold(&path).is_empty(),
            "no snapshot was ever published"
        );
        let source = EvalCache::load_including_journal(&path);
        assert_eq!(source.len(), 2, "journal replayed, Failed never durable");

        let target = EvalCache::new();
        target.insert(11, outcome(1100));
        let stats = target.merge_from(&source).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                inserted: 1,
                identical: 1,
                failed_skipped: 0
            }
        );
        assert_eq!(
            target.get(12),
            Some(EvalOutcome::Infeasible("no fit".into()))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_files_degrade_cold_without_panic() {
        let dir = std::env::temp_dir().join("pphw-cache-corruption");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.pphwc");
        sample_cache().save(&good).unwrap();
        let bytes = std::fs::read(&good).unwrap();

        // Missing file.
        let missing = dir.join("no-such-file.pphwc");
        assert!(matches!(
            EvalCache::load(&missing),
            Err(CacheFileError::Io(_))
        ));
        assert!(EvalCache::load_or_cold(&missing).is_empty());

        // Empty file.
        let empty = dir.join("empty.pphwc");
        std::fs::write(&empty, []).unwrap();
        assert!(matches!(
            EvalCache::load(&empty),
            Err(CacheFileError::Truncated)
        ));
        assert!(EvalCache::load_or_cold(&empty).is_empty());

        // Bad magic.
        let bad_magic = dir.join("bad-magic.pphwc");
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        std::fs::write(&bad_magic, &b).unwrap();
        assert!(matches!(
            EvalCache::load(&bad_magic),
            Err(CacheFileError::BadMagic)
        ));
        assert!(EvalCache::load_or_cold(&bad_magic).is_empty());

        // Version mismatch.
        let bad_version = dir.join("bad-version.pphwc");
        let mut b = bytes.clone();
        b[8..12].copy_from_slice(&(CACHE_VERSION + 1).to_le_bytes());
        std::fs::write(&bad_version, &b).unwrap();
        assert!(matches!(
            EvalCache::load(&bad_version),
            Err(CacheFileError::UnsupportedVersion(v)) if v == CACHE_VERSION + 1
        ));
        assert!(EvalCache::load_or_cold(&bad_version).is_empty());

        // Truncation at every prefix length shorter than the file.
        let truncated = dir.join("truncated.pphwc");
        for cut in [1, 8, 12, 20, 28, bytes.len() - 1] {
            std::fs::write(&truncated, &bytes[..cut]).unwrap();
            let err = EvalCache::load(&truncated).unwrap_err();
            assert!(
                matches!(
                    err,
                    CacheFileError::Truncated
                        | CacheFileError::BadMagic
                        | CacheFileError::Corrupt { .. }
                ),
                "cut={cut} gave unexpected error {err}"
            );
            assert!(EvalCache::load_or_cold(&truncated).is_empty());
        }

        // Bit flip in an entry payload trips that entry's checksum.
        let flipped = dir.join("flipped.pphwc");
        let mut b = bytes.clone();
        let payload_byte = 20 + 8 + 4 + 2; // into the first entry's payload
        b[payload_byte] ^= 0x01;
        std::fs::write(&flipped, &b).unwrap();
        assert!(matches!(
            EvalCache::load(&flipped),
            Err(CacheFileError::Corrupt { entry: 0 })
        ));
        assert!(EvalCache::load_or_cold(&flipped).is_empty());

        // Trailing garbage after the declared entries.
        let trailing = dir.join("trailing.pphwc");
        let mut b = bytes.clone();
        b.push(0xAB);
        std::fs::write(&trailing, &b).unwrap();
        assert!(matches!(
            EvalCache::load(&trailing),
            Err(CacheFileError::TrailingBytes)
        ));
        assert!(EvalCache::load_or_cold(&trailing).is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }
}
