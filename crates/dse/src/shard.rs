//! Deterministic sharding of the candidate space across invocations.
//!
//! `dse --shard i/N` lets N machines (or N sequential runs) split one
//! search: each invocation owns the candidates whose stable fingerprint
//! maps to its index, does disjoint work, and writes its own
//! [`crate::cache::EvalCache`] file; `dse --merge-cache` folds the shard
//! caches together, after which a final unsharded run is all-hits and
//! bit-identical to a run that never sharded.
//!
//! The partition is a pure function of the *identity* of each candidate —
//! [`fingerprint`] hashes the program name and the candidate's canonical
//! label — never of enumeration position. Shards therefore agree on
//! ownership regardless of pruning, `max_evals` truncation order, or how
//! the space was built, and re-running a shard after the space grows only
//! moves candidates whose own identity changed.

use crate::cache::fnv1a64;
use crate::space::Candidate;

/// One shard of an N-way partitioned search: `index` in `[0, count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This invocation's shard index.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl Shard {
    /// Parses the CLI form `i/N` (e.g. `0/3`). Returns `None` for
    /// malformed input, `N == 0`, or `i >= N`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Shard> {
        let (i, n) = s.split_once('/')?;
        let index: u64 = i.trim().parse().ok()?;
        let count: u64 = n.trim().parse().ok()?;
        if count == 0 || index >= count {
            return None;
        }
        Some(Shard { index, count })
    }

    /// Whether this shard owns a fingerprint.
    #[must_use]
    pub fn owns(&self, fp: u64) -> bool {
        fp % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The stable identity a candidate is sharded (and sampled) by: FNV-1a of
/// `"<program>|<label>"`. Labels are canonical (tile sizes in dimension
/// order, parallelism, substrate label), so the fingerprint survives
/// re-enumeration and differs across programs sharing a space.
#[must_use]
pub fn fingerprint(prog_name: &str, c: &Candidate) -> u64 {
    fnv1a64(format!("{prog_name}|{}", c.label()).as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_sim::SimConfig;

    fn cand(par: u32, tile: i64) -> Candidate {
        Candidate {
            tiles: vec![("m".into(), tile)],
            inner_par: par,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
            cap_permille: 1000,
        }
    }

    #[test]
    fn parse_accepts_canonical_forms_and_rejects_nonsense() {
        assert_eq!(Shard::parse("0/3"), Some(Shard { index: 0, count: 3 }));
        assert_eq!(Shard::parse("2/3"), Some(Shard { index: 2, count: 3 }));
        assert_eq!(Shard::parse("3/3"), None, "index out of range");
        assert_eq!(Shard::parse("0/0"), None, "zero shards");
        assert_eq!(Shard::parse("1"), None);
        assert_eq!(Shard::parse("a/b"), None);
        assert_eq!(Shard::parse("-1/3"), None);
        assert_eq!(Shard::parse("1/3").unwrap().to_string(), "1/3");
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let cands: Vec<Candidate> = (0..7)
            .flat_map(|t| (1..=4).map(move |p| cand(p, 4 << t)))
            .collect();
        for count in [1u64, 3, 7] {
            let shards: Vec<Shard> = (0..count).map(|index| Shard { index, count }).collect();
            for c in &cands {
                let fp = fingerprint("gemm", c);
                let owners = shards.iter().filter(|s| s.owns(fp)).count();
                assert_eq!(owners, 1, "exactly one owner at count={count}");
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_identities() {
        let a = cand(8, 16);
        assert_eq!(fingerprint("gemm", &a), fingerprint("gemm", &a.clone()));
        assert_ne!(fingerprint("gemm", &a), fingerprint("spmv", &a));
        assert_ne!(fingerprint("gemm", &a), fingerprint("gemm", &cand(16, 16)));
        assert_ne!(fingerprint("gemm", &a), fingerprint("gemm", &cand(8, 32)));
    }
}
