//! # pphw-dse — parallel design-space exploration
//!
//! The paper leaves tile sizes and parallelism factors to the user and
//! names automated selection "through modeling and design space
//! exploration" as future work (§4, Discussion). This crate is that
//! subsystem: a deterministic, parallel search over the joint space of
//! tile sizes per dimension × innermost parallelism factors × simulation
//! substrate variants.
//!
//! The engine is structured so that the expensive path — compiling a
//! candidate to hardware and simulating it — runs as rarely as possible:
//!
//! 1. **Analytic prefilter** ([`prune`]): every candidate is first scored
//!    with the transform-level cost model
//!    ([`pphw_transform::cost::predict_traffic`]) and a conservative
//!    area lower bound from the `pphw-hw` area model. Candidates whose
//!    predicted on-chip footprint exceeds the memory budget, or whose
//!    compute/buffer area lower bound exceeds the [`pphw_hw::AreaBudget`],
//!    are rejected *before* compilation. Because the area estimate is a
//!    lower bound, pruning never discards a genuinely feasible optimum.
//! 2. **Memoized evaluation** ([`cache`]): surviving candidates are keyed
//!    by a canonical configuration hash (program, sizes, tiles, lanes,
//!    substrate, evaluator salt); repeated and overlapping searches reuse
//!    prior measurements instead of recompiling the same design.
//! 3. **Parallel evaluation** ([`pool`]): cache misses are evaluated on a
//!    std-only work-stealing thread pool. Results are merged by candidate
//!    index and ranked with a total order, so the chosen best point and
//!    the Pareto frontier are bit-identical regardless of thread count.
//! 4. **Pareto reporting** ([`pareto`], [`report`]): the search returns
//!    the cycles-vs-area frontier plus the single best point, exportable
//!    as JSON and CSV.
//!
//! The crate deliberately sits *below* the `pphw` driver in the
//! dependency graph: the compile+simulate path is injected through the
//! [`Evaluate`] trait (the driver provides `pphw::dse::CompileEvaluator`),
//! which also lets unit tests exercise the engine with synthetic
//! evaluators at zero cost.

pub mod cache;
pub mod engine;
pub mod journal;
pub mod model;
pub mod pareto;
pub mod pool;
pub mod prune;
pub mod report;
pub mod shard;
pub mod space;

pub use cache::{CacheMergeError, EvalCache, MergeStats};
pub use engine::{explore, CapacityMode, DseConfig, GuidedConfig, Objective, Strategy};
pub use journal::{journal_path, JournalConfig, JournalStats};
pub use model::CostModel;
pub use pareto::pareto_frontier;
pub use report::{DseReport, DseStats, EvaluatedPoint, FailedPoint};
pub use shard::Shard;
pub use space::{pow2_divisors, Candidate, SearchSpace};

use pphw_hw::Area;

/// Errors from design-space exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// A tuned dimension has no concrete size, or no tile candidates.
    UnknownDim(String),
    /// The search space enumerated to zero candidates.
    EmptySpace,
    /// Every candidate was pruned or evaluated infeasible.
    NoFeasibleConfig,
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::UnknownDim(d) => write!(f, "tuned dimension `{d}` has no concrete size"),
            DseError::EmptySpace => write!(f, "search space is empty"),
            DseError::NoFeasibleConfig => write!(f, "no feasible configuration in search space"),
        }
    }
}

impl std::error::Error for DseError {}

/// Measurement of one feasible candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Simulated cycles.
    pub cycles: u64,
    /// Useful DRAM words requested during simulation.
    pub dram_words: u64,
    /// On-chip memory footprint of the generated design, in bytes.
    pub on_chip_bytes: u64,
    /// Estimated area of the generated design.
    pub area: Area,
}

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The candidate compiled, fit, and simulated.
    Feasible(Measurement),
    /// The candidate failed to compile or violated a constraint; the
    /// string says why (it shows up in verbose reports).
    Infeasible(String),
    /// The evaluator itself failed on this candidate — it panicked (even
    /// after the pool's bounded retries) or hit an internal error such as
    /// a simulation budget overrun. Unlike [`EvalOutcome::Infeasible`],
    /// this says nothing about the design point; the failure is recorded
    /// in the report and never cached, so a later sweep retries it.
    Failed(String),
}

/// The expensive measurement path, injected by the caller: typically
/// compile-to-hardware plus cycle simulation (`pphw::dse::CompileEvaluator`).
///
/// Implementations must be pure functions of the candidate — the engine
/// caches outcomes by configuration hash and evaluates candidates from
/// multiple threads.
pub trait Evaluate: Sync {
    /// Measures one candidate.
    fn evaluate(&self, candidate: &Candidate) -> EvalOutcome;

    /// Extra state that distinguishes this evaluator's measurements from
    /// another's in a shared cache (e.g. optimization level, interchange
    /// flag, on-chip budget). Two evaluators with equal salts must return
    /// equal outcomes for equal candidates.
    fn cache_salt(&self) -> String {
        String::new()
    }

    /// The exact area of the design this candidate maps to, when it can
    /// be obtained without running a simulation — e.g. by a compile-only
    /// pass through a shared design cache. Area is a function of the
    /// design alone, so every substrate variant of one tile/parallelism
    /// point shares the answer and one compile serves them all.
    ///
    /// The guided engine uses this under an area-cap objective to rank
    /// candidates that genuinely exceed the cap last instead of wasting
    /// its measurement slice on fast-but-oversized points. `None` (the
    /// default) means "unknown": the engine falls back to the analytic
    /// area lower bound, which is safe but loose.
    fn area_hint(&self, _candidate: &Candidate) -> Option<Area> {
        None
    }
}
