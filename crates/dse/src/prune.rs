//! Analytic prefilter: reject candidates before the compile+simulate path.
//!
//! Five cheap checks run per candidate, in order:
//!
//! 0. **Dataflow balance** — a candidate whose channel-capacity scale
//!    would statically deadlock the generated metapipeline (every
//!    exact-token channel drops to zero slots below half depth, the
//!    condition `pphw-verify`'s flow analyzer flags as `PPHW041`) is
//!    rejected by pure arithmetic, before even the tiling transform runs.
//! 1. **Tiling feasibility** — the tiling transform itself (strip mining +
//!    interchange + tile copies) is run on the candidate's tile sizes; a
//!    `TileError` rejects the point. This is the cheap front of the
//!    pipeline (pure IR rewriting), run once per unique tile
//!    configuration, not per (tiles × par × substrate) point.
//! 2. **Static legality** — the `pphw-verify` analyzers run over the tiled
//!    program, also once per unique tile configuration: an IR-verifier
//!    error rejects every candidate sharing the tiles, and a combine the
//!    race detector cannot prove associative-commutative rejects exactly
//!    the candidates that would parallelize it (`inner_par > 1`). A
//!    candidate that cannot compute the right answer is never worth a
//!    compile, however fast its design would be.
//! 3. **On-chip budget** — the analytic cost model's predicted on-chip
//!    footprint ([`pphw_transform::cost::predict_traffic`]) is compared
//!    against the memory budget. The model charges the *minimum* buffering
//!    a tiled schedule needs, while generated designs add double buffering
//!    on top, so a candidate the model already rejects cannot fit.
//! 4. **Area bound** — a conservative lower bound on design area (one
//!    vector unit at the candidate's lane count plus a single-ported
//!    buffer for the predicted on-chip words) is checked against the
//!    [`AreaBudget`]. Real designs contain at least this much hardware,
//!    so the bound never rejects a feasible point.
//!
//! Every rejection is counted by reason; the engine reports the counts so
//! the "prefilter saves N compiles" claim is observable, and tests assert
//! it.

use std::collections::HashMap;

use pphw_hw::area::{buffer_area, unit_area};
use pphw_hw::design::{BufferKind, UnitKind};
use pphw_hw::{Area, AreaBudget};
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_transform::cost::{predict_traffic, TrafficPrediction};
use pphw_transform::{tile_program, TileConfig};
use pphw_verify::{ir_check, race, VerifyReport};

use crate::space::Candidate;

/// Why the prefilter rejected a candidate — or didn't.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PruneDecision {
    /// The candidate survives to evaluation.
    Keep,
    /// The tiling transform rejected the tile sizes.
    Tile(String),
    /// The static analyzer rejected the candidate: the tiled program has
    /// IR-verifier errors, or its parallelism would race a combine that
    /// is not provably associative-commutative.
    Illegal(String),
    /// The dataflow-balance analyzer rejected the candidate: its
    /// channel-capacity scale statically deadlocks the generated
    /// metapipeline (zero-slot channels, `PPHW041`).
    Flow(String),
    /// Predicted on-chip footprint exceeds the memory budget.
    Budget {
        /// Predicted bytes.
        predicted: u64,
        /// The budget it exceeded.
        budget: u64,
    },
    /// The analytic area lower bound exceeds the area budget.
    Area,
}

/// A conservative lower bound on the area of any design generated for
/// this candidate: one vector compute unit at the candidate's lane count
/// plus one single-ported buffer holding the predicted on-chip words.
#[must_use]
pub fn area_lower_bound(inner_par: u32, on_chip_bytes: u64) -> Area {
    let compute = unit_area(&UnitKind::Vector { lanes: inner_par }, 1, 0);
    let buffer = buffer_area(BufferKind::Buffer, on_chip_bytes, 1, 1);
    compute.add(buffer)
}

/// The per-candidate analytic scores the prefilter derives its decision
/// from (also exposed for reporting and the differential harness).
#[derive(Debug, Clone, Copy)]
pub struct Analytic {
    /// The cost model's traffic prediction for the tiled program.
    pub traffic: TrafficPrediction,
    /// Predicted on-chip footprint in bytes.
    pub on_chip_bytes: u64,
}

/// Runs the prefilter over every candidate, returning one decision per
/// candidate in input order. Tiling and cost analysis run once per unique
/// tile configuration.
#[must_use]
pub fn prefilter(
    prog: &Program,
    sizes: &[(String, i64)],
    candidates: &[Candidate],
    on_chip_budget_bytes: u64,
    area_budget: &AreaBudget,
) -> Vec<PruneDecision> {
    let size_pairs: Vec<(&str, i64)> = sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let env = Size::env(&size_pairs);
    // Per unique tile configuration: the traffic prediction (word size is
    // a substrate property, so bytes are derived per candidate below) and
    // the static-analysis verdicts. The IR check and the combine scan are
    // parallelism-independent, so they memoize with the tiling; only the
    // "does this candidate parallelize it?" question is per candidate.
    let mut by_tiles: HashMap<String, Result<TilePre, String>> = HashMap::new();
    candidates
        .iter()
        .map(|c| {
            // Cheapest check first: a capacity scale that statically
            // deadlocks the metapipeline needs no tiling or cost model.
            if pphw_verify::flow::deadlocked_capacity_scale(c.cap_permille) {
                return PruneDecision::Flow(format!(
                    "capacity scale {} deadlocks every exact-token channel \
                     (zero slots, PPHW041)",
                    c.cap_permille as f64 / 1000.0
                ));
            }
            let tiles_key = format!("{:?}", c.tiles);
            let pre = by_tiles
                .entry(tiles_key)
                .or_insert_with(|| {
                    let tiled = if c.tiles.is_empty() {
                        prog.clone()
                    } else {
                        let cfg = TileConfig::new(&c.tile_pairs(), &size_pairs)
                            .with_budget(on_chip_budget_bytes);
                        match tile_program(prog, &cfg) {
                            Ok(t) => t,
                            Err(e) => return Err(e.to_string()),
                        }
                    };
                    let traffic = predict_traffic(&tiled, &env).map_err(|e| e.to_string())?;
                    let mut report = VerifyReport::new();
                    ir_check::check_program(&tiled, &mut report);
                    Ok(TilePre {
                        traffic,
                        ir_errors: report.errors().map(ToString::to_string).collect(),
                        non_assoc: race::non_assoc_combines(&tiled),
                    })
                })
                .clone();
            match pre {
                Err(e) => PruneDecision::Tile(e),
                Ok(pre) => {
                    if let Some(err) = pre.ir_errors.first() {
                        return PruneDecision::Illegal(err.clone());
                    }
                    if c.inner_par > 1 {
                        if let Some(path) = pre.non_assoc.first() {
                            return PruneDecision::Illegal(format!(
                                "combine at `{path}` is not provably \
                                 associative-commutative; inner_par={} would race it",
                                c.inner_par
                            ));
                        }
                    }
                    let a = Analytic {
                        traffic: pre.traffic,
                        on_chip_bytes: pre.traffic.on_chip_bytes(c.sim.word_bytes),
                    };
                    if a.on_chip_bytes > on_chip_budget_bytes {
                        PruneDecision::Budget {
                            predicted: a.on_chip_bytes,
                            budget: on_chip_budget_bytes,
                        }
                    } else if !area_budget.fits(area_lower_bound(c.inner_par, a.on_chip_bytes)) {
                        PruneDecision::Area
                    } else {
                        PruneDecision::Keep
                    }
                }
            }
        })
        .collect()
}

/// Tile-configuration-level precomputation shared by every candidate with
/// the same tile sizes.
#[derive(Debug, Clone)]
struct TilePre {
    traffic: TrafficPrediction,
    /// Rendered IR-verifier errors on the tiled program (empty = clean).
    ir_errors: Vec<String>,
    /// Paths of combines the race detector cannot prove
    /// associative-commutative.
    non_assoc: Vec<String>,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;
    use pphw_sim::SimConfig;

    /// gemm: map(m,n){ fold(p){ acc + x(i,k)*y(k,j) } }. After tiling plus
    /// interchange the scalar accumulator becomes a mandatory (b_m, b_n)
    /// tile — unlike tile copies, the budget-adaptive copy-insertion pass
    /// cannot elide it, so the analytic budget prune has something real to
    /// reject.
    fn gemm() -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let m = b.size("m");
        let n = b.size("n");
        let p = b.size("p");
        let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
        let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
        let out = b.with_ctx(|c| {
            c.map(vec![m, n], |c, idx| {
                let (i, j) = (idx[0], idx[1]);
                c.fold(
                    "dot",
                    vec![p.clone()],
                    vec![],
                    pphw_ir::types::ScalarType::Prim(DType::F32),
                    pphw_ir::pattern::Init::zeros(),
                    |c, kk, acc| {
                        let prod = c.mul(
                            c.read(x, vec![c.var(i), c.var(kk[0])]),
                            c.read(y, vec![c.var(kk[0]), c.var(j)]),
                        );
                        c.add(c.var(acc), prod)
                    },
                    |c, a, b2| c.add(c.var(a), c.var(b2)),
                )
            })
        });
        b.finish(vec![out])
    }

    fn cand(tiles: &[(&str, i64)], par: u32) -> Candidate {
        Candidate {
            tiles: tiles.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            inner_par: par,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
            cap_permille: 1000,
        }
    }

    fn sizes(pairs: &[(&str, i64)]) -> Vec<(String, i64)> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    const GEMM_TILES: &[(&str, i64)] = &[("m", 32), ("n", 32), ("p", 32)];

    #[test]
    fn mandatory_accumulator_over_budget_is_pruned() {
        let prog = gemm();
        let s = sizes(&[("m", 64), ("n", 64), ("p", 64)]);
        let cands = vec![cand(GEMM_TILES, 16)];
        // The interchanged (32,32) f32 accumulator alone needs 4 KiB; a
        // 1 KiB budget cannot hold it no matter what copies are elided.
        let out = prefilter(&prog, &s, &cands, 1024, &AreaBudget::full_device());
        match &out[0] {
            PruneDecision::Budget { predicted, budget } => {
                assert!(*predicted >= 4096, "accumulator bytes: {predicted}");
                assert_eq!(*budget, 1024);
            }
            other => panic!("expected budget prune, got {other:?}"),
        }
        // A sane budget keeps the same candidate.
        let out = prefilter(
            &prog,
            &s,
            &cands,
            6 * 1024 * 1024,
            &AreaBudget::full_device(),
        );
        assert_eq!(out[0], PruneDecision::Keep);
    }

    #[test]
    fn area_budget_prunes_wide_lane_counts() {
        let prog = gemm();
        let s = sizes(&[("m", 64), ("n", 64), ("p", 64)]);
        let cands = vec![cand(GEMM_TILES, 8), cand(GEMM_TILES, 4096)];
        // A 5% device slice fits 8 lanes but not 4096 (1.3M ALMs of
        // compute against ~13k of budget).
        let out = prefilter(
            &prog,
            &s,
            &cands,
            6 * 1024 * 1024,
            &AreaBudget::device_fraction(0.05),
        );
        assert_eq!(out[0], PruneDecision::Keep);
        assert_eq!(out[1], PruneDecision::Area);
    }

    #[test]
    fn area_bound_is_below_any_real_vector_unit() {
        // The bound must not exceed what even the smallest real design
        // containing the unit would cost.
        let bound = area_lower_bound(64, 4096);
        let real_unit = unit_area(&UnitKind::Vector { lanes: 64 }, 2, 8);
        assert!(bound.logic <= real_unit.logic + 1e4);
        assert!(bound.mem >= 1.0, "buffer must cost at least one block");
    }

    #[test]
    fn non_associative_combine_is_pruned_only_when_parallelized() {
        // fold over subtraction: combine (a, b) -> a - b is not
        // associative-commutative, so any parallel candidate is illegal
        // while the serial one stays explorable.
        let mut b = ProgramBuilder::new("subfold");
        let m = b.size("m");
        let x = b.input("x", DType::F32, vec![m.clone()]);
        let out = b.with_ctx(|c| {
            c.fold(
                "acc",
                vec![m],
                vec![],
                pphw_ir::types::ScalarType::Prim(DType::F32),
                pphw_ir::pattern::Init::zeros(),
                |c, i, acc| {
                    let v = c.read(x, vec![c.var(i[0])]);
                    c.add(c.var(acc), v)
                },
                |c, a, b2| c.sub(c.var(a), c.var(b2)),
            )
        });
        let prog = b.finish(vec![out]);
        let s = sizes(&[("m", 64)]);
        let cands = vec![cand(&[("m", 16)], 8), cand(&[("m", 16)], 1)];
        let out = prefilter(
            &prog,
            &s,
            &cands,
            6 * 1024 * 1024,
            &AreaBudget::full_device(),
        );
        match &out[0] {
            PruneDecision::Illegal(why) => {
                assert!(why.contains("associative"), "{why}");
                assert!(why.contains("inner_par=8"), "{why}");
            }
            other => panic!("expected illegal prune, got {other:?}"),
        }
        assert_eq!(out[1], PruneDecision::Keep, "serial reduction is legal");
    }

    #[test]
    fn deadlocking_capacity_scales_are_pruned_before_tiling() {
        let prog = gemm();
        let s = sizes(&[("m", 64), ("n", 64), ("p", 64)]);
        let mut starved = cand(GEMM_TILES, 16);
        starved.cap_permille = 499;
        let mut halved = cand(GEMM_TILES, 16);
        halved.cap_permille = 500;
        let cands = vec![starved, halved];
        let out = prefilter(
            &prog,
            &s,
            &cands,
            6 * 1024 * 1024,
            &AreaBudget::full_device(),
        );
        match &out[0] {
            PruneDecision::Flow(why) => {
                assert!(why.contains("PPHW041"), "{why}");
                assert!(why.contains("0.499"), "{why}");
            }
            other => panic!("expected flow prune, got {other:?}"),
        }
        // Half depth still holds one token per channel: explorable.
        assert_eq!(out[1], PruneDecision::Keep);
    }

    #[test]
    fn bad_tiles_are_pruned_as_tile_errors() {
        let prog = gemm();
        let s = sizes(&[("m", 64), ("n", 64), ("p", 64)]);
        // 48 does not divide 64.
        let cands = vec![cand(&[("m", 48)], 16)];
        let out = prefilter(
            &prog,
            &s,
            &cands,
            6 * 1024 * 1024,
            &AreaBudget::full_device(),
        );
        assert!(matches!(out[0], PruneDecision::Tile(_)));
    }
}
