//! The compositional analytic performance model behind guided search.
//!
//! Exhaustive-with-prefilter caps the spaces the explorer can open at a
//! few hundred points; guided search scales it to 10^6+ by *predicting*
//! every candidate's cycles from cheap per-pattern cost terms and
//! simulating only the promising slice. The model is compositional in the
//! same sense as the transform-level cost analyzer it builds on
//! ([`pphw_transform::cost::predict_traffic`] walks the pattern tree and
//! sums per-pattern read/storage terms): each candidate's feature vector
//! is derived from that structural traffic prediction of *its own tiled
//! program*, combined with the candidate's parallelism and substrate
//! parameters.
//!
//! The model is a linear combination of [`NUM_FEATURES`] physically
//! motivated terms:
//!
//! | term       | meaning                                                    |
//! |------------|------------------------------------------------------------|
//! | intercept  | fixed launch / drain overhead                              |
//! | stream     | cycles to stream predicted DRAM bytes at substrate bandwidth |
//! | compute    | predicted words processed per lane (`words / inner_par`)   |
//! | bottleneck | `max(stream, compute)` — a pipeline runs at the slower of  |
//! |            | its memory and compute stages, so the true cost is closer  |
//! |            | to a max than a sum; this term lets the fit capture that   |
//! | latency    | burst count × request-to-first-data latency                |
//! | gap        | burst count × synchronous turnaround gap                   |
//! | tiles      | number of tile invocations (per-tile fill/drain overhead)  |
//! | inv-bw     | `1 / bytes_per_cycle` — traffic the read analyzer cannot   |
//! |            | see (chiefly output writes) has constant volume across the |
//! |            | space, so its streaming cost is a fitted constant × this   |
//! | raw-lat    | `dram_latency` alone, for the same fixed-volume bursts     |
//! | raw-gap    | `sync_gap` alone, likewise                                 |
//!
//! The free coefficients are **fit, not guessed**: [`CostModel::fit`]
//! solves the least-squares normal equations (with a tiny ridge term for
//! conditioning) over a deterministic seeded sample of *real*
//! simulations. Calibration reuses the [`crate::cache::EvalCache`], so a
//! warm cache makes re-calibration free. Everything here is exact-order
//! deterministic: the sample, the accumulation order of the normal
//! equations, and the Gaussian elimination are pure functions of the
//! candidate list and the seed — thread counts and sharding cannot
//! perturb a prediction.

use std::collections::HashMap;

use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_transform::cost::{predict_traffic, TrafficPrediction};
use pphw_transform::{tile_program, TileConfig};

use crate::space::Candidate;

/// Number of cost terms in the model (including the intercept).
pub const NUM_FEATURES: usize = 10;

/// One candidate's analytic cost terms (the model's regressors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    /// The terms, in the order documented on the module.
    pub terms: [f64; NUM_FEATURES],
}

/// Derives the feature vector for one candidate from the structural
/// traffic prediction of its tiled program plus its parallelism and
/// substrate parameters.
#[must_use]
pub fn candidate_features(
    traffic: &TrafficPrediction,
    sizes: &[(String, i64)],
    c: &Candidate,
) -> Features {
    let words = traffic.dram_read_words.max(0) as f64;
    let bytes = words * c.sim.word_bytes as f64;
    let stream = bytes / c.sim.bytes_per_cycle().max(1e-9);
    let compute = words / f64::from(c.inner_par.max(1));
    let bursts = bytes / c.sim.burst_bytes.max(1) as f64;
    let latency = bursts * c.sim.dram_latency as f64;
    let gap = bursts * c.sim.sync_gap as f64;
    let mut tiles = 1.0f64;
    for (dim, tile) in &c.tiles {
        if let Some((_, n)) = sizes.iter().find(|(k, _)| k == dim) {
            tiles *= (*n as f64 / (*tile).max(1) as f64).max(1.0);
        }
    }
    // Substrate-only terms: the analyzer predicts *reads*, but a program
    // also streams its output, whose volume is a property of the program
    // alone — constant across the space. A fitted coefficient times
    // these pure-substrate regressors prices that hidden fixed-volume
    // traffic (e.g. outer product, whose m*n-word output dwarfs its
    // m+n-word input), letting the ranking discriminate substrate
    // variants even when predicted read traffic is negligible.
    let inv_bw = 1e3 / c.sim.bytes_per_cycle().max(1e-9);
    Features {
        terms: [
            1.0,
            stream,
            compute,
            stream.max(compute),
            latency,
            gap,
            tiles,
            inv_bw,
            c.sim.dram_latency as f64,
            c.sim.sync_gap as f64,
        ],
    }
}

/// Computes features for every candidate of a space, memoizing the
/// expensive part — tiling the program and running the structural cost
/// analyzer — per unique tile configuration, exactly like the prefilter
/// does. A candidate whose tiling or cost analysis fails yields `None`
/// (such candidates were pruned before evaluation anyway).
pub struct FeatureExtractor<'p> {
    prog: &'p Program,
    sizes: Vec<(String, i64)>,
    on_chip_budget_bytes: u64,
    memo: HashMap<String, Option<TrafficPrediction>>,
}

impl<'p> FeatureExtractor<'p> {
    /// Creates an extractor for `prog` at the given concrete sizes.
    #[must_use]
    pub fn new(prog: &'p Program, sizes: &[(String, i64)], on_chip_budget_bytes: u64) -> Self {
        FeatureExtractor {
            prog,
            sizes: sizes.to_vec(),
            on_chip_budget_bytes,
            memo: HashMap::new(),
        }
    }

    /// The memoized structural traffic prediction for a candidate's tile
    /// configuration.
    pub fn traffic(&mut self, c: &Candidate) -> Option<TrafficPrediction> {
        let key = format!("{:?}", c.tiles);
        let size_pairs: Vec<(&str, i64)> =
            self.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let prog = self.prog;
        let budget = self.on_chip_budget_bytes;
        *self.memo.entry(key).or_insert_with(|| {
            let tiled = if c.tiles.is_empty() {
                prog.clone()
            } else {
                let cfg = TileConfig::new(&c.tile_pairs(), &size_pairs).with_budget(budget);
                match tile_program(prog, &cfg) {
                    Ok(t) => t,
                    Err(_) => return None,
                }
            };
            predict_traffic(&tiled, &Size::env(&size_pairs)).ok()
        })
    }

    /// The full feature vector for a candidate, or `None` if its tile
    /// configuration defeats the analyzer.
    pub fn features(&mut self, c: &Candidate) -> Option<Features> {
        let traffic = self.traffic(c)?;
        Some(candidate_features(&traffic, &self.sizes, c))
    }
}

/// A fitted linear cost model: `predicted cycles = theta · features`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One coefficient per feature term.
    pub theta: [f64; NUM_FEATURES],
}

impl CostModel {
    /// Fits the coefficients by least squares over calibration pairs
    /// (features, measured cycles): solves the normal equations
    /// `(XᵀX + λI) θ = Xᵀy` with a tiny ridge term `λ` scaled to the
    /// Gram matrix so the solve stays conditioned even when the sample
    /// does not span every term. Accumulation runs in input order and the
    /// elimination uses deterministic partial pivoting, so equal inputs
    /// always produce bit-equal coefficients.
    ///
    /// Returns `None` when there are no calibration points at all — the
    /// caller should fall back to exhaustive evaluation.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // symmetric index math reads better than zips
    pub fn fit(xs: &[Features], ys: &[f64]) -> Option<CostModel> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        const K: usize = NUM_FEATURES;
        let mut gram = [[0.0f64; K]; K];
        let mut rhs = [0.0f64; K];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..K {
                for j in 0..K {
                    gram[i][j] += x.terms[i] * x.terms[j];
                }
                rhs[i] += x.terms[i] * y;
            }
        }
        let max_diag = gram
            .iter()
            .enumerate()
            .map(|(i, row)| row[i].abs())
            .fold(0.0f64, f64::max);
        let ridge = (max_diag * 1e-12).max(1e-18);
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let theta = solve(gram, rhs)?;
        Some(CostModel { theta })
    }

    /// The model's cycle prediction for a feature vector (clamped
    /// non-negative — a negative extrapolation is "free", i.e. maximally
    /// promising, and must not wrap anything).
    #[must_use]
    pub fn predict(&self, x: &Features) -> f64 {
        let mut acc = 0.0;
        for (t, f) in self.theta.iter().zip(&x.terms) {
            acc += t * f;
        }
        acc.max(0.0)
    }
}

/// Solves the `K×K` system `a·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` on a (ridge-proofed, so effectively
/// impossible) singular system.
#[allow(clippy::needless_range_loop)] // row ops index two rows of `a` at once
fn solve(
    mut a: [[f64; NUM_FEATURES]; NUM_FEATURES],
    mut b: [f64; NUM_FEATURES],
) -> Option<[f64; NUM_FEATURES]> {
    const K: usize = NUM_FEATURES;
    for col in 0..K {
        let mut pivot = col;
        for row in col + 1..K {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..K {
            let factor = a[row][col] / a[col][col];
            for k in col..K {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; K];
    for col in (0..K).rev() {
        let mut acc = b[col];
        for k in col + 1..K {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// SplitMix64 — the stable scrambler behind deterministic sampling.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Picks the deterministic calibration sample: candidates are ranked by
/// `splitmix64(fingerprint ^ seed)` and the `sample` smallest win. The
/// result is a sorted index list, a pure function of (fingerprints, seed)
/// — independent of thread count, shard assignment, and enumeration
/// tricks — so every shard of a sharded search calibrates on the *same*
/// points and fits the *same* model.
#[must_use]
pub fn pick_sample(fingerprints: &[u64], sample: usize, seed: u64) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = fingerprints
        .iter()
        .enumerate()
        .map(|(i, &fp)| (splitmix64(fp ^ seed), i))
        .collect();
    ranked.sort_unstable();
    let mut picked: Vec<usize> = ranked.into_iter().take(sample).map(|(_, i)| i).collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_sim::SimConfig;

    fn feat(terms: [f64; NUM_FEATURES]) -> Features {
        Features { terms }
    }

    #[test]
    fn fit_recovers_an_exact_linear_model() {
        // y = 100 + 2*stream + 5*compute (other terms inert).
        let truth = [100.0, 2.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..32u64 {
            let s = splitmix64(i) % 1000;
            let c = splitmix64(i.wrapping_mul(7)) % 500;
            let x = feat([1.0, s as f64, c as f64, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
            let y: f64 = truth.iter().zip(&x.terms).map(|(t, f)| t * f).sum();
            xs.push(x);
            ys.push(y);
        }
        let model = CostModel::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let err = (model.predict(x) - y).abs() / y.max(1.0);
            assert!(err < 1e-6, "prediction off by {err} at {x:?}");
        }
    }

    #[test]
    fn fit_ranks_even_from_a_degenerate_sample() {
        // All sample points share latency/gap/tiles values: the Gram
        // matrix is rank-deficient without the ridge term, yet the fit
        // must still order candidates by the informative terms.
        let xs: Vec<Features> = (1..=8)
            .map(|i| {
                let stream = i as f64 * 100.0;
                let compute = i as f64 * 10.0;
                feat([
                    1.0,
                    stream,
                    compute,
                    stream.max(compute),
                    3.0,
                    3.0,
                    4.0,
                    0.5,
                    64.0,
                    8.0,
                ])
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.terms[1] + 50.0).collect();
        let model = CostModel::fit(&xs, &ys).unwrap();
        let preds: Vec<f64> = xs.iter().map(|x| model.predict(x)).collect();
        for w in preds.windows(2) {
            assert!(w[1] > w[0], "ranking not monotone: {preds:?}");
        }
    }

    #[test]
    fn fit_is_bit_deterministic() {
        let xs: Vec<Features> = (0..16)
            .map(|i| {
                feat([
                    1.0,
                    splitmix64(i) as f64 % 97.0,
                    splitmix64(i + 1) as f64 % 13.0,
                    splitmix64(i + 3) as f64 % 53.0,
                    splitmix64(i + 2) as f64 % 7.0,
                    1.0,
                    2.0,
                    splitmix64(i + 4) as f64 % 5.0,
                    64.0,
                    8.0,
                ])
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.terms[1] * 3.0 + 11.0).collect();
        let a = CostModel::fit(&xs, &ys).unwrap();
        let b = CostModel::fit(&xs, &ys).unwrap();
        for (ta, tb) in a.theta.iter().zip(&b.theta) {
            assert_eq!(ta.to_bits(), tb.to_bits());
        }
    }

    #[test]
    fn empty_sample_is_no_model() {
        assert!(CostModel::fit(&[], &[]).is_none());
    }

    #[test]
    fn features_respond_to_every_knob() {
        let sizes = vec![("m".to_string(), 64i64), ("n".to_string(), 64i64)];
        let traffic = TrafficPrediction {
            dram_read_words: 4096,
            on_chip_words: 256,
        };
        let base = Candidate {
            tiles: vec![("m".into(), 8), ("n".into(), 8)],
            inner_par: 16,
            sim_label: "max4".into(),
            sim: SimConfig::default(),
            cap_permille: 1000,
        };
        let f0 = candidate_features(&traffic, &sizes, &base);
        assert_eq!(f0.terms[0], 1.0);
        assert_eq!(
            f0.terms[3],
            f0.terms[1].max(f0.terms[2]),
            "bottleneck term is max(stream, compute)"
        );
        assert_eq!(f0.terms[6], 64.0, "8x8 tiles over 64x64");

        let mut wider = base.clone();
        wider.inner_par = 32;
        let f1 = candidate_features(&traffic, &sizes, &wider);
        assert!(f1.terms[2] < f0.terms[2], "more lanes, less work per lane");

        let mut slower = base.clone();
        slower.sim = SimConfig::default().with_dram_gbps(38.4);
        let f2 = candidate_features(&traffic, &sizes, &slower);
        assert!(f2.terms[1] > f0.terms[1], "half bandwidth, double stream");
        assert!(
            f2.terms[7] > f0.terms[7],
            "half bandwidth also doubles the fixed-volume streaming term"
        );

        let mut bigger = base;
        bigger.tiles = vec![("m".into(), 32), ("n".into(), 32)];
        let f3 = candidate_features(&traffic, &sizes, &bigger);
        assert_eq!(f3.terms[6], 4.0, "32x32 tiles over 64x64");
    }

    #[test]
    fn sample_pick_is_deterministic_sorted_and_bounded() {
        let fps: Vec<u64> = (0..100u64).map(|i| splitmix64(i * 31)).collect();
        let a = pick_sample(&fps, 10, 42);
        let b = pick_sample(&fps, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        let c = pick_sample(&fps, 10, 43);
        assert_ne!(a, c, "seed changes the sample");
        let all = pick_sample(&fps, 1000, 42);
        assert_eq!(all.len(), 100, "sample larger than space takes all");
    }
}
