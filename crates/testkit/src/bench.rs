//! A dependency-free wall-clock micro-benchmark timer (`criterion`
//! replacement for `cargo bench` targets with `harness = false`).
//!
//! Timing model: each measurement auto-calibrates a batch size so one batch
//! takes a few milliseconds, then records a fixed number of batch samples
//! and reports min / median / mean per-iteration times. `PPHW_BENCH_QUICK=1`
//! collapses the budget to one short sample per benchmark (used by smoke
//! tests and CI, where trend data is not needed).

use std::time::{Duration, Instant};

/// Per-benchmark statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStat {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Total iterations measured.
    pub iters: u64,
    /// Fastest batch, per iteration.
    pub min_ns: f64,
    /// Median batch, per iteration.
    pub median_ns: f64,
    /// Mean over all batches, per iteration.
    pub mean_ns: f64,
}

impl BenchStat {
    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }

    /// One formatted report line.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "{:<40} min {:>12}   median {:>12}   mean {:>12}   ({} iters)",
            self.name,
            Self::fmt_ns(self.min_ns),
            Self::fmt_ns(self.median_ns),
            Self::fmt_ns(self.mean_ns),
            self.iters
        )
    }
}

/// Whether quick mode is on (short, smoke-test-grade measurements).
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("PPHW_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Measures `f`, returning per-iteration statistics.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> BenchStat {
    let (samples, batch_budget) = if quick_mode() {
        (3usize, Duration::from_micros(500))
    } else {
        (12usize, Duration::from_millis(5))
    };

    // Calibrate: grow the batch until it fills the budget.
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let took = t.elapsed();
        if took >= batch_budget || batch >= 1 << 20 {
            break;
        }
        // Aim directly at the budget, with headroom for noise.
        let scale = (batch_budget.as_secs_f64() / took.as_secs_f64().max(1e-9)).ceil();
        batch = (batch.saturating_mul(scale as u64)).clamp(batch + 1, 1 << 20);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    let mut iters = 0u64;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        iters += batch;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min_ns = per_iter[0];
    let median_ns = per_iter[per_iter.len() / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    BenchStat {
        name: name.to_string(),
        iters,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// A named group of benchmarks printed as one table (loose analogue of
/// `criterion`'s `benchmark_group`).
pub struct BenchGroup {
    name: String,
    stats: Vec<BenchStat>,
}

impl BenchGroup {
    /// Creates a group.
    #[must_use]
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_string(),
            stats: Vec::new(),
        }
    }

    /// Measures one benchmark within the group.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, f: F) -> &BenchStat {
        let full = format!("{}/{}", self.name, id);
        let stat = bench(&full, f);
        println!("  {}", stat.line());
        self.stats.push(stat);
        self.stats.last().expect("just pushed")
    }

    /// Finishes the group, returning its statistics.
    #[must_use]
    pub fn finish(self) -> Vec<BenchStat> {
        println!();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        // Force quick mode semantics by keeping the workload tiny either way.
        let stat = bench("test/noop_sum", || (0..100u64).sum::<u64>());
        assert!(stat.iters > 0);
        assert!(stat.min_ns >= 0.0);
        assert!(stat.min_ns <= stat.mean_ns * 1.5 + 1.0);
    }

    #[test]
    fn ordering_reflects_work() {
        let small = bench("test/small", || (0..10u64).product::<u64>());
        let big = bench("test/big", || {
            std::hint::black_box((0..50_000u64).fold(0u64, |a, b| a.wrapping_add(b * b)))
        });
        assert!(
            big.min_ns > small.min_ns,
            "big {} !> small {}",
            big.min_ns,
            small.min_ns
        );
    }
}
