//! Differential testing across the three executable semantics of the
//! pipeline.
//!
//! The paper's central correctness claim (§4) is that tiling — strip
//! mining, pattern interchange, tile-copy insertion — preserves program
//! semantics, and that the generated hardware implements exactly the tiled
//! program. This module confronts the three executable artifacts the repo
//! has for every program, on the same seeded inputs:
//!
//! 1. the **untiled** program under the reference interpreter (the oracle);
//! 2. the **tiled** program (through a configurable transform, by default
//!    [`tile_program`]) under the same interpreter;
//! 3. the **generated design** at every optimization level — its functional
//!    results via [`pphw::Compiled::execute`], and its simulated timing,
//!    which must be deterministic and non-trivial.
//!
//! Element-wise comparison uses the interpreter's tolerance-aware
//! [`Value::approx_eq`], because tiling legitimately reassociates floating
//! point reductions. A sweep runs many seeded size/tile configurations per
//! program, turning the fixed-size asserts of the integration tests into a
//! randomized, reproducible check.
//!
//! ## Analytic traffic cross-check
//!
//! Each simulated design is also confronted with the analytic cost model
//! ([`pphw_transform::cost::predict_traffic`]): the model predicts DRAM
//! *read* words, while [`SimReport::dram_words`](pphw_sim::SimReport)
//! counts every stream word including output writes, so the comparison
//! carries a documented allowance (see [`check_traffic`]). For tiled and
//! metapipelined designs the prediction is tight — the simulator must
//! request at least the predicted reads and at most the prediction plus
//! output writes plus burst-padding slack. Baseline designs diverge in
//! both directions (burst caching reuses words the naive count charges
//! twice; untiled designs re-fetch operands the model assumes resident),
//! so they only get a two-sided factor-of-two band.
//!
//! ## Level sweeps and cycle ordering
//!
//! Simulation runs for the cross product of optimization level ×
//! [`DiffOptions::inner_pars`] × [`DiffOptions::sim_variants`]. Within
//! each (parallelism, substrate) group the harness asserts the orderings
//! that hold for *any* problem size: metapipelining never loses cycles to
//! plain tiling of the same program, and tiled designs never request more
//! DRAM words than the baseline (and exactly as many as metapipelined —
//! overlap changes timing, not traffic). The stronger chain
//! `meta ≤ tiled ≤ baseline` cycles only holds once the problem is large
//! enough for captured reuse to pay for tile-copy overhead — and never
//! for pure streaming benchmarks like tpchq6 (cf. Figure 7, where tiling
//! alone is ~1x there) — so it is opt-in per sweep via
//! [`DiffOptions::expect_tiling_speedup`].

use std::fmt;

use pphw::{compile, CompileOptions, OptLevel};
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::size::{Size, SizeEnv};
use pphw_ir::Program;
use pphw_sim::SimConfig;
use pphw_transform::cost::predict_traffic;
use pphw_transform::{tile_program, TileConfig, TileError};

/// The tiling transform under test. Swappable so tests can inject a
/// deliberately broken transform and assert the harness catches it.
pub type TileFn = fn(&Program, &TileConfig) -> Result<Program, TileError>;

/// One size/tile/seed configuration of a differential sweep.
#[derive(Debug, Clone)]
pub struct DiffCase {
    /// Human-readable label (shows up in errors and the report).
    pub label: String,
    /// Concrete dimension sizes.
    pub sizes: Vec<(String, i64)>,
    /// Tile sizes (must divide the corresponding dimensions).
    pub tiles: Vec<(String, i64)>,
    /// Input-generation seed.
    pub seed: u64,
}

impl DiffCase {
    /// Builds a case.
    #[must_use]
    pub fn new(sizes: &[(&str, i64)], tiles: &[(&str, i64)], seed: u64) -> DiffCase {
        let label = sizes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .chain(tiles.iter().map(|(k, v)| format!("{k}/{v}")))
            .collect::<Vec<_>>()
            .join(",");
        DiffCase {
            label: format!("{label},seed={seed}"),
            sizes: sizes.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            tiles: tiles.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            seed,
        }
    }

    fn size_pairs(&self) -> Vec<(&str, i64)> {
        self.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    fn tile_pairs(&self) -> Vec<(&str, i64)> {
        self.tiles.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }
}

/// Sweep configuration.
#[derive(Clone)]
pub struct DiffOptions {
    /// Relative float tolerance for output comparison.
    pub tol: f32,
    /// Innermost parallelism factors to sweep for compiled designs.
    pub inner_pars: Vec<u32>,
    /// Simulation substrate variants to sweep.
    pub sim_variants: Vec<(String, SimConfig)>,
    /// Also simulate each compiled design and check cycle-count
    /// determinism, analytic traffic agreement, and level ordering.
    pub check_simulation: bool,
    /// Assert the full `meta <= tiled <= baseline` cycle ordering. Only
    /// valid for cases large enough that captured reuse pays for the
    /// tile-copy overhead (see module docs); `meta <= tiled` is asserted
    /// unconditionally.
    pub expect_tiling_speedup: bool,
    /// The tiling transform under test.
    pub tile_fn: TileFn,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol: 1e-3,
            inner_pars: vec![16],
            sim_variants: vec![("max4".to_string(), SimConfig::default())],
            check_simulation: true,
            expect_tiling_speedup: false,
            tile_fn: tile_program,
        }
    }
}

/// Simulated timing of one optimization level of one case.
#[derive(Debug, Clone)]
pub struct LevelOutcome {
    /// Optimization level.
    pub level: OptLevel,
    /// Innermost parallelism factor of the design.
    pub inner_par: u32,
    /// Simulation substrate label.
    pub sim_label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// DRAM words requested.
    pub dram_words: u64,
}

/// Everything checked for one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case label.
    pub label: String,
    /// Per-level simulation outcomes (empty when simulation is off).
    pub levels: Vec<LevelOutcome>,
}

/// A completed differential sweep.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Program name.
    pub name: String,
    /// Per-case outcomes, in input order.
    pub cases: Vec<CaseOutcome>,
}

impl DiffReport {
    /// Formats the sweep as a text table.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "differential sweep `{}`: {} cases ok\n",
            self.name,
            self.cases.len()
        );
        for case in &self.cases {
            out.push_str(&format!("  {}\n", case.label));
            for l in &case.levels {
                out.push_str(&format!(
                    "    {:<22} par={:<4} sim={:<10} {:>12} cycles {:>12} DRAM words\n",
                    l.level.to_string(),
                    l.inner_par,
                    l.sim_label,
                    l.cycles,
                    l.dram_words
                ));
            }
        }
        out
    }
}

/// A differential failure: which case and which stage of the cross-check
/// diverged.
#[derive(Debug)]
pub enum DiffError {
    /// The reference interpreter rejected the program or inputs.
    Interp {
        /// Case label.
        case: String,
        /// Which artifact was being interpreted.
        stage: &'static str,
        /// Interpreter error.
        err: String,
    },
    /// The tiling transform failed.
    Tile {
        /// Case label.
        case: String,
        /// Transform error.
        err: String,
    },
    /// A compiled artifact failed to build.
    Compile {
        /// Case label.
        case: String,
        /// Optimization level being compiled.
        level: OptLevel,
        /// Compiler error.
        err: String,
    },
    /// The cycle simulator rejected a compiled design or its substrate.
    Sim {
        /// Case label.
        case: String,
        /// Which simulation variant failed.
        stage: String,
        /// Simulator error.
        err: String,
    },
    /// Two artifacts computed different results (or simulation was
    /// non-deterministic / trivial).
    Mismatch {
        /// Case label.
        case: String,
        /// Which comparison diverged.
        stage: String,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Interp { case, stage, err } => {
                write!(f, "[{case}] interpreter failed on {stage}: {err}")
            }
            DiffError::Tile { case, err } => write!(f, "[{case}] tiling failed: {err}"),
            DiffError::Compile { case, level, err } => {
                write!(f, "[{case}] compile at {level} failed: {err}")
            }
            DiffError::Sim { case, stage, err } => {
                write!(f, "[{case}] simulation failed at {stage}: {err}")
            }
            DiffError::Mismatch {
                case,
                stage,
                detail,
            } => {
                write!(f, "[{case}] DIVERGENCE at {stage}: {detail}")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Describes the first element-wise divergence between two output lists, or
/// `None` if they agree within `tol`.
#[must_use]
pub fn first_divergence(base: &[Value], other: &[Value], tol: f32) -> Option<String> {
    if base.len() != other.len() {
        return Some(format!(
            "output arity differs: {} vs {}",
            base.len(),
            other.len()
        ));
    }
    for (o, (a, b)) in base.iter().zip(other).enumerate() {
        if a.approx_eq(b, tol) {
            continue;
        }
        // Localize the divergence for tensor outputs.
        if let (Value::Tensor(_), Value::Tensor(_)) = (a, b) {
            let (av, bv) = (a.as_f32_slice(), b.as_f32_slice());
            if av.len() != bv.len() {
                return Some(format!(
                    "output {o}: element count {} vs {}",
                    av.len(),
                    bv.len()
                ));
            }
            for (i, (x, y)) in av.iter().zip(&bv).enumerate() {
                let scale = x.abs().max(y.abs()).max(1.0);
                if (x - y).abs() > tol * scale {
                    return Some(format!("output {o}, element {i}: {x} vs {y} (tol {tol})"));
                }
            }
        }
        return Some(format!("output {o} differs beyond tol {tol}"));
    }
    None
}

fn mismatch(case: &DiffCase, stage: impl Into<String>, detail: impl Into<String>) -> DiffError {
    DiffError::Mismatch {
        case: case.label.clone(),
        stage: stage.into(),
        detail: detail.into(),
    }
}

/// Burst-padding allowance of the traffic cross-check: streams are
/// rounded up to whole DRAM bursts, which adds at most a few words per
/// stream — a constant floor plus a 1/8 relative term covers every
/// observed benchmark with margin.
const TRAFFIC_SLACK_WORDS: u64 = 64;

/// Cross-checks the analytic DRAM-word prediction against the simulator's
/// count for one design (tolerances documented in the module docs).
///
/// `predicted_reads` comes from the cost model on the program the design
/// implements (untiled for the baseline level, tiled otherwise);
/// `output_words` is the element count of the program outputs, which the
/// simulator counts as write traffic but the model does not predict.
fn check_traffic(
    level: OptLevel,
    predicted_reads: u64,
    output_words: u64,
    sim_words: u64,
) -> Result<(), String> {
    let slack = TRAFFIC_SLACK_WORDS + predicted_reads / 8;
    let (lo, hi) = match level {
        // Baseline designs only get a two-sided factor-of-two band: burst
        // caching can serve repeated reads the naive count charges twice
        // (gemm), and untiled designs re-fetch small operands the model
        // assumes stay resident (kmeans centroids).
        OptLevel::Baseline => (
            predicted_reads / 2,
            2 * (predicted_reads + output_words) + slack,
        ),
        // Tiled designs realize the model's reuse exactly: reads are
        // bounded below by the prediction and above by it plus output
        // writes plus burst padding.
        OptLevel::Tiled | OptLevel::Metapipelined => {
            (predicted_reads, predicted_reads + output_words + slack)
        }
    };
    if sim_words < lo || sim_words > hi {
        return Err(format!(
            "simulated {sim_words} DRAM words outside analytic band [{lo}, {hi}] \
             (predicted reads {predicted_reads}, output words {output_words})"
        ));
    }
    Ok(())
}

/// Total scalar elements across program outputs — the write traffic the
/// simulator counts but the cost model does not predict.
fn output_word_count(outputs: &[Value]) -> u64 {
    outputs.iter().map(|v| v.as_f32_slice().len() as u64).sum()
}

/// Runs one case: oracle vs golden vs tiled vs compiled designs.
///
/// # Errors
///
/// Returns the first [`DiffError`] encountered.
#[allow(clippy::type_complexity)]
pub fn run_case(
    program: &Program,
    inputs_fn: &dyn Fn(&SizeEnv, u64) -> Vec<Value>,
    golden: Option<&dyn Fn(&[Value], &SizeEnv) -> Vec<Value>>,
    case: &DiffCase,
    opts: &DiffOptions,
) -> Result<CaseOutcome, DiffError> {
    let sizes = case.size_pairs();
    let env = Size::env(&sizes);
    let inputs = inputs_fn(&env, case.seed);

    // (a) Untiled program under the reference interpreter: the oracle.
    let base = Interpreter::new(program, &sizes)
        .run(inputs.clone())
        .map_err(|e| DiffError::Interp {
            case: case.label.clone(),
            stage: "untiled program",
            err: e.to_string(),
        })?;

    // Oracle vs plain-Rust golden model, when one exists.
    if let Some(golden) = golden {
        let want = golden(&inputs, &env);
        if let Some(d) = first_divergence(&want, &base, opts.tol) {
            return Err(mismatch(case, "interpreter vs golden", d));
        }
    }

    // (b) Tiled program under the same interpreter.
    let cfg = TileConfig::new(&case.tile_pairs(), &sizes);
    let tiled = (opts.tile_fn)(program, &cfg).map_err(|e| DiffError::Tile {
        case: case.label.clone(),
        err: e.to_string(),
    })?;
    tiled.validate().map_err(|e| DiffError::Tile {
        case: case.label.clone(),
        err: format!("tiled program fails validation: {e}"),
    })?;
    let tiled_out = Interpreter::new(&tiled, &sizes)
        .run(inputs.clone())
        .map_err(|e| DiffError::Interp {
            case: case.label.clone(),
            stage: "tiled program",
            err: e.to_string(),
        })?;
    if let Some(d) = first_divergence(&base, &tiled_out, opts.tol) {
        return Err(mismatch(case, "tiled vs untiled", d));
    }

    // Analytic traffic predictions for the cross-check below: reads of
    // the untiled program (what baseline designs implement) and of the
    // canonically tiled program (what tiled/metapipelined designs
    // implement — always via `tile_program`, matching `compile`, even
    // when the transform *under test* is an injected mutant).
    let canon_tiled = tile_program(program, &cfg).map_err(|e| DiffError::Tile {
        case: case.label.clone(),
        err: e.to_string(),
    })?;
    let pred = |p: &Program| -> Result<u64, DiffError> {
        predict_traffic(p, &env)
            .map(|t| t.dram_read_words.max(0) as u64)
            .map_err(|e| DiffError::Interp {
                case: case.label.clone(),
                stage: "cost model",
                err: e.to_string(),
            })
    };
    let untiled_reads = pred(program)?;
    let tiled_reads = pred(&canon_tiled)?;
    let output_words = output_word_count(&base);

    // (c) Generated designs at every optimization level × parallelism ×
    // substrate: functional results plus (optionally) deterministic,
    // non-trivial simulated timing that agrees with the cost model.
    let mut levels = Vec::new();
    for level in OptLevel::all() {
        for (pi, &par) in opts.inner_pars.iter().enumerate() {
            let copts = CompileOptions::new(&sizes)
                .tiles(&case.tile_pairs())
                .inner_par(par)
                .opt(level);
            let compiled = compile(program, &copts).map_err(|e| DiffError::Compile {
                case: case.label.clone(),
                level,
                err: e.to_string(),
            })?;
            // Functional results cannot depend on parallelism, so execute
            // the design once per level (the interpreter is the slow part
            // of the sweep).
            if pi == 0 {
                let got = compiled
                    .execute(inputs.clone())
                    .map_err(|e| DiffError::Interp {
                        case: case.label.clone(),
                        stage: "compiled design",
                        err: e.to_string(),
                    })?;
                if let Some(d) = first_divergence(&base, &got, opts.tol) {
                    return Err(mismatch(case, format!("design@{level} vs untiled"), d));
                }
            }

            if !opts.check_simulation {
                continue;
            }
            for (sim_label, sim) in &opts.sim_variants {
                let stage = || format!("simulation@{level} par={par} sim={sim_label}");
                let run = |what| {
                    compiled.simulate(sim).map_err(|e| DiffError::Sim {
                        case: case.label.clone(),
                        stage: format!("{} ({what})", stage()),
                        err: e.to_string(),
                    })
                };
                let r1 = run("first run")?;
                let r2 = run("repeat run")?;
                if r1.cycles == 0 {
                    return Err(mismatch(case, stage(), "design simulated to zero cycles"));
                }
                if r1.cycles != r2.cycles || r1.dram_words != r2.dram_words {
                    return Err(mismatch(
                        case,
                        stage(),
                        format!(
                            "non-deterministic simulation: {} vs {} cycles, {} vs {} words",
                            r1.cycles, r2.cycles, r1.dram_words, r2.dram_words
                        ),
                    ));
                }
                let predicted = match level {
                    OptLevel::Baseline => untiled_reads,
                    _ => tiled_reads,
                };
                check_traffic(level, predicted, output_words, r1.dram_words)
                    .map_err(|d| mismatch(case, format!("traffic@{level} par={par}"), d))?;
                levels.push(LevelOutcome {
                    level,
                    inner_par: par,
                    sim_label: sim_label.clone(),
                    cycles: r1.cycles,
                    dram_words: r1.dram_words,
                });
            }
        }
    }

    // Cycle and traffic orderings within each (parallelism, substrate)
    // group — see module docs for which orderings are unconditional.
    for &par in &opts.inner_pars {
        for (sim_label, _) in &opts.sim_variants {
            let find = |lvl: OptLevel| {
                levels
                    .iter()
                    .find(|l| l.level == lvl && l.inner_par == par && &l.sim_label == sim_label)
            };
            let (Some(b), Some(t), Some(m)) = (
                find(OptLevel::Baseline),
                find(OptLevel::Tiled),
                find(OptLevel::Metapipelined),
            ) else {
                continue; // simulation off
            };
            let group = format!("ordering par={par} sim={sim_label}");
            if m.cycles > t.cycles {
                return Err(mismatch(
                    case,
                    group,
                    format!(
                        "metapipelining lost cycles: meta {} > tiled {}",
                        m.cycles, t.cycles
                    ),
                ));
            }
            if t.dram_words > b.dram_words || t.dram_words != m.dram_words {
                return Err(mismatch(
                    case,
                    group,
                    format!(
                        "DRAM ordering broken: baseline {} tiled {} meta {}",
                        b.dram_words, t.dram_words, m.dram_words
                    ),
                ));
            }
            if opts.expect_tiling_speedup && t.cycles > b.cycles {
                return Err(mismatch(
                    case,
                    group,
                    format!(
                        "expected tiling speedup: tiled {} > baseline {} cycles",
                        t.cycles, b.cycles
                    ),
                ));
            }
        }
    }

    Ok(CaseOutcome {
        label: case.label.clone(),
        levels,
    })
}

/// Runs a full differential sweep over `cases`.
///
/// # Errors
///
/// Returns the first [`DiffError`] encountered; a passing sweep returns a
/// [`DiffReport`] with one outcome per case.
#[allow(clippy::type_complexity)]
pub fn run_differential(
    name: &str,
    program: &Program,
    inputs_fn: &dyn Fn(&SizeEnv, u64) -> Vec<Value>,
    golden: Option<&dyn Fn(&[Value], &SizeEnv) -> Vec<Value>>,
    cases: &[DiffCase],
    opts: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    let mut outcomes = Vec::with_capacity(cases.len());
    for case in cases {
        outcomes.push(run_case(program, inputs_fn, golden, case, opts)?);
    }
    Ok(DiffReport {
        name: name.to_string(),
        cases: outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::expr::{BinOp, Expr};
    use pphw_ir::types::DType;
    use pphw_transform::rewrite::map_exprs;

    fn scale_program() -> Program {
        let mut b = ProgramBuilder::new("scale");
        let d = b.size("n");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, i| {
            c.add(c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])])), c.f32(1.0))
        });
        b.finish(vec![out])
    }

    fn inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
        let n = *env.get("n").expect("n bound") as usize;
        let mut rng = crate::rng::Rng::seed_from_u64(seed);
        vec![Value::tensor_f32(&[n], rng.f32_vec(n, -1.0, 1.0))]
    }

    fn cases() -> Vec<DiffCase> {
        vec![
            DiffCase::new(&[("n", 32)], &[("n", 8)], 1),
            DiffCase::new(&[("n", 64)], &[("n", 16)], 2),
        ]
    }

    #[test]
    fn healthy_program_passes() {
        let report = run_differential(
            "scale",
            &scale_program(),
            &inputs,
            None,
            &cases(),
            &DiffOptions::default(),
        )
        .expect("sweep passes");
        assert_eq!(report.cases.len(), 2);
        assert!(report.cases.iter().all(|c| c.levels.len() == 3));
        assert!(report.summary().contains("scale"));
    }

    /// A transform that tiles correctly and then corrupts the arithmetic —
    /// the harness must flag it at the tiled-vs-untiled comparison. Only
    /// the first add is flipped: a single-operator mutant can't cancel
    /// itself the way an even number of sign flips on one accumulation
    /// chain would.
    fn broken_tile(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
        let mut t = tile_program(prog, cfg)?;
        let mut flipped = false;
        map_exprs(&mut t.body, &mut |e| {
            e.map(&mut |sub| match sub {
                Expr::Bin(BinOp::Add, a, b) if !flipped => {
                    flipped = true;
                    Expr::Bin(BinOp::Sub, a, b)
                }
                other => other,
            })
        });
        Ok(t)
    }

    #[test]
    fn broken_transform_is_caught() {
        let opts = DiffOptions {
            tile_fn: broken_tile,
            ..DiffOptions::default()
        };
        let err = run_differential("scale", &scale_program(), &inputs, None, &cases(), &opts)
            .expect_err("mutation must be detected");
        match err {
            DiffError::Mismatch { stage, .. } => assert_eq!(stage, "tiled vs untiled"),
            other => panic!("wrong error class: {other}"),
        }
    }

    #[test]
    fn golden_disagreement_is_caught() {
        let wrong_golden = |inp: &[Value], _env: &SizeEnv| -> Vec<Value> {
            // Claims the map is 2x+2 instead of 2x+1.
            let data: Vec<f32> = inp[0]
                .as_f32_slice()
                .iter()
                .map(|v| 2.0 * v + 2.0)
                .collect();
            vec![Value::tensor_f32(&[data.len()], data)]
        };
        let err = run_differential(
            "scale",
            &scale_program(),
            &inputs,
            Some(&wrong_golden),
            &cases(),
            &DiffOptions::default(),
        )
        .expect_err("golden disagreement must be detected");
        match err {
            DiffError::Mismatch { stage, .. } => assert_eq!(stage, "interpreter vs golden"),
            other => panic!("wrong error class: {other}"),
        }
    }
}
