//! # pphw-testkit — hermetic test infrastructure
//!
//! Everything the workspace needs to test itself with **zero registry
//! dependencies**, so `cargo build --offline` / `cargo test --offline`
//! succeed with no network access:
//!
//! * [`rng`] — a deterministic, seedable xoshiro256++ generator (the
//!   `rand` replacement behind every seeded workload);
//! * [`prop`] — a minimal property-testing harness with input shrinking
//!   and `PPHW_PROP_SEED` replay (the `proptest` replacement);
//! * [`bench`] — a wall-clock micro-benchmark timer (the `criterion`
//!   replacement for `harness = false` bench targets);
//! * [`differential`] — the interpreter ↔ tiling ↔ simulator differential
//!   harness that executes the paper's "tiling preserves semantics" claim
//!   (§4) as a randomized cross-check over seeded size/tile sweeps;
//! * [`chaos`] — a deterministic fault-injecting TCP proxy (seeded
//!   delays, trickle writes, torn bytes, duplicated chunks, mid-stream
//!   disconnects) for hardening the serving stack against hostile
//!   networks.

pub mod bench;
pub mod chaos;
pub mod differential;
pub mod prop;
pub mod rng;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats, Fault, FaultSchedule};
pub use differential::{run_case, run_differential, DiffCase, DiffError, DiffOptions, DiffReport};
pub use prop::Check;
pub use rng::Rng;
