//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, following the
//! reference initialization recommended by the xoshiro authors. It exists so
//! the workspace needs no registry crates: every seeded workload, property
//! test, and differential sweep in the repo draws from this generator, and a
//! printed seed is always enough to reproduce a run bit-for-bit.

use std::ops::Range;

/// One SplitMix64 step — used for seeding and for deriving per-case seeds.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        // All-zero state is the one degenerate seed for xoshiro.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform f32 in `[0, 1)` (24 mantissa bits).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.gen_range(0..xs.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A vector of `n` uniform f32 samples in `[lo, hi)`.
    pub fn f32_vec(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.gen_range(lo..hi)).collect()
    }

    /// A vector of `n` uniform i64 samples in `[lo, hi)`.
    pub fn i64_vec(&mut self, n: usize, lo: i64, hi: i64) -> Vec<i64> {
        (0..n).map(|_| self.gen_range(lo..hi)).collect()
    }

    /// A bounded u64 via the widening-multiply method (bias < 2^-64 per
    /// draw — irrelevant at test scales).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample in `[lo, hi)`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i32, i64, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + rng.next_f32() * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "32-element shuffle left identity (astronomically unlikely)"
        );
    }
}
