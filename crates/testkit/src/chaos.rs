//! A deterministic fault-injecting TCP proxy for chaos testing.
//!
//! [`ChaosProxy`] sits between a client and an upstream daemon and
//! injects network faults into each forwarded chunk: added latency,
//! byte-at-a-time trickle writes, single-byte corruption, duplicated
//! chunks, and mid-stream disconnects. The *fault decision sequence* is a
//! pure function of `(seed, connection ordinal, direction, chunk
//! ordinal)` via [`FaultSchedule`] — same seed, same schedule, so a chaos
//! failure reproduces under the seed that found it. (Chunk *framing*
//! follows kernel read timing, so byte layouts can shift between runs;
//! the decisions per chunk index cannot.)
//!
//! The proxy never drops traffic silently except by the scheduled
//! `Disconnect` fault, and it counts every injected fault in
//! [`ChaosStats`] so a harness can assert the run actually exercised the
//! fault paths it claims to.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::rng::{splitmix64, Rng};

/// Per-chunk fault probabilities and magnitudes. Probabilities are
/// evaluated in the order disconnect → corrupt → duplicate → trickle →
/// delay from a single uniform draw, so they must sum to at most 1.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: the entire fault schedule derives from it.
    pub seed: u64,
    /// Probability a chunk triggers a mid-stream disconnect of the whole
    /// proxied connection.
    pub disconnect_prob: f64,
    /// Probability one byte of the chunk is flipped (torn frame).
    pub corrupt_prob: f64,
    /// Probability the chunk is written twice (duplicated bytes).
    pub duplicate_prob: f64,
    /// Probability the chunk is trickled a few bytes at a time with tiny
    /// pauses (throttled writer).
    pub trickle_prob: f64,
    /// Probability the chunk is forwarded after an added delay.
    pub delay_prob: f64,
    /// Upper bound (exclusive) on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            disconnect_prob: 0.02,
            corrupt_prob: 0.03,
            duplicate_prob: 0.03,
            trickle_prob: 0.05,
            delay_prob: 0.10,
            max_delay_ms: 20,
        }
    }
}

/// Traffic direction through the proxy (each direction has its own
/// schedule stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bytes flowing client → upstream.
    ClientToServer,
    /// Bytes flowing upstream → client.
    ServerToClient,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::ClientToServer => 0x636c_6965_6e74,
            Direction::ServerToClient => 0x7365_7276_6572,
        }
    }
}

/// The fault chosen for one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward unchanged.
    None,
    /// Kill the proxied connection now.
    Disconnect,
    /// Flip one byte at the given chunk offset (modulo chunk length).
    Corrupt {
        /// Byte position to corrupt, reduced modulo the chunk length.
        offset: usize,
    },
    /// Forward the chunk twice.
    Duplicate,
    /// Forward a few bytes at a time with tiny pauses.
    Trickle,
    /// Sleep this long, then forward.
    Delay {
        /// Injected latency in milliseconds.
        ms: u64,
    },
}

/// The deterministic per-(connection, direction) fault stream. Decisions
/// come out in chunk order; two schedules with the same `(seed, conn,
/// direction)` produce identical sequences.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    rng: Rng,
    cfg: ChaosConfig,
}

impl FaultSchedule {
    /// The schedule for connection ordinal `conn` in `direction` under
    /// `cfg.seed`.
    #[must_use]
    pub fn new(cfg: &ChaosConfig, conn: u64, direction: Direction) -> FaultSchedule {
        let stream_seed =
            splitmix64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ direction.tag());
        FaultSchedule {
            rng: Rng::seed_from_u64(stream_seed),
            cfg: cfg.clone(),
        }
    }

    /// The fault for the next chunk.
    pub fn next_fault(&mut self) -> Fault {
        let draw = self.rng.next_f64();
        let c = &self.cfg;
        let mut edge = c.disconnect_prob;
        if draw < edge {
            return Fault::Disconnect;
        }
        edge += c.corrupt_prob;
        if draw < edge {
            let offset = self.rng.next_u64() as usize;
            return Fault::Corrupt { offset };
        }
        edge += c.duplicate_prob;
        if draw < edge {
            return Fault::Duplicate;
        }
        edge += c.trickle_prob;
        if draw < edge {
            return Fault::Trickle;
        }
        edge += c.delay_prob;
        if draw < edge {
            let ms = if c.max_delay_ms == 0 {
                0
            } else {
                self.rng.next_u64() % c.max_delay_ms
            };
            return Fault::Delay { ms };
        }
        Fault::None
    }
}

/// Counters of what the proxy actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted and proxied.
    pub connections: u64,
    /// Chunks forwarded (both directions).
    pub chunks: u64,
    /// Scheduled disconnects executed.
    pub disconnects: u64,
    /// Chunks with a flipped byte.
    pub corruptions: u64,
    /// Chunks forwarded twice.
    pub duplicates: u64,
    /// Chunks trickled.
    pub trickles: u64,
    /// Chunks delayed.
    pub delays: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    chunks: AtomicU64,
    disconnects: AtomicU64,
    corruptions: AtomicU64,
    duplicates: AtomicU64,
    trickles: AtomicU64,
    delays: AtomicU64,
}

/// A running fault-injecting proxy. Connect clients to
/// [`ChaosProxy::addr`]; traffic is forwarded to the upstream address the
/// proxy was spawned with, with faults injected per the seeded schedule.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Returns the bind/local-addr error verbatim.
    pub fn spawn(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        listener.set_nonblocking(true)?;
        let accept_handle = std::thread::spawn(move || {
            let mut conn_ordinal: u64 = 0;
            let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                let client = match listener.accept() {
                    Ok((s, _)) => s,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    Err(_) => break,
                };
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream gone (e.g. killed mid-chaos): drop the
                    // client, which sees a clean connection error.
                    continue;
                };
                accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn = conn_ordinal;
                conn_ordinal += 1;
                let c2s = FaultSchedule::new(&cfg, conn, Direction::ClientToServer);
                let s2c = FaultSchedule::new(&cfg, conn, Direction::ServerToClient);
                let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let cnt = Arc::clone(&accept_counters);
                let st = Arc::clone(&accept_stop);
                pumps.push(std::thread::spawn(move || {
                    pump(&client_r, &server, c2s, &cnt, &st);
                }));
                let cnt = Arc::clone(&accept_counters);
                let st = Arc::clone(&accept_stop);
                pumps.push(std::thread::spawn(move || {
                    pump(&server_r, &client, s2c, &cnt, &st);
                }));
                pumps.retain(|p| !p.is_finished());
            }
            for p in pumps {
                let _ = p.join();
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_handle: Some(accept_handle),
        })
    }

    /// The proxy's listen address (point clients here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the injected-fault counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            chunks: self.counters.chunks.load(Ordering::Relaxed),
            disconnects: self.counters.disconnects.load(Ordering::Relaxed),
            corruptions: self.counters.corruptions.load(Ordering::Relaxed),
            duplicates: self.counters.duplicates.load(Ordering::Relaxed),
            trickles: self.counters.trickles.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the acceptor (live pump threads drain as
    /// their connections close).
    pub fn stop(mut self) -> ChaosStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.stats()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

/// Forwards `from` → `to` one chunk at a time, applying the scheduled
/// fault per chunk, until EOF, error, stop, or a scheduled disconnect.
fn pump(
    from: &TcpStream,
    to: &TcpStream,
    mut schedule: FaultSchedule,
    counters: &Counters,
    stop: &AtomicBool,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut from_reader = from;
    let mut to_writer = to;
    let mut buf = [0u8; 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from_reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        counters.chunks.fetch_add(1, Ordering::Relaxed);
        let chunk = &mut buf[..n];
        match schedule.next_fault() {
            Fault::None => {
                if to_writer.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::Disconnect => {
                counters.disconnects.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Fault::Corrupt { offset } => {
                counters.corruptions.fetch_add(1, Ordering::Relaxed);
                chunk[offset % n] ^= 0x20;
                if to_writer.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::Duplicate => {
                counters.duplicates.fetch_add(1, Ordering::Relaxed);
                if to_writer.write_all(chunk).is_err() || to_writer.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::Trickle => {
                counters.trickles.fetch_add(1, Ordering::Relaxed);
                let mut failed = false;
                for piece in chunk.chunks(7) {
                    if to_writer.write_all(piece).is_err() {
                        failed = true;
                        break;
                    }
                    let _ = to_writer.flush();
                    std::thread::sleep(Duration::from_micros(500));
                }
                if failed {
                    break;
                }
            }
            Fault::Delay { ms } => {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                if to_writer.write_all(chunk).is_err() {
                    break;
                }
            }
        }
    }
    // Tear down both halves so the peer sees EOF promptly (and a
    // scheduled disconnect kills the whole proxied connection, matching
    // a real mid-line network failure).
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn decisions(cfg: &ChaosConfig, conn: u64, dir: Direction, n: usize) -> Vec<Fault> {
        let mut s = FaultSchedule::new(cfg, conn, dir);
        (0..n).map(|_| s.next_fault()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig {
            seed: 42,
            ..ChaosConfig::default()
        };
        assert_eq!(
            decisions(&cfg, 3, Direction::ClientToServer, 256),
            decisions(&cfg, 3, Direction::ClientToServer, 256)
        );
    }

    #[test]
    fn different_seed_conn_or_direction_changes_the_schedule() {
        let base = ChaosConfig {
            seed: 42,
            ..ChaosConfig::default()
        };
        let other_seed = ChaosConfig {
            seed: 43,
            ..ChaosConfig::default()
        };
        let a = decisions(&base, 0, Direction::ClientToServer, 512);
        assert_ne!(a, decisions(&other_seed, 0, Direction::ClientToServer, 512));
        assert_ne!(a, decisions(&base, 1, Direction::ClientToServer, 512));
        assert_ne!(a, decisions(&base, 0, Direction::ServerToClient, 512));
    }

    #[test]
    fn schedule_exercises_every_fault_kind() {
        let cfg = ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        };
        let faults = decisions(&cfg, 0, Direction::ClientToServer, 4096);
        let has = |f: fn(&Fault) -> bool| faults.iter().any(f);
        assert!(has(|f| matches!(f, Fault::Disconnect)));
        assert!(has(|f| matches!(f, Fault::Corrupt { .. })));
        assert!(has(|f| matches!(f, Fault::Duplicate)));
        assert!(has(|f| matches!(f, Fault::Trickle)));
        assert!(has(|f| matches!(f, Fault::Delay { .. })));
        assert!(has(|f| matches!(f, Fault::None)));
    }

    #[test]
    fn inert_config_forwards_faithfully() {
        // A zero-probability config proxies an echo conversation intact.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 256];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let cfg = ChaosConfig {
            seed: 1,
            disconnect_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            trickle_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 0,
        };
        let proxy = ChaosProxy::spawn(upstream_addr, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for round in 0..10u8 {
            let msg = [round; 64];
            c.write_all(&msg).unwrap();
            let mut got = [0u8; 64];
            c.read_exact(&mut got).unwrap();
            assert_eq!(got, msg, "round {round}");
        }
        drop(c);
        let stats = proxy.stop();
        assert_eq!(stats.connections, 1);
        assert!(stats.chunks >= 10);
        assert_eq!(stats.corruptions + stats.disconnects + stats.duplicates, 0);
        echo.join().unwrap();
    }
}
