//! A minimal property-testing harness (closure-driven `proptest`
//! replacement).
//!
//! Each property is a closure from a generated input to `Result<(), String>`;
//! generators are closures over [`Rng`]. The runner draws a fixed number of
//! cases from per-case seeds derived deterministically from a pinned run
//! seed, so CI runs are reproducible; on failure it greedily shrinks the
//! input through a caller-supplied shrinker and panics with the per-case
//! seed, which can be fed back through `PPHW_PROP_SEED` to replay exactly
//! that input.
//!
//! ```
//! use pphw_testkit::prop::Check;
//!
//! Check::new("addition_commutes").cases(64).run(
//!     |rng| (rng.gen_range(-100i64..100), rng.gen_range(-100i64..100)),
//!     |&(a, b)| {
//!         if a + b == b + a { Ok(()) } else { Err(format!("{a} {b}")) }
//!     },
//! );
//! ```

use std::fmt::Debug;

use crate::rng::{splitmix64, Rng};

/// Default run seed — pinned so CI is reproducible run-to-run.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Environment variable overriding the run seed (replay a failure).
pub const SEED_ENV: &str = "PPHW_PROP_SEED";

/// Environment variable overriding the case count.
pub const CASES_ENV: &str = "PPHW_PROP_CASES";

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name}={raw} is not a u64")))
}

/// A named property check with its run configuration.
pub struct Check {
    name: String,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
}

impl Check {
    /// A check with default configuration (overridable via `PPHW_PROP_SEED`
    /// and `PPHW_PROP_CASES`).
    #[must_use]
    pub fn new(name: &str) -> Check {
        Check {
            name: name.to_string(),
            cases: env_u64(CASES_ENV).map_or(DEFAULT_CASES, |v| v as u32),
            seed: env_u64(SEED_ENV).unwrap_or(DEFAULT_SEED),
            max_shrink_steps: 1000,
        }
    }

    /// Sets the case count (unless `PPHW_PROP_CASES` overrides it).
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Check {
        if env_u64(CASES_ENV).is_none() {
            self.cases = cases;
        }
        self
    }

    /// Sets the run seed (unless `PPHW_PROP_SEED` overrides it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Check {
        if env_u64(SEED_ENV).is_none() {
            self.seed = seed;
        }
        self
    }

    /// Runs the property with no shrinking.
    ///
    /// # Panics
    ///
    /// Panics (failing the test) if any case fails.
    pub fn run<T, G, P>(self, gen: G, prop: P)
    where
        T: Debug,
        G: Fn(&mut Rng) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        self.run_shrink(gen, |_| Vec::new(), prop);
    }

    /// Runs the property, shrinking failing inputs through `shrink` (which
    /// returns candidate simplifications of an input; candidates that still
    /// fail are shrunk further, greedily).
    ///
    /// # Panics
    ///
    /// Panics (failing the test) if any case fails, reporting the minimal
    /// failing input and the seed that reproduces it.
    pub fn run_shrink<T, G, S, P>(self, gen: G, shrink: S, prop: P)
    where
        T: Debug,
        G: Fn(&mut Rng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        for case in 0..self.cases {
            // Per-case seed: replayable alone by exporting it as the run
            // seed (the failing input becomes case 0).
            let case_seed = if case == 0 {
                self.seed
            } else {
                splitmix64(self.seed.wrapping_add(u64::from(case)))
            };
            let input = gen(&mut Rng::seed_from_u64(case_seed));
            let Err(first_err) = prop(&input) else {
                continue;
            };

            // Greedy shrink: repeatedly move to the first simplification
            // that still fails.
            let mut minimal = input;
            let mut err = first_err;
            let mut steps = 0u32;
            'outer: while steps < self.max_shrink_steps {
                for candidate in shrink(&minimal) {
                    steps += 1;
                    if let Err(e) = prop(&candidate) {
                        minimal = candidate;
                        err = e;
                        continue 'outer;
                    }
                    if steps >= self.max_shrink_steps {
                        break;
                    }
                }
                break;
            }

            panic!(
                "property `{}` failed at case {case}/{}:\n  {err}\n  \
                 minimal failing input ({steps} shrink steps): {minimal:?}\n  \
                 reproduce with: {SEED_ENV}={case_seed:#x} {CASES_ENV}=1",
                self.name, self.cases
            );
        }
    }
}

/// Shrink candidates for numeric and vector inputs.
pub mod shrink {
    /// Candidates for an integer: pull toward `floor` (binary search style).
    #[must_use]
    pub fn i64_toward(v: i64, floor: i64) -> Vec<i64> {
        let mut out = Vec::new();
        if v != floor {
            out.push(floor);
            let mid = floor + (v - floor) / 2;
            if mid != floor && mid != v {
                out.push(mid);
            }
            if (v - floor).abs() > 1 {
                out.push(v - (v - floor).signum());
            }
        }
        out
    }

    /// Candidates for a vector: halves, then single-element removals (for
    /// short vectors), never below `min_len`.
    #[must_use]
    pub fn vec<T: Clone>(v: &[T], min_len: usize) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if v.len() > min_len {
            let half = (v.len() / 2).max(min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
            if v.len() <= 16 {
                for i in 0..v.len() {
                    if v.len() > min_len {
                        let mut w = v.to_vec();
                        w.remove(i);
                        out.push(w);
                    }
                }
            }
        }
        out
    }
}

/// Asserts a condition inside a property closure, returning `Err` on
/// failure (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property closure, returning `Err` on failure
/// (mirrors `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        Check::new("square_nonneg").cases(50).run(
            |rng| rng.gen_range(-1000i64..1000),
            |&v| {
                prop_assert!(v * v >= 0);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        let caught = std::panic::catch_unwind(|| {
            Check::new("finds_large").cases(200).run_shrink(
                |rng| {
                    (0..rng.gen_range(0usize..50))
                        .map(|_| rng.gen_range(0i64..100))
                        .collect()
                },
                |v: &Vec<i64>| shrink::vec(v, 0),
                |v| {
                    prop_assert!(!v.iter().any(|&x| x >= 50), "contains >= 50: {v:?}");
                    Ok(())
                },
            );
        });
        let msg = *caught
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("finds_large"), "{msg}");
        assert!(msg.contains(SEED_ENV), "{msg}");
        // Shrinking should reduce the witness to a single offending element.
        assert!(msg.contains("minimal failing input"), "{msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = || {
            let mut drawn = Vec::new();
            Check::new("det").cases(10).seed(123).run(
                |rng| rng.gen_range(0i64..1_000_000),
                |&v| {
                    // Record via closure capture; always passes.
                    let _ = v;
                    Ok(())
                },
            );
            // Re-draw the same way the runner does, to compare sequences.
            for case in 0..10u32 {
                let s = if case == 0 {
                    123
                } else {
                    splitmix64(123u64.wrapping_add(u64::from(case)))
                };
                drawn.push(Rng::seed_from_u64(s).gen_range(0i64..1_000_000));
            }
            drawn
        };
        assert_eq!(collect(), collect());
    }
}
