//! # pphw-sim — cycle-approximate design simulation
//!
//! A discrete-event, cycle-approximate simulator for the hardware designs
//! produced by `pphw-hw`. It models the substrate the paper evaluates on —
//! a Max4 Maia board (DDR3 DRAM at 76.8 GB/s, 384-byte bursts) driving an
//! FPGA fabric at ~150 MHz — at the fidelity the paper's speedups depend
//! on:
//!
//! * a shared DRAM channel with finite bandwidth, request latency, and
//!   burst quantization (partial bursts waste bandwidth);
//! * *prefetched* streams (tile loads) that pay the request latency once
//!   and then saturate the channel, versus *synchronous* streams (the
//!   HLS-style baseline) that pay per-burst request turnaround;
//! * pipelined compute units with an initiation interval of one element
//!   per lane per cycle plus fill/drain depth;
//! * sequential controllers that run stages back-to-back, and
//!   metapipeline controllers that overlap stage `i` of iteration `t`
//!   with stage `i-1` of iteration `t+1` through double buffers.
//!
//! Absolute cycle counts are indicative; the reproduction relies on
//! relative performance between baseline, tiled, and metapipelined
//! designs, which these mechanisms capture directly.
//!
//! ## Robustness
//!
//! The simulator is panic-free and hang-free on adversarial input:
//! configurations are validated up front ([`SimConfig::validate`]), a
//! watchdog cycle budget turns runaway designs into
//! [`SimError::BudgetExceeded`], and deterministic DRAM fault injection
//! ([`FaultConfig`], [`simulate_with_faults`]) models latency jitter,
//! bandwidth-degradation windows, and transient burst failures with a
//! bounded retry-with-backoff path — reproducible bit-for-bit from a seed.

pub mod dram;
pub mod engine;
pub mod error;
pub mod fault;
pub mod report;

pub use dram::{Dram, SimConfig};
pub use engine::{simulate, simulate_with_faults};
pub use error::SimError;
pub use fault::{FaultConfig, FaultStats};
pub use report::{SimReport, StageStat};
