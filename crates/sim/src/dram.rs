//! DRAM channel model.

use pphw_hw::design::DramStream;

use crate::error::SimError;
use crate::fault::{FaultConfig, FaultRng, FaultStats};

/// Simulation parameters (defaults match the paper's Max4 Maia board).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Request-to-first-data latency in fabric cycles.
    pub dram_latency: u64,
    /// DRAM burst size in bytes.
    pub burst_bytes: u64,
    /// Word size in bytes.
    pub word_bytes: u64,
    /// Per-burst request turnaround for synchronous (non-prefetched)
    /// streams, in cycles — the cost of not keeping outstanding requests.
    pub sync_gap: u64,
    /// Watchdog budget on simulated cycles: a run whose clock passes this
    /// bound aborts with [`SimError::BudgetExceeded`] instead of hanging
    /// or overflowing the `f64`-to-`u64` cycle conversion. The default is
    /// `2^53`, the largest cycle count `f64` still counts exactly.
    pub cycle_budget: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clock_mhz: 150.0,
            dram_gbps: 76.8,
            dram_latency: 60,
            burst_bytes: 384,
            word_bytes: 4,
            sync_gap: 6,
            cycle_budget: 1 << 53,
        }
    }
}

impl SimConfig {
    /// Channel bandwidth in bytes per fabric cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1e6)
    }

    /// Sets the fabric clock.
    #[must_use]
    pub fn with_clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Sets the peak DRAM bandwidth.
    #[must_use]
    pub fn with_dram_gbps(mut self, gbps: f64) -> Self {
        self.dram_gbps = gbps;
        self
    }

    /// Sets the request-to-first-data latency.
    #[must_use]
    pub fn with_dram_latency(mut self, cycles: u64) -> Self {
        self.dram_latency = cycles;
        self
    }

    /// Sets the DRAM burst size.
    #[must_use]
    pub fn with_burst_bytes(mut self, bytes: u64) -> Self {
        self.burst_bytes = bytes;
        self
    }

    /// Sets the watchdog cycle budget.
    #[must_use]
    pub fn with_cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = cycles;
        self
    }

    /// Rejects out-of-domain parameters before they can produce NaN
    /// timings, divide-by-zero bandwidth, or wrapped cycle counts.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.clock_mhz.is_finite() || self.clock_mhz <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "clock_mhz",
                value: format!("{}", self.clock_mhz),
                reason: "must be finite and > 0",
            });
        }
        if !self.dram_gbps.is_finite() || self.dram_gbps <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "dram_gbps",
                value: format!("{}", self.dram_gbps),
                reason: "must be finite and > 0",
            });
        }
        if self.word_bytes == 0 {
            return Err(SimError::InvalidConfig {
                field: "word_bytes",
                value: "0".into(),
                reason: "must be > 0",
            });
        }
        if self.burst_bytes < self.word_bytes {
            return Err(SimError::InvalidConfig {
                field: "burst_bytes",
                value: format!("{} (word_bytes {})", self.burst_bytes, self.word_bytes),
                reason: "burst must hold at least one word",
            });
        }
        if self.cycle_budget == 0 {
            return Err(SimError::InvalidConfig {
                field: "cycle_budget",
                value: "0".into(),
                reason: "must be > 0",
            });
        }
        if !self.bytes_per_cycle().is_finite() || self.bytes_per_cycle() <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "dram_gbps/clock_mhz",
                value: format!("{}", self.bytes_per_cycle()),
                reason: "bandwidth per cycle must be finite and > 0",
            });
        }
        Ok(())
    }

    /// A stable, canonical identity string for this configuration — every
    /// field, with floats rendered via their bit pattern so two configs
    /// hash equal iff they simulate identically. Used as a cache-key
    /// component by the design-space explorer.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        format!(
            "clk={:016x},bw={:016x},lat={},burst={},word={},gap={},budget={}",
            self.clock_mhz.to_bits(),
            self.dram_gbps.to_bits(),
            self.dram_latency,
            self.burst_bytes,
            self.word_bytes,
            self.sync_gap,
            self.cycle_budget
        )
    }

    /// Named substrate variants worth sweeping in design-space exploration
    /// and differential timing checks: the paper's Max4 Maia board, a
    /// faster-fabric build, and a bandwidth-starved board.
    #[must_use]
    pub fn named_variants() -> Vec<(&'static str, SimConfig)> {
        vec![
            ("max4", SimConfig::default()),
            ("fast-clock", SimConfig::default().with_clock_mhz(200.0)),
            ("low-bw", SimConfig::default().with_dram_gbps(38.4)),
        ]
    }
}

/// The shared DRAM channel.
///
/// Busy time is tracked as a sorted list of occupied intervals; a request
/// is placed into the earliest gap at or after its arrival that fits its
/// transfer. This keeps the model robust to the simulator visiting
/// overlapped metapipeline stages out of timestamp order (a small store
/// simulated "later" must not push an earlier tile load backwards).
#[derive(Debug)]
pub struct Dram<'a> {
    cfg: &'a SimConfig,
    /// Sorted, disjoint busy intervals (recent window only), kept
    /// canonical: no neighboring pair within merging distance.
    busy: Vec<(f64, f64)>,
    /// Requests earlier than this start no earlier than here (intervals
    /// before the window have been pruned).
    floor: f64,
    /// Total bytes moved over the channel (including burst padding).
    pub bytes_moved: f64,
    /// Total useful words requested.
    pub words_requested: u64,
    /// Fault injection, when active. `None` (the fault-free and
    /// inert-config case) takes the identical code path as before faults
    /// existed, so zero-fault runs are bit-identical.
    faults: Option<FaultState>,
}

/// Live fault-injection state: the configuration, the seeded generator
/// drawing every fault decision, and the accumulated counters.
#[derive(Debug)]
struct FaultState {
    cfg: FaultConfig,
    rng: FaultRng,
    stats: FaultStats,
}

impl<'a> Dram<'a> {
    /// Creates a fault-free channel borrowing the caller's configuration
    /// for its whole lifetime (one simulation run), instead of cloning it
    /// per call.
    pub fn new(cfg: &'a SimConfig) -> Self {
        Dram {
            cfg,
            busy: Vec::new(),
            floor: 0.0,
            bytes_moved: 0.0,
            words_requested: 0,
            faults: None,
        }
    }

    /// Creates a channel with fault injection. An inert fault config is
    /// dropped entirely so the run is bit-identical to [`Dram::new`].
    pub fn with_faults(cfg: &'a SimConfig, faults: &FaultConfig) -> Self {
        let mut d = Dram::new(cfg);
        if !faults.is_inert() {
            d.faults = Some(FaultState {
                cfg: faults.clone(),
                rng: FaultRng::seed_from_u64(faults.seed),
                stats: FaultStats::default(),
            });
        }
        d
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SimConfig {
        self.cfg
    }

    /// The fault counters accumulated so far (all zeros when fault
    /// injection is off).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Applies the fault model to one request: possibly stretches the
    /// transfer (degradation window, burst retries with exponential
    /// backoff) and returns extra request latency (jitter). Every decision
    /// comes from the seeded generator in call order, so runs are
    /// reproducible; every penalty is additive, so a faulted run is never
    /// faster than the fault-free one.
    fn apply_faults(&mut self, at: f64, transfer: &mut f64, bytes: f64, jittered: bool) -> f64 {
        let Some(fs) = self.faults.as_mut() else {
            return 0.0;
        };
        if fs.cfg.degrade_window > 0 && fs.cfg.degrade_factor > 1.0 && fs.cfg.degrade_period > 0 {
            let phase = (at.max(0.0) as u64) % fs.cfg.degrade_period;
            if phase < fs.cfg.degrade_window {
                *transfer *= fs.cfg.degrade_factor;
                fs.stats.degraded_requests += 1;
            }
        }
        if fs.cfg.burst_fail_rate > 0.0 {
            let base = *transfer;
            for attempt in 0..fs.cfg.max_retries {
                if !fs.rng.gen_bool(fs.cfg.burst_fail_rate) {
                    break;
                }
                let backoff = fs.cfg.retry_backoff.saturating_mul(1 << attempt.min(31)) as f64;
                *transfer += base + backoff;
                self.bytes_moved += bytes;
                fs.stats.retries += 1;
                fs.stats.retry_cycles += base + backoff;
            }
        }
        if jittered && fs.cfg.latency_jitter_max > 0 {
            let j = fs.rng.uniform_inclusive(fs.cfg.latency_jitter_max);
            fs.stats.jitter_cycles += j;
            j as f64
        } else {
            0.0
        }
    }

    /// Reserves `duration` cycles of channel time starting no earlier than
    /// `at`; returns the reservation start.
    ///
    /// The busy list is kept *canonical* — sorted, disjoint, with no
    /// neighboring pair within merging distance — so a reservation only
    /// ever merges with its immediate predecessor and/or a chain of
    /// successors. That makes the update local (a splice around the
    /// insertion point) instead of a full-list rebuild per request, with
    /// bit-identical results.
    fn reserve(&mut self, at: f64, duration: f64) -> f64 {
        // Find the first gap that fits. Intervals ending at or before `t`
        // cannot matter, and ends are sorted, so binary-search past them.
        let mut t = at.max(self.floor);
        let first = self.busy.partition_point(|&(_, e)| e <= t);
        let mut insert_pos = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate().skip(first) {
            if e <= t {
                continue;
            }
            if s >= t + duration {
                insert_pos = i;
                break;
            }
            // Overlaps the candidate slot: move past this interval.
            t = t.max(e);
        }
        if insert_pos == self.busy.len() {
            insert_pos = self.busy.partition_point(|&(s, _)| s < t);
        }
        // Splice in the reservation, merging neighbors locally.
        let mut new_s = t;
        let mut new_e = t + duration;
        let mut lo = insert_pos;
        if insert_pos > 0 && new_s <= self.busy[insert_pos - 1].1 + 1e-9 {
            lo = insert_pos - 1;
            new_s = self.busy[lo].0;
            new_e = new_e.max(self.busy[lo].1);
        }
        let mut hi = insert_pos;
        while hi < self.busy.len() && self.busy[hi].0 <= new_e + 1e-9 {
            new_e = new_e.max(self.busy[hi].1);
            hi += 1;
        }
        if lo == hi {
            self.busy.insert(lo, (new_s, new_e));
        } else {
            self.busy[lo] = (new_s, new_e);
            if hi > lo + 1 {
                self.busy.drain(lo + 1..hi);
            }
        }
        // Bound the window: the simulator's out-of-order issue distance is
        // one metapipeline iteration, so distant history can be pruned.
        const MAX_INTERVALS: usize = 512;
        if self.busy.len() > MAX_INTERVALS {
            let cut = self.busy.len() - MAX_INTERVALS;
            self.floor = self.floor.max(self.busy[cut - 1].1);
            self.busy.drain(..cut);
        }
        t
    }

    /// Issues a stream at time `at` (cycles); returns its completion time.
    ///
    /// Transfer time is burst-quantized: each contiguous run moves
    /// `ceil(run_bytes / burst) * burst` bytes over the channel. Prefetched
    /// streams pay the request latency once; synchronous streams pay a
    /// per-burst turnaround gap, modeling a design that only issues the
    /// next request after consuming the previous burst.
    pub fn request(&mut self, at: f64, stream: &DramStream) -> f64 {
        if stream.words == 0 {
            return at;
        }
        let run = stream.run_words.max(1);
        let runs = stream.words.div_ceil(run);
        let run_bytes = run * self.cfg.word_bytes;
        let bursts_per_run = run_bytes.div_ceil(self.cfg.burst_bytes);
        let total_bursts = runs * bursts_per_run;
        let bytes = (total_bursts * self.cfg.burst_bytes) as f64;
        let mut transfer = bytes / self.cfg.bytes_per_cycle();

        self.words_requested += stream.words;
        self.bytes_moved += bytes;

        // Jitter only applies where request latency is paid (reads).
        let jitter = self.apply_faults(at, &mut transfer, bytes, !stream.write);
        let start = self.reserve(at, transfer);

        if stream.write {
            // Posted writes: done when the channel has accepted the data.
            start + transfer
        } else if stream.prefetch {
            start + self.cfg.dram_latency as f64 + jitter + transfer
        } else {
            // Synchronous: latency once, plus a turnaround gap per
            // non-contiguous run (within a run, bursts stream naturally).
            start
                + self.cfg.dram_latency as f64
                + jitter
                + transfer
                + (runs.saturating_sub(1) * self.cfg.sync_gap) as f64
        }
    }

    /// Issues a synchronous stream whose request latency has already been
    /// charged by the caller (one latency per pattern instance, however
    /// many operand streams it reads): transfer plus per-run turnaround.
    /// `efficiency` derates the achieved bandwidth (interleaving several
    /// synchronous streams without outstanding requests halves it).
    pub fn request_sync_body(&mut self, at: f64, stream: &DramStream, efficiency: f64) -> f64 {
        if stream.words == 0 {
            return at;
        }
        let run = stream.run_words.max(1);
        let runs = stream.words.div_ceil(run);
        let run_bytes = run * self.cfg.word_bytes;
        let bursts_per_run = run_bytes.div_ceil(self.cfg.burst_bytes);
        let total_bursts = runs * bursts_per_run;
        let bytes = (total_bursts * self.cfg.burst_bytes) as f64;
        let mut transfer = bytes / self.cfg.bytes_per_cycle() / efficiency.clamp(0.1, 1.0);
        self.words_requested += stream.words;
        self.bytes_moved += bytes;
        // The caller charged the request latency, so jitter lands on the
        // completion time here.
        let jitter = self.apply_faults(at, &mut transfer, bytes, true);
        let start = self.reserve(at, transfer);
        start + jitter + transfer + (runs.saturating_sub(1) * self.cfg.sync_gap) as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn stream(words: u64, run: u64, prefetch: bool, write: bool) -> DramStream {
        DramStream {
            words,
            run_words: run,
            prefetch,
            write,
        }
    }

    #[test]
    fn prefetched_stream_pays_latency_once() {
        let cfg = SimConfig::default();
        let bpc = cfg.bytes_per_cycle();
        let mut d = Dram::new(&cfg);
        let t = d.request(0.0, &stream(9600, 9600, true, false)); // 100 bursts
        let expected = cfg.dram_latency as f64 + (100.0 * 384.0) / bpc;
        assert!((t - expected).abs() < 1e-6, "{t} vs {expected}");
    }

    #[test]
    fn sync_stream_pays_gap_per_run() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(&cfg);
        // 100 runs of 96 words: 99 turnaround gaps.
        let t_sync = d.request(0.0, &stream(9600, 96, false, false));
        let mut d2 = Dram::new(&cfg);
        let t_pre = d2.request(0.0, &stream(9600, 96, true, false));
        assert!(
            t_sync > t_pre + (99 * cfg.sync_gap - 1) as f64,
            "sync {t_sync} vs prefetch {t_pre}"
        );
        // A single contiguous run pays no gaps.
        let mut d3 = Dram::new(&cfg);
        let t_one = d3.request(0.0, &stream(9600, 9600, false, false));
        let mut d4 = Dram::new(&cfg);
        let t_one_pre = d4.request(0.0, &stream(9600, 9600, true, false));
        assert!((t_one - t_one_pre).abs() < 1e-6);
    }

    #[test]
    fn short_runs_waste_bandwidth() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(&cfg);
        // 96 words in runs of 1: each word costs a full burst.
        d.request(0.0, &stream(96, 1, true, false));
        assert!((d.bytes_moved - 96.0 * 384.0).abs() < 1e-6);
        let mut d2 = Dram::new(&cfg);
        // 96 words contiguous: one burst.
        d2.request(0.0, &stream(96, 96, true, false));
        assert!((d2.bytes_moved - 384.0).abs() < 1e-6);
    }

    #[test]
    fn channel_serializes_requests() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(&cfg);
        let t1 = d.request(0.0, &stream(96_000, 96_000, true, false));
        let t2 = d.request(0.0, &stream(96_000, 96_000, true, false));
        assert!(t2 > t1, "second request must queue behind the first");
    }

    #[test]
    fn writes_skip_latency() {
        let cfg = SimConfig::default();
        let bpc = cfg.bytes_per_cycle();
        let mut d = Dram::new(&cfg);
        let t = d.request(0.0, &stream(96, 96, true, true));
        assert!((t - 384.0 / bpc).abs() < 1e-6);
    }

    #[test]
    fn canonical_key_distinguishes_configs() {
        let a = SimConfig::default();
        let b = SimConfig::default().with_clock_mhz(200.0);
        let c = SimConfig::default().with_dram_gbps(38.4);
        assert_eq!(a.canonical_key(), SimConfig::default().canonical_key());
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        assert_ne!(b.canonical_key(), c.canonical_key());
    }

    #[test]
    fn named_variants_have_unique_keys() {
        let vars = SimConfig::named_variants();
        assert!(vars.len() >= 3);
        for (i, (_, a)) in vars.iter().enumerate() {
            for (_, b) in vars.iter().skip(i + 1) {
                assert_ne!(a.canonical_key(), b.canonical_key());
            }
        }
    }

    #[test]
    fn empty_stream_is_free() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(&cfg);
        assert_eq!(d.request(5.0, &stream(0, 1, true, false)), 5.0);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(SimConfig::default().validate().is_ok());
        for (cfg, field) in [
            (SimConfig::default().with_clock_mhz(0.0), "clock_mhz"),
            (SimConfig::default().with_clock_mhz(-5.0), "clock_mhz"),
            (SimConfig::default().with_clock_mhz(f64::NAN), "clock_mhz"),
            (SimConfig::default().with_dram_gbps(0.0), "dram_gbps"),
            (
                SimConfig::default().with_dram_gbps(f64::INFINITY),
                "dram_gbps",
            ),
            (
                SimConfig {
                    word_bytes: 0,
                    ..SimConfig::default()
                },
                "word_bytes",
            ),
            (SimConfig::default().with_burst_bytes(2), "burst_bytes"),
            (SimConfig::default().with_cycle_budget(0), "cycle_budget"),
        ] {
            match cfg.validate() {
                Err(SimError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn inert_faults_take_the_fault_free_path() {
        let cfg = SimConfig::default();
        let mut plain = Dram::new(&cfg);
        let mut inert = Dram::with_faults(&cfg, &FaultConfig::none().with_seed(1234));
        for at in [0.0, 100.0, 5000.0] {
            let a = plain.request(at, &stream(9600, 96, true, false));
            let b = inert.request(at, &stream(9600, 96, true, false));
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(plain.bytes_moved.to_bits(), inert.bytes_moved.to_bits());
        assert_eq!(inert.fault_stats(), FaultStats::default());
    }

    #[test]
    fn burst_failures_retransmit_bytes_and_never_speed_up() {
        let cfg = SimConfig::default();
        let faults = FaultConfig::none()
            .with_seed(7)
            .with_burst_fail_rate(0.8)
            .with_retry(4, 16);
        let mut plain = Dram::new(&cfg);
        let mut faulty = Dram::with_faults(&cfg, &faults);
        let mut any_retry = false;
        for i in 0..32 {
            let at = i as f64 * 10.0;
            let a = plain.request(at, &stream(960, 960, true, false));
            let b = faulty.request(at, &stream(960, 960, true, false));
            assert!(b >= a, "faulted completion {b} earlier than clean {a}");
            any_retry |= faulty.fault_stats().retries > 0;
        }
        assert!(any_retry, "rate 0.8 over 32 requests must retry");
        assert!(faulty.bytes_moved > plain.bytes_moved);
        assert!(faulty.fault_stats().retry_cycles > 0.0);
    }

    #[test]
    fn degradation_window_slows_only_in_window_arrivals() {
        let cfg = SimConfig::default();
        // Window covers the full period: every request degraded.
        let always = FaultConfig::none().with_degradation(1000, 1000, 2.0);
        let mut d = Dram::with_faults(&cfg, &always);
        let t = d.request(0.0, &stream(9600, 9600, true, false));
        let mut clean = Dram::new(&cfg);
        let t0 = clean.request(0.0, &stream(9600, 9600, true, false));
        let transfer = t0 - SimConfig::default().dram_latency as f64;
        assert!((t - (t0 + transfer)).abs() < 1e-6, "{t} vs 2x transfer");
        assert_eq!(d.fault_stats().degraded_requests, 1);
    }

    #[test]
    fn same_seed_reproduces_fault_decisions() {
        let cfg = SimConfig::default();
        let faults = FaultConfig::none()
            .with_seed(99)
            .with_latency_jitter(32)
            .with_burst_fail_rate(0.3);
        let run = || {
            let mut d = Dram::with_faults(&cfg, &faults);
            let ends: Vec<u64> = (0..64)
                .map(|i| {
                    d.request(i as f64 * 7.0, &stream(960, 96, true, false))
                        .to_bits()
                })
                .collect();
            (ends, d.fault_stats())
        };
        let (e1, s1) = run();
        let (e2, s2) = run();
        assert_eq!(e1, e2);
        assert_eq!(s1, s2);
        assert!(s1.jitter_cycles > 0);
    }
}
