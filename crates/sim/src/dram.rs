//! DRAM channel model.

use pphw_hw::design::DramStream;

/// Simulation parameters (defaults match the paper's Max4 Maia board).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Fabric clock in MHz.
    pub clock_mhz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Request-to-first-data latency in fabric cycles.
    pub dram_latency: u64,
    /// DRAM burst size in bytes.
    pub burst_bytes: u64,
    /// Word size in bytes.
    pub word_bytes: u64,
    /// Per-burst request turnaround for synchronous (non-prefetched)
    /// streams, in cycles — the cost of not keeping outstanding requests.
    pub sync_gap: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clock_mhz: 150.0,
            dram_gbps: 76.8,
            dram_latency: 60,
            burst_bytes: 384,
            word_bytes: 4,
            sync_gap: 6,
        }
    }
}

impl SimConfig {
    /// Channel bandwidth in bytes per fabric cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram_gbps * 1e9 / (self.clock_mhz * 1e6)
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1e6)
    }

    /// Sets the fabric clock.
    #[must_use]
    pub fn with_clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Sets the peak DRAM bandwidth.
    #[must_use]
    pub fn with_dram_gbps(mut self, gbps: f64) -> Self {
        self.dram_gbps = gbps;
        self
    }

    /// Sets the request-to-first-data latency.
    #[must_use]
    pub fn with_dram_latency(mut self, cycles: u64) -> Self {
        self.dram_latency = cycles;
        self
    }

    /// Sets the DRAM burst size.
    #[must_use]
    pub fn with_burst_bytes(mut self, bytes: u64) -> Self {
        self.burst_bytes = bytes;
        self
    }

    /// A stable, canonical identity string for this configuration — every
    /// field, with floats rendered via their bit pattern so two configs
    /// hash equal iff they simulate identically. Used as a cache-key
    /// component by the design-space explorer.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        format!(
            "clk={:016x},bw={:016x},lat={},burst={},word={},gap={}",
            self.clock_mhz.to_bits(),
            self.dram_gbps.to_bits(),
            self.dram_latency,
            self.burst_bytes,
            self.word_bytes,
            self.sync_gap
        )
    }

    /// Named substrate variants worth sweeping in design-space exploration
    /// and differential timing checks: the paper's Max4 Maia board, a
    /// faster-fabric build, and a bandwidth-starved board.
    #[must_use]
    pub fn named_variants() -> Vec<(&'static str, SimConfig)> {
        vec![
            ("max4", SimConfig::default()),
            ("fast-clock", SimConfig::default().with_clock_mhz(200.0)),
            ("low-bw", SimConfig::default().with_dram_gbps(38.4)),
        ]
    }
}

/// The shared DRAM channel.
///
/// Busy time is tracked as a sorted list of occupied intervals; a request
/// is placed into the earliest gap at or after its arrival that fits its
/// transfer. This keeps the model robust to the simulator visiting
/// overlapped metapipeline stages out of timestamp order (a small store
/// simulated "later" must not push an earlier tile load backwards).
#[derive(Debug)]
pub struct Dram {
    cfg: SimConfig,
    /// Sorted, disjoint busy intervals (recent window only).
    busy: Vec<(f64, f64)>,
    /// Requests earlier than this start no earlier than here (intervals
    /// before the window have been pruned).
    floor: f64,
    /// Total bytes moved over the channel (including burst padding).
    pub bytes_moved: f64,
    /// Total useful words requested.
    pub words_requested: u64,
}

impl Dram {
    /// Creates a channel.
    pub fn new(cfg: SimConfig) -> Self {
        Dram {
            cfg,
            busy: Vec::new(),
            floor: 0.0,
            bytes_moved: 0.0,
            words_requested: 0,
        }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Reserves `duration` cycles of channel time starting no earlier than
    /// `at`; returns the reservation start.
    fn reserve(&mut self, at: f64, duration: f64) -> f64 {
        // Find the first gap that fits.
        let mut t = at.max(self.floor);
        let mut insert_pos = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if e <= t {
                continue;
            }
            if s >= t + duration {
                insert_pos = i;
                break;
            }
            // Overlaps the candidate slot: move past this interval.
            t = t.max(e);
        }
        if insert_pos == self.busy.len() {
            insert_pos = self.busy.partition_point(|&(s, _)| s < t);
        }
        self.busy.insert(insert_pos, (t, t + duration));
        // Merge neighbors to keep the list compact.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(self.busy.len());
        for &(s, e) in self.busy.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 + 1e-9 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        // Bound the window: the simulator's out-of-order issue distance is
        // one metapipeline iteration, so distant history can be pruned.
        const MAX_INTERVALS: usize = 512;
        if merged.len() > MAX_INTERVALS {
            let cut = merged.len() - MAX_INTERVALS;
            self.floor = self.floor.max(merged[cut - 1].1);
            merged.drain(..cut);
        }
        self.busy = merged;
        t
    }

    /// Issues a stream at time `at` (cycles); returns its completion time.
    ///
    /// Transfer time is burst-quantized: each contiguous run moves
    /// `ceil(run_bytes / burst) * burst` bytes over the channel. Prefetched
    /// streams pay the request latency once; synchronous streams pay a
    /// per-burst turnaround gap, modeling a design that only issues the
    /// next request after consuming the previous burst.
    pub fn request(&mut self, at: f64, stream: &DramStream) -> f64 {
        if stream.words == 0 {
            return at;
        }
        let run = stream.run_words.max(1);
        let runs = stream.words.div_ceil(run);
        let run_bytes = run * self.cfg.word_bytes;
        let bursts_per_run = run_bytes.div_ceil(self.cfg.burst_bytes);
        let total_bursts = runs * bursts_per_run;
        let bytes = (total_bursts * self.cfg.burst_bytes) as f64;
        let transfer = bytes / self.cfg.bytes_per_cycle();

        self.words_requested += stream.words;
        self.bytes_moved += bytes;

        let start = self.reserve(at, transfer);

        if stream.write {
            // Posted writes: done when the channel has accepted the data.
            start + transfer
        } else if stream.prefetch {
            start + self.cfg.dram_latency as f64 + transfer
        } else {
            // Synchronous: latency once, plus a turnaround gap per
            // non-contiguous run (within a run, bursts stream naturally).
            start
                + self.cfg.dram_latency as f64
                + transfer
                + (runs.saturating_sub(1) * self.cfg.sync_gap) as f64
        }
    }

    /// Issues a synchronous stream whose request latency has already been
    /// charged by the caller (one latency per pattern instance, however
    /// many operand streams it reads): transfer plus per-run turnaround.
    /// `efficiency` derates the achieved bandwidth (interleaving several
    /// synchronous streams without outstanding requests halves it).
    pub fn request_sync_body(&mut self, at: f64, stream: &DramStream, efficiency: f64) -> f64 {
        if stream.words == 0 {
            return at;
        }
        let run = stream.run_words.max(1);
        let runs = stream.words.div_ceil(run);
        let run_bytes = run * self.cfg.word_bytes;
        let bursts_per_run = run_bytes.div_ceil(self.cfg.burst_bytes);
        let total_bursts = runs * bursts_per_run;
        let bytes = (total_bursts * self.cfg.burst_bytes) as f64;
        let transfer = bytes / self.cfg.bytes_per_cycle() / efficiency.clamp(0.1, 1.0);
        self.words_requested += stream.words;
        self.bytes_moved += bytes;
        let start = self.reserve(at, transfer);
        start + transfer + (runs.saturating_sub(1) * self.cfg.sync_gap) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(words: u64, run: u64, prefetch: bool, write: bool) -> DramStream {
        DramStream {
            words,
            run_words: run,
            prefetch,
            write,
        }
    }

    #[test]
    fn prefetched_stream_pays_latency_once() {
        let cfg = SimConfig::default();
        let bpc = cfg.bytes_per_cycle();
        let mut d = Dram::new(cfg.clone());
        let t = d.request(0.0, &stream(9600, 9600, true, false)); // 100 bursts
        let expected = cfg.dram_latency as f64 + (100.0 * 384.0) / bpc;
        assert!((t - expected).abs() < 1e-6, "{t} vs {expected}");
    }

    #[test]
    fn sync_stream_pays_gap_per_run() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(cfg.clone());
        // 100 runs of 96 words: 99 turnaround gaps.
        let t_sync = d.request(0.0, &stream(9600, 96, false, false));
        let mut d2 = Dram::new(cfg.clone());
        let t_pre = d2.request(0.0, &stream(9600, 96, true, false));
        assert!(
            t_sync > t_pre + (99 * cfg.sync_gap - 1) as f64,
            "sync {t_sync} vs prefetch {t_pre}"
        );
        // A single contiguous run pays no gaps.
        let mut d3 = Dram::new(cfg.clone());
        let t_one = d3.request(0.0, &stream(9600, 9600, false, false));
        let mut d4 = Dram::new(cfg);
        let t_one_pre = d4.request(0.0, &stream(9600, 9600, true, false));
        assert!((t_one - t_one_pre).abs() < 1e-6);
    }

    #[test]
    fn short_runs_waste_bandwidth() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(cfg.clone());
        // 96 words in runs of 1: each word costs a full burst.
        d.request(0.0, &stream(96, 1, true, false));
        assert!((d.bytes_moved - 96.0 * 384.0).abs() < 1e-6);
        let mut d2 = Dram::new(cfg);
        // 96 words contiguous: one burst.
        d2.request(0.0, &stream(96, 96, true, false));
        assert!((d2.bytes_moved - 384.0).abs() < 1e-6);
    }

    #[test]
    fn channel_serializes_requests() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(cfg);
        let t1 = d.request(0.0, &stream(96_000, 96_000, true, false));
        let t2 = d.request(0.0, &stream(96_000, 96_000, true, false));
        assert!(t2 > t1, "second request must queue behind the first");
    }

    #[test]
    fn writes_skip_latency() {
        let cfg = SimConfig::default();
        let bpc = cfg.bytes_per_cycle();
        let mut d = Dram::new(cfg);
        let t = d.request(0.0, &stream(96, 96, true, true));
        assert!((t - 384.0 / bpc).abs() < 1e-6);
    }

    #[test]
    fn canonical_key_distinguishes_configs() {
        let a = SimConfig::default();
        let b = SimConfig::default().with_clock_mhz(200.0);
        let c = SimConfig::default().with_dram_gbps(38.4);
        assert_eq!(a.canonical_key(), SimConfig::default().canonical_key());
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        assert_ne!(b.canonical_key(), c.canonical_key());
    }

    #[test]
    fn named_variants_have_unique_keys() {
        let vars = SimConfig::named_variants();
        assert!(vars.len() >= 3);
        for (i, (_, a)) in vars.iter().enumerate() {
            for (_, b) in vars.iter().skip(i + 1) {
                assert_ne!(a.canonical_key(), b.canonical_key());
            }
        }
    }

    #[test]
    fn empty_stream_is_free() {
        let cfg = SimConfig::default();
        let mut d = Dram::new(cfg);
        assert_eq!(d.request(5.0, &stream(0, 1, true, false)), 5.0);
    }
}
