//! The simulation engine: controller scheduling over the shared DRAM
//! channel.
//!
//! Before the event loop runs, the design tree is *lowered* once: stage
//! names are interned into dense ids ([`StageInterner`]), per-unit `f64`
//! timing constants (pipeline depth, compute cycles, the DRAM request
//! latency) are precomputed, and metapipeline controllers get reusable
//! scratch vectors. The loop itself then touches no `String`s, performs
//! no map lookups, and allocates nothing — statistics accumulate into a
//! flat `Vec<StageStat>` indexed by stage id and are sorted by name only
//! when the report is built, reproducing the retired
//! `BTreeMap<String, StageStat>` accumulation bit for bit.

use pphw_hw::channel::{channels, metapipeline_channels};
use pphw_hw::design::{Buffer, CtrlKind, Design, DramStream, Node, StageInterner, Unit, UnitKind};

use crate::dram::{Dram, SimConfig};
use crate::error::SimError;
use crate::fault::FaultConfig;
use crate::report::{SimReport, StageStat};

/// Simulates a design, returning timing and traffic statistics.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for an out-of-domain configuration,
/// [`SimError::BudgetExceeded`] when the run outlives the watchdog cycle
/// budget (or the internal event cap), [`SimError::NonFinite`] if a timing
/// quantity degenerates.
pub fn simulate(design: &Design, cfg: &SimConfig) -> Result<SimReport, SimError> {
    simulate_with_faults(design, cfg, &FaultConfig::none())
}

/// Simulates a design under deterministic DRAM fault injection.
///
/// Same seed ⇒ identical report; an inert `faults` (see
/// [`FaultConfig::is_inert`]) reproduces [`simulate`] bit-for-bit; fault
/// penalties are additive, so a faulted run never finishes earlier than
/// the fault-free run of the same design.
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::InvalidFaultConfig`] for an
/// out-of-domain fault configuration.
pub fn simulate_with_faults(
    design: &Design,
    cfg: &SimConfig,
    faults: &FaultConfig,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    faults.validate()?;
    // A channel that cannot hold one producer token can never make
    // progress: fail up front with a structured error (the static flow
    // analyzer flags the same condition as PPHW041) instead of letting
    // the event loop spin against the watchdog.
    for ch in channels(design) {
        if ch.slots() == 0 {
            return Err(SimError::ChannelDeadlock {
                channel: format!("{}/{}", ch.ctrl, ch.buf_name),
            });
        }
    }
    let mut interner = StageInterner::new();
    let mut root = lower_node(&design.root, &design.buffers, &mut interner);
    let stats = interner
        .names()
        .map(|name| StageStat {
            name: name.to_string(),
            invocations: 0,
            busy_cycles: 0.0,
            dram_words: 0,
        })
        .collect();
    let mut cx = SimCx {
        dram: Dram::with_faults(cfg, faults),
        stats,
        wd: Watchdog::new(cfg.cycle_budget),
        trace: std::env::var("PPHW_TRACE").is_ok(),
        latency: cfg.dram_latency as f64,
    };
    let Timing { end, .. } = sim_node(&mut root, 0.0, &mut cx)?;
    let cycles = checked_cycles(end, cfg.cycle_budget)?;
    let mut stages = cx.stats;
    stages.retain(|s| s.invocations > 0);
    stages.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(SimReport {
        design: design.name.clone(),
        style: design.style,
        cycles,
        seconds: cfg.cycles_to_seconds(end),
        dram_bytes: checked_u64(cx.dram.bytes_moved, "DRAM byte count")?,
        dram_words: cx.dram.words_requested,
        faults: cx.dram.fault_stats(),
        stages,
    })
}

/// Converts the final simulated time to a cycle count, rejecting
/// non-finite or over-budget values instead of wrapping in the cast.
fn checked_cycles(end: f64, budget: u64) -> Result<u64, SimError> {
    if !end.is_finite() || end < 0.0 {
        return Err(SimError::NonFinite {
            what: "cycle count",
        });
    }
    let c = end.ceil();
    if c > budget as f64 {
        return Err(SimError::BudgetExceeded {
            what: "cycle budget",
            budget,
        });
    }
    Ok(c as u64)
}

/// Guards an accumulated `f64` quantity before casting to `u64`.
fn checked_u64(v: f64, what: &'static str) -> Result<u64, SimError> {
    if !v.is_finite() || v < 0.0 || v >= u64::MAX as f64 {
        return Err(SimError::NonFinite { what });
    }
    Ok(v as u64)
}

/// Runaway protection: a configurable bound on simulated time plus a fixed
/// cap on engine events, so designs that loop without advancing the clock
/// (e.g. adversarial controllers with empty stage lists and huge trip
/// counts) still terminate with a structured error.
struct Watchdog {
    budget: f64,
    budget_cycles: u64,
    events: u64,
}

/// Engine-event cap. Legitimate benchmark runs are well under a million
/// events; this bounds adversarial configurations without slowing them.
const MAX_EVENTS: u64 = 20_000_000;

impl Watchdog {
    fn new(cycle_budget: u64) -> Watchdog {
        Watchdog {
            budget: cycle_budget as f64,
            budget_cycles: cycle_budget,
            events: 0,
        }
    }

    fn tick(&mut self, now: f64) -> Result<(), SimError> {
        self.events += 1;
        if self.events > MAX_EVENTS {
            return Err(SimError::BudgetExceeded {
                what: "event watchdog",
                budget: MAX_EVENTS,
            });
        }
        if now.is_nan() {
            return Err(SimError::NonFinite { what: "timestamp" });
        }
        if now > self.budget {
            return Err(SimError::BudgetExceeded {
                what: "cycle budget",
                budget: self.budget_cycles,
            });
        }
        Ok(())
    }
}

/// The two times a stage invocation produces: when its *data* is complete
/// (`end`) and when the unit itself is free to accept the next iteration
/// (`gate`). Pipelined units have `gate < end`: successive metapipeline
/// iterations enter at the occupancy interval while fill latency overlaps.
#[derive(Debug, Clone, Copy)]
struct Timing {
    end: f64,
    gate: f64,
}

/// Per-run simulation state threaded through the recursion: the DRAM
/// channel (borrowing the run's `SimConfig`), the id-indexed statistics,
/// the watchdog, and constants hoisted out of the event loop.
struct SimCx<'a> {
    dram: Dram<'a>,
    stats: Vec<StageStat>,
    wd: Watchdog,
    /// `PPHW_TRACE` presence, read once per run instead of per controller
    /// invocation.
    trace: bool,
    /// `cfg.dram_latency as f64`, hoisted.
    latency: f64,
}

/// A leaf unit with its per-invocation constants precomputed: everything
/// `sim_unit` needs that does not change between invocations.
struct LUnit<'d> {
    /// Dense stage id (index into [`SimCx::stats`]).
    id: u32,
    /// DRAM streams issued per invocation.
    streams: &'d [DramStream],
    /// `depth as f64`.
    depth: f64,
    /// Compute cycles per invocation: `ceil(elems / lanes)` (0 for
    /// tile-memory units).
    compute: f64,
    /// Whether any read stream is synchronous (the HLS-baseline shape).
    has_sync_reads: bool,
    /// Bandwidth derate when several synchronous streams interleave.
    efficiency: f64,
    /// Total words across all streams (per-invocation traffic counter).
    stream_words: u64,
    /// Tile-store leaf (posted hand-off in sequential controllers).
    is_store: bool,
}

/// A single-slot metapipeline channel: the producer stage cannot start
/// writing token *t* until the consumer has drained token *t−1* (there
/// is no second buffer half to write into). `cons_end_prev` rings the
/// consumer's previous-iteration completion forward to the producer.
/// Channels with two or more slots impose nothing beyond the existing
/// double-buffer gate, so only single-slot forward channels are lowered.
struct LChannel {
    producer: usize,
    consumer: usize,
    cons_end_prev: f64,
}

/// A lowered controller. Metapipelines carry their wavefront scratch
/// vectors here so repeated invocations (a metapipeline nested under an
/// iterating parent) reuse the same backing storage.
struct LCtrl<'d> {
    kind: CtrlKind,
    name: &'d str,
    iters: u64,
    stages: Vec<LNode<'d>>,
    gate_scratch: Vec<f64>,
    end_scratch: Vec<f64>,
    channels: Vec<LChannel>,
}

/// A lowered design-tree node.
enum LNode<'d> {
    Unit(LUnit<'d>),
    Ctrl(LCtrl<'d>),
}

fn lower_unit<'d>(u: &'d Unit, interner: &mut StageInterner) -> LUnit<'d> {
    let lanes = u.kind.lanes().max(1) as u64;
    let is_mem = matches!(
        u.kind,
        UnitKind::TileLoad { .. } | UnitKind::TileStore { .. }
    );
    let compute = if is_mem {
        0.0
    } else {
        (u.elems.div_ceil(lanes)) as f64
    };
    let sync_reads = u.streams.iter().filter(|s| !s.write).count();
    LUnit {
        id: interner.intern(&u.name),
        streams: &u.streams,
        depth: u.depth as f64,
        compute,
        has_sync_reads: u.streams.iter().any(|s| !s.write && !s.prefetch),
        efficiency: if sync_reads > 1 { 0.5 } else { 1.0 },
        stream_words: u.streams.iter().map(|s| s.words).sum(),
        is_store: matches!(u.kind, UnitKind::TileStore { .. }),
    }
}

fn lower_node<'d>(node: &'d Node, buffers: &[Buffer], interner: &mut StageInterner) -> LNode<'d> {
    match node {
        Node::Unit(u) => LNode::Unit(lower_unit(u, interner)),
        Node::Ctrl(c) => {
            let stages: Vec<LNode<'d>> = c
                .stages
                .iter()
                .map(|s| lower_node(s, buffers, interner))
                .collect();
            let n = if c.kind == CtrlKind::Metapipeline {
                stages.len()
            } else {
                0
            };
            // Forward channels squeezed down to a single token slot
            // serialize their endpoints; backward (loop-carried) channels
            // are already serialized by the wavefront itself.
            let channels = metapipeline_channels(c, buffers)
                .into_iter()
                .filter(|ch| ch.slots() == 1 && !ch.is_backward())
                .map(|ch| LChannel {
                    producer: ch.producer,
                    consumer: ch.consumer,
                    cons_end_prev: 0.0,
                })
                .collect();
            LNode::Ctrl(LCtrl {
                kind: c.kind,
                name: &c.name,
                iters: c.iters,
                stages,
                gate_scratch: vec![0.0; n],
                end_scratch: vec![0.0; n],
                channels,
            })
        }
    }
}

fn sim_node(node: &mut LNode, start: f64, cx: &mut SimCx) -> Result<Timing, SimError> {
    match node {
        LNode::Unit(u) => sim_unit(u, start, cx),
        LNode::Ctrl(c) => sim_ctrl(c, start, cx),
    }
}

/// One invocation of a leaf unit.
///
/// * Tile loads/stores: prefetched streams — latency once, channel-rate
///   transfer; the unit is busy for the transfer only.
/// * Compute units reading on-chip buffers: pipelined — `depth` fill plus
///   one element per lane per cycle.
/// * Compute units with synchronous DRAM read streams (the HLS-style
///   baseline): memory and compute are *serialized* — the design fetches
///   its operand set, then computes, with no prefetch overlap. This is the
///   behavior tiling + metapipelining removes (§4, §6.2).
fn sim_unit(u: &LUnit, start: f64, cx: &mut SimCx) -> Result<Timing, SimError> {
    let timing = if u.has_sync_reads {
        // Baseline-style leaf: one request round-trip per invocation, then
        // the operand streams transfer back-to-back. Within the instance
        // the pipeline consumes data as it arrives (the "pipelined
        // parallelism within patterns" every design shares), so compute
        // overlaps the streams; but nothing overlaps across instances.
        let issue = start + cx.latency;
        let mut mem_end = issue;
        for s in u.streams.iter().filter(|s| !s.write) {
            mem_end = cx.dram.request_sync_body(mem_end, s, u.efficiency);
        }
        let mut end = mem_end.max(issue + u.depth + u.compute);
        for s in u.streams.iter().filter(|s| s.write) {
            let done = cx.dram.request(issue, s);
            end = end.max(done);
        }
        Timing { end, gate: end }
    } else {
        // Pipelined unit: reads gate data-readiness; occupancy is the
        // larger of compute and channel transfer.
        let mut end = start + u.depth + u.compute;
        let mut gate = start + u.compute.max(1.0);
        for s in u.streams {
            let done = cx.dram.request(start, s);
            if s.write {
                end = end.max(done);
                gate = gate.max(done - start + start);
            } else {
                end = end.max(done);
                // The unit is occupied for the transfer (latency overlaps
                // with the next iteration's request).
                gate = gate.max(done - cx.latency);
            }
        }
        Timing {
            end,
            gate: gate.min(end),
        }
    };

    let stat = &mut cx.stats[u.id as usize];
    stat.invocations += 1;
    stat.busy_cycles += timing.end - start;
    stat.dram_words += u.stream_words;
    cx.wd.tick(timing.end)?;
    Ok(timing)
}

fn sim_ctrl(c: &mut LCtrl, start: f64, cx: &mut SimCx) -> Result<Timing, SimError> {
    match c.kind {
        CtrlKind::Sequential => {
            // A single pipelined unit iterated many times streams its
            // iterations back-to-back (initiation-interval pipelining —
            // present in every design, including the baseline; this is the
            // paper's "pipelined parallelism within patterns"). Multiple
            // stages run strictly back-to-back.
            if c.stages.len() == 1 && matches!(c.stages[0], LNode::Unit(_)) {
                let mut gate = start;
                let mut end = start;
                for _ in 0..c.iters.max(1) {
                    let t = sim_node(&mut c.stages[0], gate, cx)?;
                    gate = t.gate;
                    end = t.end;
                }
                return Ok(Timing { end, gate: end });
            }
            // Posted tile stores hand their data to the store unit and let
            // the next stage proceed; only the final drain extends the
            // total.
            let mut t = start;
            let mut drain = start;
            for _ in 0..c.iters.max(1) {
                cx.wd.tick(t)?;
                for s in &mut c.stages {
                    let is_store = matches!(s, LNode::Unit(u) if u.is_store);
                    let r = sim_node(s, t, cx)?;
                    if is_store {
                        drain = drain.max(r.end);
                        t += 4.0; // hand-off to the store FIFO
                    } else {
                        t = r.end;
                    }
                }
            }
            let end = t.max(drain);
            Ok(Timing { end, gate: end })
        }
        CtrlKind::Parallel => {
            let mut end = start;
            for _ in 0..c.iters.max(1) {
                cx.wd.tick(end)?;
                let mut iter_end = end;
                for s in &mut c.stages {
                    iter_end = iter_end.max(sim_node(s, end, cx)?.end);
                }
                end = iter_end;
            }
            Ok(Timing { end, gate: end })
        }
        CtrlKind::Metapipeline => {
            // Wavefront with II-pipelining: stage s of iteration t starts
            // when its input data is ready (stage s-1 of iteration t done)
            // and the unit has accepted iteration t-1 through its pipeline
            // (the `gate`, enforced by the double-buffer swap).
            c.gate_scratch.fill(start);
            c.end_scratch.fill(start);
            for ch in &mut c.channels {
                ch.cons_end_prev = start;
            }
            for it in 0..c.iters.max(1) {
                let mut prev_stage_end = start;
                cx.wd.tick(prev_stage_end)?;
                for (s, stage) in c.stages.iter_mut().enumerate() {
                    let mut st = prev_stage_end.max(c.gate_scratch[s]);
                    for ch in &c.channels {
                        if ch.producer == s {
                            st = st.max(ch.cons_end_prev);
                        }
                    }
                    let t = sim_node(stage, st, cx)?;
                    if cx.trace && it < 4 {
                        eprintln!(
                            "meta {} it{} stage{} start {:.0} gate {:.0} end {:.0}",
                            c.name, it, s, st, t.gate, t.end
                        );
                    }
                    c.gate_scratch[s] = t.gate;
                    c.end_scratch[s] = t.end;
                    for ch in &mut c.channels {
                        if ch.consumer == s {
                            ch.cons_end_prev = t.end;
                        }
                    }
                    prev_stage_end = t.end;
                }
            }
            let end = c.end_scratch.iter().copied().fold(start, f64::max);
            Ok(Timing { end, gate: end })
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use pphw_hw::design::{BufId, Buffer, BufferKind, Ctrl, DesignStyle};

    /// Shadows the fallible entry point: every design in these timing
    /// tests is valid and in budget.
    fn simulate(d: &Design, cfg: &SimConfig) -> SimReport {
        super::simulate(d, cfg).expect("test design simulates")
    }

    fn load_unit(words: u64) -> Unit {
        Unit {
            name: "load".into(),
            kind: UnitKind::TileLoad { buf: BufId(0) },
            elems: words,
            ops_per_elem: 0,
            depth: 4,
            streams: vec![DramStream {
                words,
                run_words: words,
                prefetch: true,
                write: false,
            }],
            reads: vec![],
            writes: vec![BufId(0)],
        }
    }

    fn compute_unit(elems: u64, lanes: u32) -> Unit {
        Unit {
            name: "compute".into(),
            kind: UnitKind::Vector { lanes },
            elems,
            ops_per_elem: 1,
            depth: 8,
            streams: vec![],
            reads: vec![BufId(0)],
            writes: vec![],
        }
    }

    fn design(kind: CtrlKind, iters: u64, stages: Vec<Node>) -> Design {
        Design {
            name: "t".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "root".into(),
                kind,
                iters,
                stages,
            }),
            // Sized to hold the largest token these tests stream (the
            // 96k-word loads): the channel capacity model would reject a
            // metapipeline whose double buffer cannot hold one token.
            buffers: vec![Buffer {
                id: BufId(0),
                name: "b".into(),
                words: 131_072,
                word_bytes: 4,
                kind: BufferKind::DoubleBuffer,
                banks: 1,
                readers: 1,
                writers: 1,
            }],
        }
    }

    #[test]
    fn metapipeline_overlaps_stages() {
        // Balanced stages: load transfer (~810 cyc) vs compute (~758 cyc).
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
            ]
        };
        let seq = simulate(
            &design(CtrlKind::Sequential, 64, stages()),
            &SimConfig::default(),
        );
        let meta = simulate(
            &design(CtrlKind::Metapipeline, 64, stages()),
            &SimConfig::default(),
        );
        assert!(
            (meta.cycles as f64) < 0.75 * seq.cycles as f64,
            "meta {} should clearly beat seq {}",
            meta.cycles,
            seq.cycles
        );
    }

    #[test]
    fn metapipeline_bounded_by_slowest_stage() {
        let stages = vec![
            Node::Unit(load_unit(256)),
            Node::Unit(compute_unit(65536, 1)),
        ];
        let meta = simulate(
            &design(CtrlKind::Metapipeline, 16, stages),
            &SimConfig::default(),
        );
        // Slowest stage: 65536 elems / 1 lane = 65536 cycles, 16 iterations.
        assert!(meta.cycles as f64 >= 16.0 * 65536.0);
        assert!((meta.cycles as f64) < 16.0 * 65536.0 * 1.1);
    }

    #[test]
    fn parallel_takes_max_of_members() {
        let stages = vec![
            Node::Unit(compute_unit(1000, 1)),
            Node::Unit(compute_unit(100, 1)),
        ];
        let par = simulate(
            &design(CtrlKind::Parallel, 1, stages),
            &SimConfig::default(),
        );
        assert!(par.cycles >= 1008 && par.cycles < 1200, "{}", par.cycles);
    }

    #[test]
    fn dram_contention_serializes_loads() {
        // Two parallel loads share the channel: total time ~ sum of
        // transfers, not max.
        let stages = vec![Node::Unit(load_unit(96_000)), Node::Unit(load_unit(96_000))];
        let par = simulate(
            &design(CtrlKind::Parallel, 1, stages),
            &SimConfig::default(),
        );
        let single = simulate(
            &design(CtrlKind::Parallel, 1, vec![Node::Unit(load_unit(96_000))]),
            &SimConfig::default(),
        );
        let t2 = par.cycles as f64;
        let t1 = single.cycles as f64;
        assert!(t2 > 1.7 * (t1 - 60.0), "two loads {} vs one {}", t2, t1);
    }

    #[test]
    fn report_tracks_traffic() {
        let r = simulate(
            &design(CtrlKind::Sequential, 4, vec![Node::Unit(load_unit(96))]),
            &SimConfig::default(),
        );
        assert_eq!(r.dram_words, 4 * 96);
        assert_eq!(r.dram_bytes, 4 * 384);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].invocations, 4);
    }

    /// A compute unit that fetches its operands through a *synchronous*
    /// (non-prefetched) DRAM stream — the HLS-style baseline shape.
    fn sync_compute_unit(elems: u64) -> Unit {
        Unit {
            name: "sync_compute".into(),
            kind: UnitKind::Vector { lanes: 1 },
            elems,
            ops_per_elem: 1,
            depth: 8,
            streams: vec![DramStream {
                words: elems,
                run_words: elems,
                prefetch: false,
                write: false,
            }],
            reads: vec![],
            writes: vec![],
        }
    }

    /// The documented `gate < end` pipelining invariant, observed through a
    /// sequential controller iterating one pipelined unit: successive
    /// iterations enter at the occupancy interval (`gate`, ~compute) while
    /// the fill latency (`depth`) overlaps, so N iterations cost
    /// ~`depth + N*compute`, not `N*(depth + compute)`.
    #[test]
    fn pipelined_unit_gate_precedes_end() {
        let iters = 32u64;
        let (depth_free, per_iter) = (32.0, 64.0);
        let mut unit = compute_unit(64, 1);
        unit.depth = 32;
        let r = simulate(
            &design(CtrlKind::Sequential, iters, vec![Node::Unit(unit)]),
            &SimConfig::default(),
        );
        let pipelined = iters as f64 * per_iter + depth_free;
        let serialized = iters as f64 * (per_iter + depth_free);
        assert!(
            r.cycles as f64 >= iters as f64 * per_iter,
            "cannot beat pure compute: {}",
            r.cycles
        );
        assert!(
            (r.cycles as f64) <= pipelined * 1.05,
            "fill latency must overlap across iterations (gate < end): \
             got {} cycles, pipelined bound {pipelined}, serialized {serialized}",
            r.cycles
        );
    }

    /// The same invariant inside a metapipelined controller: the
    /// double-buffer swap admits iteration t+1 at the stage's `gate`, so a
    /// one-stage metapipeline streams at the initiation interval.
    #[test]
    fn metapipeline_gate_admits_next_iteration_early() {
        let iters = 32u64;
        let mut unit = compute_unit(64, 1);
        unit.depth = 32;
        let r = simulate(
            &design(CtrlKind::Metapipeline, iters, vec![Node::Unit(unit)]),
            &SimConfig::default(),
        );
        assert!(r.cycles as f64 >= 32.0 * 64.0);
        assert!(
            (r.cycles as f64) <= (32.0 * 64.0 + 32.0) * 1.05,
            "metapipeline must II-pipeline its stage: {}",
            r.cycles
        );
    }

    /// The HLS-style baseline serializes memory and compute: a unit with a
    /// synchronous read stream pays the full request latency on every
    /// invocation (`gate == end`, no cross-invocation overlap), unlike the
    /// same compute fed from prefetched streams.
    #[test]
    fn sync_reads_serialize_memory_and_compute() {
        let cfg = SimConfig::default();
        let iters = 4u64;
        let elems = 1000u64;

        let sync = simulate(
            &design(
                CtrlKind::Sequential,
                iters,
                vec![Node::Unit(sync_compute_unit(elems))],
            ),
            &cfg,
        );
        // Every invocation pays latency + fill + compute, back-to-back.
        let per_invocation = (cfg.dram_latency + 8 + elems) as f64;
        assert!(
            sync.cycles as f64 >= iters as f64 * per_invocation * 0.99,
            "baseline invocations must serialize: {} < {}",
            sync.cycles,
            iters as f64 * per_invocation
        );

        // The identical compute with prefetched operands pipelines across
        // invocations and beats the baseline by ~the per-invocation
        // latency+fill overhead.
        let mut prefetched = compute_unit(elems, 1);
        prefetched.depth = 8;
        prefetched.streams = vec![DramStream {
            words: elems,
            run_words: elems,
            prefetch: true,
            write: false,
        }];
        let pipe = simulate(
            &design(CtrlKind::Sequential, iters, vec![Node::Unit(prefetched)]),
            &cfg,
        );
        assert!(
            pipe.cycles + (iters - 1) * cfg.dram_latency / 2 < sync.cycles,
            "prefetched {} should clearly beat serialized {}",
            pipe.cycles,
            sync.cycles
        );
    }

    /// Cycle counts are a pure function of (design, config): repeated
    /// `simulate` calls agree exactly.
    #[test]
    fn simulate_deterministic_across_calls() {
        let cfg = SimConfig::default();
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
                Node::Unit(sync_compute_unit(512)),
            ]
        };
        let d = design(CtrlKind::Metapipeline, 16, stages());
        let first = simulate(&d, &cfg);
        for _ in 0..4 {
            let again = simulate(&d, &cfg);
            assert_eq!(
                first.cycles, again.cycles,
                "cycle count must be deterministic"
            );
            assert_eq!(first.dram_words, again.dram_words);
            assert_eq!(first.dram_bytes, again.dram_bytes);
            assert_eq!(first.stages.len(), again.stages.len());
            for (a, b) in first.stages.iter().zip(&again.stages) {
                assert_eq!(a.invocations, b.invocations);
                assert!((a.busy_cycles - b.busy_cycles).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn seconds_consistent_with_cycles() {
        let cfg = SimConfig::default();
        let r = simulate(
            &design(
                CtrlKind::Sequential,
                1,
                vec![Node::Unit(compute_unit(1500, 1))],
            ),
            &cfg,
        );
        let expected = r.cycles as f64 / (cfg.clock_mhz * 1e6);
        assert!((r.seconds - expected).abs() / expected < 0.01);
    }

    #[test]
    fn invalid_config_rejected_before_simulation() {
        let d = design(
            CtrlKind::Sequential,
            1,
            vec![Node::Unit(compute_unit(16, 1))],
        );
        let err = super::simulate(&d, &SimConfig::default().with_clock_mhz(0.0)).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        let err = super::simulate_with_faults(
            &d,
            &SimConfig::default(),
            &FaultConfig::none().with_burst_fail_rate(2.0),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultConfig { .. }));
    }

    /// A configuration whose runtime blows past the watchdog budget fails
    /// with a structured error instead of grinding on (or, for genuinely
    /// astronomical trip counts, wrapping the cycle cast).
    #[test]
    fn over_budget_run_is_a_structured_error() {
        let d = design(
            CtrlKind::Sequential,
            1_000_000,
            vec![Node::Unit(compute_unit(1000, 1))],
        );
        let cfg = SimConfig::default().with_cycle_budget(10_000);
        match super::simulate(&d, &cfg) {
            Err(SimError::BudgetExceeded { budget: 10_000, .. }) => {}
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    /// A controller that never advances the clock (empty stage list, huge
    /// trip count) would previously hang; the event watchdog converts it
    /// into an error.
    #[test]
    fn runaway_controller_hits_event_watchdog() {
        let d = design(CtrlKind::Parallel, u64::MAX, vec![]);
        match super::simulate(&d, &SimConfig::default()) {
            Err(SimError::BudgetExceeded {
                what: "event watchdog",
                ..
            }) => {}
            other => panic!("expected event-watchdog trip, got {other:?}"),
        }
    }

    /// The tentpole's bit-identity guarantee: an inert fault config takes
    /// the exact fault-free code path.
    #[test]
    fn zero_fault_config_reproduces_simulate_bit_identically() {
        let cfg = SimConfig::default();
        let stages = vec![
            Node::Unit(load_unit(96_000)),
            Node::Unit(compute_unit(96_000, 128)),
            Node::Unit(sync_compute_unit(512)),
        ];
        let d = design(CtrlKind::Metapipeline, 16, stages);
        let clean = super::simulate(&d, &cfg).unwrap();
        let inert =
            super::simulate_with_faults(&d, &cfg, &FaultConfig::none().with_seed(0xDEAD)).unwrap();
        assert_eq!(clean.cycles, inert.cycles);
        assert_eq!(clean.seconds.to_bits(), inert.seconds.to_bits());
        assert_eq!(clean.dram_bytes, inert.dram_bytes);
        assert_eq!(clean.dram_words, inert.dram_words);
        assert_eq!(inert.faults, crate::fault::FaultStats::default());
        for (a, b) in clean.stages.iter().zip(&inert.stages) {
            assert_eq!(a.busy_cycles.to_bits(), b.busy_cycles.to_bits());
        }
    }

    /// A metapipeline double buffer that cannot hold one producer token
    /// is rejected before the event loop, naming the channel.
    #[test]
    fn zero_slot_channel_errors_up_front() {
        let stages = vec![
            Node::Unit(load_unit(96_000)),
            Node::Unit(compute_unit(96_000, 128)),
        ];
        let mut d = design(CtrlKind::Metapipeline, 8, stages);
        d.buffers[0].words = 40_000; // capacity 80k < one 96k-word token
        match super::simulate(&d, &SimConfig::default()) {
            Err(SimError::ChannelDeadlock { channel }) => assert_eq!(channel, "root/b"),
            other => panic!("expected ChannelDeadlock, got {other:?}"),
        }
    }

    /// The channel capacity model: a single-slot channel serializes its
    /// endpoints (strictly slower than the double-buffered run), while
    /// slack beyond two slots changes nothing — the two-slot schedule is
    /// already fully overlapped.
    #[test]
    fn single_slot_serializes_and_extra_slots_are_free() {
        let cfg = SimConfig::default();
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
            ]
        };
        let run = |words: u64| {
            let mut d = design(CtrlKind::Metapipeline, 8, stages());
            d.buffers[0].words = words;
            super::simulate(&d, &cfg).expect("simulates")
        };
        let minimal = run(96_000); // exactly one token per half: 2 slots
        let slack = run(384_000); // 8 slots
        let single = run(95_999); // capacity 191,998: one token fits
        assert_eq!(minimal.cycles, slack.cycles, "extra slots must be free");
        assert_eq!(minimal.seconds.to_bits(), slack.seconds.to_bits());
        for (a, b) in minimal.stages.iter().zip(&slack.stages) {
            assert_eq!(a.busy_cycles.to_bits(), b.busy_cycles.to_bits());
        }
        assert!(
            single.cycles > minimal.cycles,
            "one slot must stall the producer: {} vs {}",
            single.cycles,
            minimal.cycles
        );
    }

    /// Same seed ⇒ identical faulted report; fault-free cycles never
    /// exceed faulted cycles (penalties are additive).
    #[test]
    fn faulted_runs_deterministic_and_never_faster_than_clean() {
        let cfg = SimConfig::default();
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
            ]
        };
        let d = design(CtrlKind::Metapipeline, 32, stages());
        let clean = super::simulate(&d, &cfg).unwrap();
        for seed in [1u64, 42, 0xFEED] {
            let faults = FaultConfig::none()
                .with_seed(seed)
                .with_latency_jitter(24)
                .with_degradation(2048, 256, 1.5)
                .with_burst_fail_rate(0.05);
            let a = super::simulate_with_faults(&d, &cfg, &faults).unwrap();
            let b = super::simulate_with_faults(&d, &cfg, &faults).unwrap();
            assert_eq!(a.cycles, b.cycles, "seed {seed} must reproduce");
            assert_eq!(a.dram_bytes, b.dram_bytes);
            assert_eq!(a.faults, b.faults);
            assert!(
                clean.cycles <= a.cycles,
                "seed {seed}: faulted run {} beat clean {}",
                a.cycles,
                clean.cycles
            );
            assert!(
                a.faults.retries > 0 || a.faults.jitter_cycles > 0,
                "seed {seed}: fault model injected nothing"
            );
        }
    }
}
