//! The simulation engine: controller scheduling over the shared DRAM
//! channel.

use std::collections::BTreeMap;

use pphw_hw::design::{Ctrl, CtrlKind, Design, Node, Unit};

use crate::dram::{Dram, SimConfig};
use crate::report::{SimReport, StageStat};

/// Simulates a design, returning timing and traffic statistics.
pub fn simulate(design: &Design, cfg: &SimConfig) -> SimReport {
    let mut dram = Dram::new(cfg.clone());
    let mut stats: BTreeMap<String, StageStat> = BTreeMap::new();
    let Timing { end, .. } = sim_node(&design.root, 0.0, &mut dram, &mut stats);
    let cycles = end.ceil() as u64;
    SimReport {
        design: design.name.clone(),
        style: design.style,
        cycles,
        seconds: cfg.cycles_to_seconds(end),
        dram_bytes: dram.bytes_moved as u64,
        dram_words: dram.words_requested,
        stages: stats.into_values().collect(),
    }
}

/// The two times a stage invocation produces: when its *data* is complete
/// (`end`) and when the unit itself is free to accept the next iteration
/// (`gate`). Pipelined units have `gate < end`: successive metapipeline
/// iterations enter at the occupancy interval while fill latency overlaps.
#[derive(Debug, Clone, Copy)]
struct Timing {
    end: f64,
    gate: f64,
}

fn sim_node(
    node: &Node,
    start: f64,
    dram: &mut Dram,
    stats: &mut BTreeMap<String, StageStat>,
) -> Timing {
    match node {
        Node::Unit(u) => sim_unit(u, start, dram, stats),
        Node::Ctrl(c) => sim_ctrl(c, start, dram, stats),
    }
}

/// One invocation of a leaf unit.
///
/// * Tile loads/stores: prefetched streams — latency once, channel-rate
///   transfer; the unit is busy for the transfer only.
/// * Compute units reading on-chip buffers: pipelined — `depth` fill plus
///   one element per lane per cycle.
/// * Compute units with synchronous DRAM read streams (the HLS-style
///   baseline): memory and compute are *serialized* — the design fetches
///   its operand set, then computes, with no prefetch overlap. This is the
///   behavior tiling + metapipelining removes (§4, §6.2).
fn sim_unit(
    u: &Unit,
    start: f64,
    dram: &mut Dram,
    stats: &mut BTreeMap<String, StageStat>,
) -> Timing {
    let lanes = u.kind.lanes().max(1) as u64;
    let is_mem = matches!(
        u.kind,
        pphw_hw::design::UnitKind::TileLoad { .. } | pphw_hw::design::UnitKind::TileStore { .. }
    );
    let compute = if is_mem {
        0.0
    } else {
        (u.elems.div_ceil(lanes)) as f64
    };
    let has_sync_reads = u.streams.iter().any(|s| !s.write && !s.prefetch);

    let timing = if has_sync_reads {
        // Baseline-style leaf: one request round-trip per invocation, then
        // the operand streams transfer back-to-back. Within the instance
        // the pipeline consumes data as it arrives (the "pipelined
        // parallelism within patterns" every design shares), so compute
        // overlaps the streams; but nothing overlaps across instances.
        let issue = start + dram.config().dram_latency as f64;
        let sync_reads = u.streams.iter().filter(|s| !s.write).count();
        let efficiency = if sync_reads > 1 { 0.5 } else { 1.0 };
        let mut mem_end = issue;
        for s in u.streams.iter().filter(|s| !s.write) {
            mem_end = dram.request_sync_body(mem_end, s, efficiency);
        }
        let mut end = mem_end.max(issue + u.depth as f64 + compute);
        for s in u.streams.iter().filter(|s| s.write) {
            let done = dram.request(issue, s);
            end = end.max(done);
        }
        Timing { end, gate: end }
    } else {
        // Pipelined unit: reads gate data-readiness; occupancy is the
        // larger of compute and channel transfer.
        let mut end = start + u.depth as f64 + compute;
        let mut gate = start + compute.max(1.0);
        for s in &u.streams {
            let done = dram.request(start, s);
            if s.write {
                end = end.max(done);
                gate = gate.max(done - start + start);
            } else {
                end = end.max(done);
                // The unit is occupied for the transfer (latency overlaps
                // with the next iteration's request).
                gate = gate.max(done - dram.config().dram_latency as f64);
            }
        }
        Timing {
            end,
            gate: gate.min(end),
        }
    };

    let stat = stats.entry(u.name.clone()).or_insert_with(|| StageStat {
        name: u.name.clone(),
        invocations: 0,
        busy_cycles: 0.0,
        dram_words: 0,
    });
    stat.invocations += 1;
    stat.busy_cycles += timing.end - start;
    stat.dram_words += u.streams.iter().map(|s| s.words).sum::<u64>();
    timing
}

fn sim_ctrl(
    c: &Ctrl,
    start: f64,
    dram: &mut Dram,
    stats: &mut BTreeMap<String, StageStat>,
) -> Timing {
    match c.kind {
        CtrlKind::Sequential => {
            // A single pipelined unit iterated many times streams its
            // iterations back-to-back (initiation-interval pipelining —
            // present in every design, including the baseline; this is the
            // paper's "pipelined parallelism within patterns"). Multiple
            // stages run strictly back-to-back.
            if c.stages.len() == 1 && matches!(c.stages[0], Node::Unit(_)) {
                let mut gate = start;
                let mut end = start;
                for _ in 0..c.iters.max(1) {
                    let t = sim_node(&c.stages[0], gate, dram, stats);
                    gate = t.gate;
                    end = t.end;
                }
                return Timing { end, gate: end };
            }
            // Posted tile stores hand their data to the store unit and let
            // the next stage proceed; only the final drain extends the
            // total.
            let mut t = start;
            let mut drain = start;
            for _ in 0..c.iters.max(1) {
                for s in &c.stages {
                    let is_store = matches!(
                        s,
                        Node::Unit(u) if matches!(
                            u.kind,
                            pphw_hw::design::UnitKind::TileStore { .. }
                        )
                    );
                    let r = sim_node(s, t, dram, stats);
                    if is_store {
                        drain = drain.max(r.end);
                        t += 4.0; // hand-off to the store FIFO
                    } else {
                        t = r.end;
                    }
                }
            }
            let end = t.max(drain);
            Timing { end, gate: end }
        }
        CtrlKind::Parallel => {
            let mut end = start;
            for _ in 0..c.iters.max(1) {
                let mut iter_end = end;
                for s in &c.stages {
                    iter_end = iter_end.max(sim_node(s, end, dram, stats).end);
                }
                end = iter_end;
            }
            Timing { end, gate: end }
        }
        CtrlKind::Metapipeline => {
            // Wavefront with II-pipelining: stage s of iteration t starts
            // when its input data is ready (stage s-1 of iteration t done)
            // and the unit has accepted iteration t-1 through its pipeline
            // (the `gate`, enforced by the double-buffer swap).
            let n = c.stages.len();
            let mut last_gate = vec![start; n];
            let mut last_end = vec![start; n];
            let trace = std::env::var("PPHW_TRACE").is_ok();
            for it in 0..c.iters.max(1) {
                let mut prev_stage_end = start;
                for (s, stage) in c.stages.iter().enumerate() {
                    let st = prev_stage_end.max(last_gate[s]);
                    let t = sim_node(stage, st, dram, stats);
                    if trace && it < 4 {
                        eprintln!(
                            "meta {} it{} stage{} start {:.0} gate {:.0} end {:.0}",
                            c.name, it, s, st, t.gate, t.end
                        );
                    }
                    last_gate[s] = t.gate;
                    last_end[s] = t.end;
                    prev_stage_end = t.end;
                }
            }
            let end = last_end.into_iter().fold(start, f64::max);
            Timing { end, gate: end }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_hw::design::{BufId, Buffer, BufferKind, DesignStyle, DramStream, UnitKind};

    fn load_unit(words: u64) -> Unit {
        Unit {
            name: "load".into(),
            kind: UnitKind::TileLoad { buf: BufId(0) },
            elems: words,
            ops_per_elem: 0,
            depth: 4,
            streams: vec![DramStream {
                words,
                run_words: words,
                prefetch: true,
                write: false,
            }],
            reads: vec![],
            writes: vec![BufId(0)],
        }
    }

    fn compute_unit(elems: u64, lanes: u32) -> Unit {
        Unit {
            name: "compute".into(),
            kind: UnitKind::Vector { lanes },
            elems,
            ops_per_elem: 1,
            depth: 8,
            streams: vec![],
            reads: vec![BufId(0)],
            writes: vec![],
        }
    }

    fn design(kind: CtrlKind, iters: u64, stages: Vec<Node>) -> Design {
        Design {
            name: "t".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "root".into(),
                kind,
                iters,
                stages,
            }),
            buffers: vec![Buffer {
                id: BufId(0),
                name: "b".into(),
                words: 4096,
                word_bytes: 4,
                kind: BufferKind::DoubleBuffer,
                banks: 1,
                readers: 1,
                writers: 1,
            }],
        }
    }

    #[test]
    fn metapipeline_overlaps_stages() {
        // Balanced stages: load transfer (~810 cyc) vs compute (~758 cyc).
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
            ]
        };
        let seq = simulate(
            &design(CtrlKind::Sequential, 64, stages()),
            &SimConfig::default(),
        );
        let meta = simulate(
            &design(CtrlKind::Metapipeline, 64, stages()),
            &SimConfig::default(),
        );
        assert!(
            (meta.cycles as f64) < 0.75 * seq.cycles as f64,
            "meta {} should clearly beat seq {}",
            meta.cycles,
            seq.cycles
        );
    }

    #[test]
    fn metapipeline_bounded_by_slowest_stage() {
        let stages = vec![
            Node::Unit(load_unit(256)),
            Node::Unit(compute_unit(65536, 1)),
        ];
        let meta = simulate(
            &design(CtrlKind::Metapipeline, 16, stages),
            &SimConfig::default(),
        );
        // Slowest stage: 65536 elems / 1 lane = 65536 cycles, 16 iterations.
        assert!(meta.cycles as f64 >= 16.0 * 65536.0);
        assert!((meta.cycles as f64) < 16.0 * 65536.0 * 1.1);
    }

    #[test]
    fn parallel_takes_max_of_members() {
        let stages = vec![
            Node::Unit(compute_unit(1000, 1)),
            Node::Unit(compute_unit(100, 1)),
        ];
        let par = simulate(
            &design(CtrlKind::Parallel, 1, stages),
            &SimConfig::default(),
        );
        assert!(par.cycles >= 1008 && par.cycles < 1200, "{}", par.cycles);
    }

    #[test]
    fn dram_contention_serializes_loads() {
        // Two parallel loads share the channel: total time ~ sum of
        // transfers, not max.
        let stages = vec![Node::Unit(load_unit(96_000)), Node::Unit(load_unit(96_000))];
        let par = simulate(
            &design(CtrlKind::Parallel, 1, stages),
            &SimConfig::default(),
        );
        let single = simulate(
            &design(CtrlKind::Parallel, 1, vec![Node::Unit(load_unit(96_000))]),
            &SimConfig::default(),
        );
        let t2 = par.cycles as f64;
        let t1 = single.cycles as f64;
        assert!(t2 > 1.7 * (t1 - 60.0), "two loads {} vs one {}", t2, t1);
    }

    #[test]
    fn report_tracks_traffic() {
        let r = simulate(
            &design(CtrlKind::Sequential, 4, vec![Node::Unit(load_unit(96))]),
            &SimConfig::default(),
        );
        assert_eq!(r.dram_words, 4 * 96);
        assert_eq!(r.dram_bytes, 4 * 384);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].invocations, 4);
    }

    /// A compute unit that fetches its operands through a *synchronous*
    /// (non-prefetched) DRAM stream — the HLS-style baseline shape.
    fn sync_compute_unit(elems: u64) -> Unit {
        Unit {
            name: "sync_compute".into(),
            kind: UnitKind::Vector { lanes: 1 },
            elems,
            ops_per_elem: 1,
            depth: 8,
            streams: vec![DramStream {
                words: elems,
                run_words: elems,
                prefetch: false,
                write: false,
            }],
            reads: vec![],
            writes: vec![],
        }
    }

    /// The documented `gate < end` pipelining invariant, observed through a
    /// sequential controller iterating one pipelined unit: successive
    /// iterations enter at the occupancy interval (`gate`, ~compute) while
    /// the fill latency (`depth`) overlaps, so N iterations cost
    /// ~`depth + N*compute`, not `N*(depth + compute)`.
    #[test]
    fn pipelined_unit_gate_precedes_end() {
        let iters = 32u64;
        let (depth_free, per_iter) = (32.0, 64.0);
        let mut unit = compute_unit(64, 1);
        unit.depth = 32;
        let r = simulate(
            &design(CtrlKind::Sequential, iters, vec![Node::Unit(unit)]),
            &SimConfig::default(),
        );
        let pipelined = iters as f64 * per_iter + depth_free;
        let serialized = iters as f64 * (per_iter + depth_free);
        assert!(
            r.cycles as f64 >= iters as f64 * per_iter,
            "cannot beat pure compute: {}",
            r.cycles
        );
        assert!(
            (r.cycles as f64) <= pipelined * 1.05,
            "fill latency must overlap across iterations (gate < end): \
             got {} cycles, pipelined bound {pipelined}, serialized {serialized}",
            r.cycles
        );
    }

    /// The same invariant inside a metapipelined controller: the
    /// double-buffer swap admits iteration t+1 at the stage's `gate`, so a
    /// one-stage metapipeline streams at the initiation interval.
    #[test]
    fn metapipeline_gate_admits_next_iteration_early() {
        let iters = 32u64;
        let mut unit = compute_unit(64, 1);
        unit.depth = 32;
        let r = simulate(
            &design(CtrlKind::Metapipeline, iters, vec![Node::Unit(unit)]),
            &SimConfig::default(),
        );
        assert!(r.cycles as f64 >= 32.0 * 64.0);
        assert!(
            (r.cycles as f64) <= (32.0 * 64.0 + 32.0) * 1.05,
            "metapipeline must II-pipeline its stage: {}",
            r.cycles
        );
    }

    /// The HLS-style baseline serializes memory and compute: a unit with a
    /// synchronous read stream pays the full request latency on every
    /// invocation (`gate == end`, no cross-invocation overlap), unlike the
    /// same compute fed from prefetched streams.
    #[test]
    fn sync_reads_serialize_memory_and_compute() {
        let cfg = SimConfig::default();
        let iters = 4u64;
        let elems = 1000u64;

        let sync = simulate(
            &design(
                CtrlKind::Sequential,
                iters,
                vec![Node::Unit(sync_compute_unit(elems))],
            ),
            &cfg,
        );
        // Every invocation pays latency + fill + compute, back-to-back.
        let per_invocation = (cfg.dram_latency + 8 + elems) as f64;
        assert!(
            sync.cycles as f64 >= iters as f64 * per_invocation * 0.99,
            "baseline invocations must serialize: {} < {}",
            sync.cycles,
            iters as f64 * per_invocation
        );

        // The identical compute with prefetched operands pipelines across
        // invocations and beats the baseline by ~the per-invocation
        // latency+fill overhead.
        let mut prefetched = compute_unit(elems, 1);
        prefetched.depth = 8;
        prefetched.streams = vec![DramStream {
            words: elems,
            run_words: elems,
            prefetch: true,
            write: false,
        }];
        let pipe = simulate(
            &design(CtrlKind::Sequential, iters, vec![Node::Unit(prefetched)]),
            &cfg,
        );
        assert!(
            pipe.cycles + (iters - 1) * cfg.dram_latency / 2 < sync.cycles,
            "prefetched {} should clearly beat serialized {}",
            pipe.cycles,
            sync.cycles
        );
    }

    /// Cycle counts are a pure function of (design, config): repeated
    /// `simulate` calls agree exactly.
    #[test]
    fn simulate_deterministic_across_calls() {
        let cfg = SimConfig::default();
        let stages = || {
            vec![
                Node::Unit(load_unit(96_000)),
                Node::Unit(compute_unit(96_000, 128)),
                Node::Unit(sync_compute_unit(512)),
            ]
        };
        let d = design(CtrlKind::Metapipeline, 16, stages());
        let first = simulate(&d, &cfg);
        for _ in 0..4 {
            let again = simulate(&d, &cfg);
            assert_eq!(
                first.cycles, again.cycles,
                "cycle count must be deterministic"
            );
            assert_eq!(first.dram_words, again.dram_words);
            assert_eq!(first.dram_bytes, again.dram_bytes);
            assert_eq!(first.stages.len(), again.stages.len());
            for (a, b) in first.stages.iter().zip(&again.stages) {
                assert_eq!(a.invocations, b.invocations);
                assert!((a.busy_cycles - b.busy_cycles).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn seconds_consistent_with_cycles() {
        let cfg = SimConfig::default();
        let r = simulate(
            &design(
                CtrlKind::Sequential,
                1,
                vec![Node::Unit(compute_unit(1500, 1))],
            ),
            &cfg,
        );
        let expected = r.cycles as f64 / (cfg.clock_mhz * 1e6);
        assert!((r.seconds - expected).abs() / expected < 0.01);
    }
}
