//! Simulation results.

use pphw_hw::design::DesignStyle;

use crate::fault::FaultStats;

/// Per-unit statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Unit name.
    pub name: String,
    /// Number of invocations.
    pub invocations: u64,
    /// Total busy cycles across invocations.
    pub busy_cycles: f64,
    /// Total useful DRAM words requested per invocation, summed.
    pub dram_words: u64,
}

/// Whole-run simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Design name.
    pub design: String,
    /// Optimization level simulated.
    pub style: DesignStyle,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured fabric clock.
    pub seconds: f64,
    /// Bytes moved over the DRAM channel (including burst padding).
    pub dram_bytes: u64,
    /// Useful words requested from DRAM.
    pub dram_words: u64,
    /// Fault-injection counters (all zeros for a fault-free run).
    pub faults: FaultStats,
    /// Per-unit statistics, sorted by name.
    pub stages: Vec<StageStat>,
}

impl SimReport {
    /// Speedup of this run relative to a reference run.
    pub fn speedup_over(&self, reference: &SimReport) -> f64 {
        reference.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Effective DRAM bandwidth utilization (moved bytes over peak for the
    /// duration), given the configuration used for the run.
    pub fn bandwidth_fraction(&self, cfg: &crate::dram::SimConfig) -> f64 {
        let peak = cfg.dram_gbps * 1e9 * self.seconds;
        if peak > 0.0 {
            self.dram_bytes as f64 / peak
        } else {
            0.0
        }
    }

    /// Formats the report as readable text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{} [{}]: {} cycles ({:.3} ms), {} DRAM words ({} bytes moved)\n",
            self.design,
            self.style,
            self.cycles,
            self.seconds * 1e3,
            self.dram_words,
            self.dram_bytes
        );
        if self.faults != FaultStats::default() {
            out.push_str(&format!(
                "  faults: {} retries, {} degraded requests, {} jitter cycles\n",
                self.faults.retries, self.faults.degraded_requests, self.faults.jitter_cycles
            ));
        }
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<28} x{:<8} busy {:>12.0} cyc  {:>12} words\n",
                s.name, s.invocations, s.busy_cycles, s.dram_words
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            design: "t".into(),
            style: DesignStyle::Baseline,
            cycles,
            seconds: cycles as f64 / 150e6,
            dram_bytes: 1000,
            dram_words: 250,
            faults: FaultStats::default(),
            stages: vec![],
        }
    }

    #[test]
    fn speedup_is_ratio_of_cycles() {
        let base = report(1000);
        let fast = report(100);
        assert!((fast.speedup_over(&base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn to_text_contains_summary() {
        let r = report(42);
        assert!(r.to_text().contains("42 cycles"));
    }
}
