//! Typed simulation errors.
//!
//! The simulator is the innermost stage of the user-facing pipeline, so it
//! must never panic or hang on adversarial inputs: malformed configurations
//! are rejected up front by [`crate::SimConfig::validate`] and
//! [`crate::FaultConfig::validate`], and runaway designs are cut off by the
//! watchdog cycle budget instead of spinning forever or overflowing the
//! `f64`-to-`u64` cycle conversion.

use std::fmt;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A [`crate::SimConfig`] field is out of its valid domain.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The value it held, rendered for diagnostics.
        value: String,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// A [`crate::FaultConfig`] field is out of its valid domain.
    InvalidFaultConfig {
        /// The offending field.
        field: &'static str,
        /// The value it held, rendered for diagnostics.
        value: String,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// The simulated time (or event count) exceeded the watchdog budget —
    /// the structured replacement for a hang or a wrapped cycle count.
    BudgetExceeded {
        /// Which watchdog tripped (`"cycle budget"` or `"event watchdog"`).
        what: &'static str,
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A timing quantity became non-finite (NaN or infinity), typically
    /// from a pathological bandwidth/clock combination.
    NonFinite {
        /// Which quantity went non-finite.
        what: &'static str,
    },
    /// A metapipeline channel cannot hold even one producer token, so the
    /// design can never make progress. Detected before the event loop by
    /// walking the channel graph (the same graph `pphw-verify`'s flow
    /// analyzer flags as `PPHW041`), turning a would-be hang into a
    /// structured error.
    ChannelDeadlock {
        /// `ctrl/buffer` of the undersized channel.
        channel: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig {
                field,
                value,
                reason,
            } => write!(f, "invalid SimConfig: {field} = {value} ({reason})"),
            SimError::InvalidFaultConfig {
                field,
                value,
                reason,
            } => write!(f, "invalid FaultConfig: {field} = {value} ({reason})"),
            SimError::BudgetExceeded { what, budget } => {
                write!(f, "simulation exceeded its {what} of {budget}")
            }
            SimError::NonFinite { what } => {
                write!(f, "simulation produced a non-finite {what}")
            }
            SimError::ChannelDeadlock { channel } => {
                write!(
                    f,
                    "channel {channel} cannot hold one producer token: the design deadlocks"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
