//! Deterministic DRAM fault injection.
//!
//! The paper evaluates on an ideal Max4 Maia memory system; real boards
//! exhibit latency jitter, bandwidth throttling windows, and transient
//! burst failures. [`FaultConfig`] models all three as *additive* penalties
//! on the [`crate::Dram`] channel so a faulted run is never faster than the
//! fault-free run of the same design, and every fault decision is drawn
//! from a seeded generator so the same seed reproduces the same
//! [`crate::SimReport`] bit-for-bit.
//!
//! The generator is the same xoshiro256++/SplitMix64 pair used by
//! `pphw-testkit` (`testkit` depends on this crate, so the few dozen lines
//! are mirrored here rather than imported; the streams agree bit-for-bit
//! for the same seed).

use crate::error::SimError;

/// Fault-injection parameters. `FaultConfig::none()` (the default) injects
/// nothing and makes `simulate_with_faults` take the exact code path of
/// the fault-free simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault decision; same seed ⇒ same report.
    pub seed: u64,
    /// Maximum extra request latency in cycles; each latency-bearing
    /// request draws a uniform jitter in `[0, max]`. `0` disables.
    pub latency_jitter_max: u64,
    /// Period of the bandwidth-degradation square wave, in cycles.
    pub degrade_period: u64,
    /// Leading portion of each period during which transfers are degraded,
    /// in cycles. `0` disables degradation.
    pub degrade_window: u64,
    /// Transfer-time multiplier inside a degradation window (`>= 1.0`;
    /// `1.0` disables).
    pub degrade_factor: f64,
    /// Probability that a burst transfer fails in transit and must be
    /// retried (`0.0` disables; must be `< 1.0`).
    pub burst_fail_rate: f64,
    /// Bound on retries per request; after this many failed attempts the
    /// final attempt is assumed to succeed (the channel never livelocks).
    pub max_retries: u32,
    /// Base backoff in cycles added before retry `k` as `backoff << k`.
    pub retry_backoff: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The inert configuration: nothing is injected.
    #[must_use]
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            latency_jitter_max: 0,
            degrade_period: 0,
            degrade_window: 0,
            degrade_factor: 1.0,
            burst_fail_rate: 0.0,
            max_retries: 4,
            retry_backoff: 16,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum latency jitter in cycles.
    #[must_use]
    pub fn with_latency_jitter(mut self, max_cycles: u64) -> Self {
        self.latency_jitter_max = max_cycles;
        self
    }

    /// Enables bandwidth degradation: transfers arriving in the first
    /// `window` cycles of every `period` take `factor` times as long.
    #[must_use]
    pub fn with_degradation(mut self, period: u64, window: u64, factor: f64) -> Self {
        self.degrade_period = period;
        self.degrade_window = window;
        self.degrade_factor = factor;
        self
    }

    /// Sets the transient burst-failure probability.
    #[must_use]
    pub fn with_burst_fail_rate(mut self, rate: f64) -> Self {
        self.burst_fail_rate = rate;
        self
    }

    /// Sets the retry bound and base backoff.
    #[must_use]
    pub fn with_retry(mut self, max_retries: u32, backoff_cycles: u64) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = backoff_cycles;
        self
    }

    /// `true` when this configuration injects nothing at all. An inert
    /// config makes the faulted simulator bit-identical to the fault-free
    /// one (no generator is even constructed).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.latency_jitter_max == 0
            && (self.degrade_window == 0 || self.degrade_factor <= 1.0)
            && self.burst_fail_rate == 0.0
    }

    /// Rejects out-of-domain parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.burst_fail_rate.is_finite() || !(0.0..1.0).contains(&self.burst_fail_rate) {
            return Err(SimError::InvalidFaultConfig {
                field: "burst_fail_rate",
                value: format!("{}", self.burst_fail_rate),
                reason: "must be finite and in [0, 1)",
            });
        }
        if !self.degrade_factor.is_finite() || self.degrade_factor < 1.0 {
            return Err(SimError::InvalidFaultConfig {
                field: "degrade_factor",
                value: format!("{}", self.degrade_factor),
                reason: "must be finite and >= 1.0",
            });
        }
        if self.degrade_window > 0 && self.degrade_period < self.degrade_window {
            return Err(SimError::InvalidFaultConfig {
                field: "degrade_window",
                value: format!("{} (period {})", self.degrade_window, self.degrade_period),
                reason: "window must not exceed period",
            });
        }
        if self.burst_fail_rate > 0.0 && self.max_retries == 0 {
            return Err(SimError::InvalidFaultConfig {
                field: "max_retries",
                value: "0".into(),
                reason: "burst failures need at least one retry attempt",
            });
        }
        Ok(())
    }
}

/// Counters accumulated by the fault model during one run. All zeros for a
/// fault-free (or inert-config) run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Total extra latency cycles injected as jitter.
    pub jitter_cycles: u64,
    /// Requests whose transfer fell inside a degradation window.
    pub degraded_requests: u64,
    /// Total retried burst transfers.
    pub retries: u64,
    /// Total channel cycles spent on retransmissions and backoff.
    pub retry_cycles: f64,
}

/// One SplitMix64 step (mirrors `pphw_testkit::rng::splitmix64`).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable xoshiro256++ (mirrors `pphw_testkit::rng::Rng` bit-for-bit).
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    pub(crate) fn seed_from_u64(seed: u64) -> FaultRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        FaultRng { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(crate) fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform in `[0, bound]` (inclusive), widening-multiply method.
    pub(crate) fn uniform_inclusive(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * (u128::from(bound) + 1)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn inert_detection() {
        assert!(FaultConfig::none().is_inert());
        assert!(FaultConfig::none().with_seed(99).is_inert());
        // A window with factor 1.0 injects nothing.
        assert!(FaultConfig::none()
            .with_degradation(1000, 100, 1.0)
            .is_inert());
        assert!(!FaultConfig::none().with_latency_jitter(8).is_inert());
        assert!(!FaultConfig::none()
            .with_degradation(1000, 100, 2.0)
            .is_inert());
        assert!(!FaultConfig::none().with_burst_fail_rate(0.01).is_inert());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(FaultConfig::none().validate().is_ok());
        let bad_rate = FaultConfig::none().with_burst_fail_rate(1.0);
        assert!(matches!(
            bad_rate.validate(),
            Err(SimError::InvalidFaultConfig {
                field: "burst_fail_rate",
                ..
            })
        ));
        let nan_rate = FaultConfig::none().with_burst_fail_rate(f64::NAN);
        assert!(nan_rate.validate().is_err());
        let bad_factor = FaultConfig::none().with_degradation(100, 10, 0.5);
        assert!(matches!(
            bad_factor.validate(),
            Err(SimError::InvalidFaultConfig {
                field: "degrade_factor",
                ..
            })
        ));
        let bad_window = FaultConfig::none().with_degradation(10, 100, 2.0);
        assert!(matches!(
            bad_window.validate(),
            Err(SimError::InvalidFaultConfig {
                field: "degrade_window",
                ..
            })
        ));
        let no_retry = FaultConfig::none()
            .with_burst_fail_rate(0.1)
            .with_retry(0, 16);
        assert!(matches!(
            no_retry.validate(),
            Err(SimError::InvalidFaultConfig {
                field: "max_retries",
                ..
            })
        ));
    }

    #[test]
    fn rng_deterministic_and_seed_sensitive() {
        let mut r = FaultRng::seed_from_u64(42);
        let mut s = FaultRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(r.next_u64(), s.next_u64());
        }
        let mut a = FaultRng::seed_from_u64(7);
        let mut b = FaultRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_inclusive_respects_bound() {
        let mut r = FaultRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.uniform_inclusive(10) <= 10);
        }
        assert_eq!(r.uniform_inclusive(0), 0);
    }
}
