//! Pretty-printer producing paper-style PPL text.
//!
//! The output mirrors the notation of the paper's figures: patterns print
//! as `multiFold(n/b0)((k,d),k)(init){ ii => … }{ (a,b) => … }`, copies as
//! `points.copy(ii*b0 :+ b0, *)`, and slices as `points.slice(i, *)`.

use std::fmt::Write as _;

use crate::block::{Block, Op, SliceDim, Stmt};
use crate::expr::{BinOp, Expr, UnOp};
use crate::path::IrPath;
use crate::pattern::{GbfBody, Pattern};
use crate::program::Program;
use crate::types::{Sym, SymTable};

/// Renders a whole program.
pub fn print_program(prog: &Program) -> String {
    render_program(prog, None)
}

/// Like [`print_program`] but annotates every pattern statement with its
/// [`IrPath`] (`// at kmeans/sums[2]`) — the same paths verifier
/// diagnostics carry, so an error can be matched to a line of output.
pub fn print_program_with_paths(prog: &Program) -> String {
    render_program(prog, Some(IrPath::root(&prog.name)))
}

fn render_program(prog: &Program, path: Option<IrPath>) -> String {
    let mut p = Printer::new(&prog.syms);
    p.path = path;
    let _ = writeln!(p.out, "// program {}", prog.name);
    for i in &prog.inputs {
        let _ = writeln!(p.out, "{}: {}", prog.syms.name(*i), prog.syms.ty(*i));
    }
    p.block_stmts(&prog.body);
    let results: Vec<String> = prog.body.result.iter().map(|s| p.name(*s)).collect();
    let _ = writeln!(p.out, "return ({})", results.join(", "));
    p.out
}

/// Renders a single block (at indent level 0).
pub fn print_block(block: &Block, syms: &SymTable) -> String {
    let mut p = Printer::new(syms);
    p.block_stmts(block);
    p.out
}

struct Printer<'a> {
    syms: &'a SymTable,
    out: String,
    indent: usize,
    /// When set, pattern statements are annotated with their path and the
    /// path is threaded through nested blocks.
    path: Option<IrPath>,
}

impl<'a> Printer<'a> {
    fn new(syms: &'a SymTable) -> Self {
        Printer {
            syms,
            out: String::new(),
            indent: 0,
            path: None,
        }
    }

    /// Descends the path by one segment for the duration of `f`.
    fn scoped(&mut self, seg: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.path.clone();
        if let Some(p) = &self.path {
            self.path = Some(p.child(seg));
        }
        f(self);
        self.path = saved;
    }

    fn name(&self, s: Sym) -> String {
        self.syms.name(s)
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn line(&mut self, text: &str) {
        self.pad();
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block_stmts(&mut self, block: &Block) {
        for (i, stmt) in block.stmts.iter().enumerate() {
            self.stmt(stmt, i);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, index: usize) {
        let lhs = stmt
            .syms
            .iter()
            .map(|s| self.name(*s))
            .collect::<Vec<_>>()
            .join(", ");
        let lhs = if stmt.syms.len() > 1 {
            format!("({lhs})")
        } else {
            lhs
        };
        match &stmt.op {
            Op::Expr(e) => {
                let e = self.expr(e);
                self.line(&format!("{lhs} = {e}"));
            }
            Op::Slice(s) => {
                let dims = self.dims(&s.dims);
                self.line(&format!("{lhs} = {}.slice({dims})", self.name(s.tensor)));
            }
            Op::Copy(c) => {
                let dims = self.dims(&c.dims);
                let reuse = if c.reuse > 1 {
                    format!(" /* reuse {} */", c.reuse)
                } else {
                    String::new()
                };
                self.line(&format!(
                    "{lhs} = {}.copy({dims}){reuse}",
                    self.name(c.tensor)
                ));
            }
            Op::VarVec(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|it| match &it.guard {
                        Some(g) => format!("if ({}) {}", self.expr(g), self.expr(&it.value)),
                        None => self.expr(&it.value),
                    })
                    .collect();
                self.line(&format!("{lhs} = [{}]", parts.join(", ")));
            }
            Op::Pattern(p) => {
                let at = self.path.as_ref().map(|b| b.stmt(self.syms, stmt, index));
                match at {
                    Some(at) => {
                        self.line(&format!("// at {at}"));
                        let saved = self.path.replace(at);
                        self.pattern(&lhs, p);
                        self.path = saved;
                    }
                    None => self.pattern(&lhs, p),
                }
            }
        }
    }

    fn dims(&self, dims: &[SliceDim]) -> String {
        dims.iter()
            .map(|d| match d {
                SliceDim::Point(e) => self.expr(e),
                SliceDim::Window { start, len } => {
                    format!("{} :+ {}", self.expr(start), len)
                }
                SliceDim::Full => "*".to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn sizes(sizes: &[crate::size::Size]) -> String {
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn pattern(&mut self, lhs: &str, p: &Pattern) {
        match p {
            Pattern::Map(m) => {
                let params = m
                    .body
                    .params
                    .iter()
                    .map(|s| self.name(*s))
                    .collect::<Vec<_>>()
                    .join(",");
                self.line(&format!(
                    "{lhs} = map({}){{ ({params}) =>",
                    Self::sizes(&m.domain)
                ));
                self.scoped("body", |p| p.nested(&m.body.body, true));
                self.line("}");
            }
            Pattern::MultiFold(mf) => {
                let accs = mf
                    .accs
                    .iter()
                    .map(|a| {
                        if a.shape.is_empty() {
                            "1".to_string()
                        } else {
                            format!("({})", Self::sizes(&a.shape))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let idx = mf
                    .idx
                    .iter()
                    .map(|s| self.name(*s))
                    .collect::<Vec<_>>()
                    .join(",");
                self.line(&format!(
                    "{lhs} = multiFold({})({accs})(init){{ ({idx}) =>",
                    Self::sizes(&mf.domain)
                ));
                self.indent += 1;
                self.scoped("pre", |p| p.block_stmts(&mf.pre));
                for (k, u) in mf.updates.iter().enumerate() {
                    let loc = u
                        .loc
                        .iter()
                        .map(|e| self.expr(e))
                        .collect::<Vec<_>>()
                        .join(",");
                    let loc = if u.loc.is_empty() {
                        "·".to_string()
                    } else {
                        loc
                    };
                    self.line(&format!(
                        "upd[{k}] @({loc}) : {} =>",
                        self.name(u.acc_param)
                    ));
                    self.scoped(&format!("update[{k}]"), |p| p.nested(&u.body, true));
                }
                self.indent -= 1;
                self.line("}{ (a,b) =>");
                self.indent += 1;
                for (k, c) in mf.combines.iter().enumerate() {
                    match c {
                        Some(l) => {
                            let params = l
                                .params
                                .iter()
                                .map(|s| self.name(*s))
                                .collect::<Vec<_>>()
                                .join(",");
                            self.line(&format!("combine({params}):"));
                            self.scoped(&format!("combine[{k}]"), |p| p.nested(&l.body, true));
                        }
                        None => self.line("_"),
                    }
                }
                self.indent -= 1;
                self.line("}");
            }
            Pattern::FlatMap(fm) => {
                let i = self.name(fm.body.params[0]);
                self.line(&format!("{lhs} = flatMap({}){{ {i} =>", fm.domain));
                self.scoped("body", |p| p.nested(&fm.body.body, true));
                self.line("}");
            }
            Pattern::GroupByFold(g) => {
                let i = self.name(g.idx);
                self.line(&format!("{lhs} = groupByFold({})(init){{ {i} =>", g.domain));
                self.indent += 1;
                self.scoped("pre", |p| p.block_stmts(&g.pre));
                match &g.body {
                    GbfBody::Element { key, update } => {
                        let key = self.expr(key);
                        self.line(&format!("key = {key}; {} =>", self.name(update.acc_param)));
                        self.scoped("update", |p| p.nested(&update.body, true));
                    }
                    GbfBody::Merge { dict } => {
                        self.line(&format!("merge {}", self.name(*dict)));
                    }
                }
                self.indent -= 1;
                self.line("}{ combine }");
            }
        }
    }

    fn nested(&mut self, block: &Block, with_result: bool) {
        self.indent += 1;
        self.block_stmts(block);
        if with_result && !block.result.is_empty() {
            let results: Vec<String> = block.result.iter().map(|s| self.name(*s)).collect();
            self.line(&format!("-> {}", results.join(", ")));
        }
        self.indent -= 1;
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Lit(l) => l.to_string(),
            Expr::Var(s) => self.name(*s),
            Expr::SizeOf(s) => s.to_string(),
            Expr::Un(op, a) => {
                let a = self.expr(a);
                match op {
                    UnOp::Neg => format!("-{a}"),
                    UnOp::Not => format!("!{a}"),
                    UnOp::Sqrt => format!("sqrt({a})"),
                    UnOp::Ln => format!("ln({a})"),
                    UnOp::Exp => format!("exp({a})"),
                    UnOp::Abs => format!("abs({a})"),
                    UnOp::Square => format!("square({a})"),
                    UnOp::ToF32 => format!("float({a})"),
                    UnOp::ToI32 => format!("int({a})"),
                }
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                match op {
                    BinOp::Min => format!("min({a}, {b})"),
                    BinOp::Max => format!("max({a}, {b})"),
                    _ => format!("({a} {} {b})", op.symbol()),
                }
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => format!(
                "if ({}) {} else {}",
                self.expr(cond),
                self.expr(if_true),
                self.expr(if_false)
            ),
            Expr::Tuple(es) => {
                let parts: Vec<String> = es.iter().map(|e| self.expr(e)).collect();
                format!("({})", parts.join(", "))
            }
            Expr::Field(a, i) => format!("{}._{}", self.expr(a), i + 1),
            Expr::Read { tensor, index } => {
                let idx: Vec<String> = index.iter().map(|e| self.expr(e)).collect();
                format!("{}({})", self.name(*tensor), idx.join(", "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Faithful emitter: canonical `.ppl` surface syntax
// ---------------------------------------------------------------------------

/// Reserved words of the textual PPL surface syntax. The frontend lexer
/// treats these as keywords; the emitter renames any symbol whose base name
/// collides with one. Kept here (next to the emitter) so lexer and emitter
/// cannot drift apart.
///
/// Clause words that only occur in unambiguous positions (`acc`, `pre`,
/// `update`, `combine`, `merge`, `key`, `splat`, `reuse`, `slice`, `copy`,
/// and the type names) are *contextual*: the parser matches them by text
/// where the grammar expects them, and they remain usable as ordinary
/// identifiers — builder programs routinely name symbols `acc` or `key`.
pub const KEYWORDS: &[&str] = &[
    "program",
    "input",
    "let",
    "return",
    "yield",
    "map",
    "multiFold",
    "fold",
    "flatMap",
    "groupByFold",
    "if",
    "else",
    "true",
    "false",
    "inf",
    "nan",
    "min",
    "max",
    "sqrt",
    "ln",
    "exp",
    "abs",
    "square",
    "float",
    "int",
    "neg",
    "tuple",
    "size",
];

/// Returns `true` if `s` is a reserved word of the surface syntax.
#[must_use]
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Emits the program in the canonical textual PPL surface syntax accepted
/// by the `pphw-frontend` parser.
///
/// Unlike [`print_program`] (a human-oriented rendering in the paper's
/// notation), this output is *faithful*: parsing it back yields a program
/// structurally equal to `prog` (see [`crate::equiv`]), and re-emitting the
/// parsed program reproduces the text byte-for-byte. Symbols are given
/// globally unique identifier names derived from their base names, so the
/// text carries no symbol ids.
#[must_use]
pub fn emit_program(prog: &Program) -> String {
    let mut e = Emitter {
        syms: &prog.syms,
        out: String::new(),
        indent: 0,
        names: std::collections::HashMap::new(),
        used: std::collections::HashSet::new(),
    };
    let _ = writeln!(
        e.out,
        "program {}({}) {{",
        sanitize_ident(&prog.name),
        prog.size_vars.join(", ")
    );
    e.indent = 1;
    for &i in &prog.inputs {
        let n = e.bind_name(i);
        let t = ty_text(prog.syms.ty(i));
        e.line(&format!("input {n}: {t}"));
    }
    for stmt in &prog.body.stmts {
        e.stmt(stmt);
    }
    let rs: Vec<String> = prog.body.result.iter().map(|s| e.name(*s)).collect();
    e.line(&format!("return ({})", rs.join(", ")));
    e.out.push_str("}\n");
    e.out
}

/// Forces `raw` into a non-keyword identifier shape.
fn sanitize_ident(raw: &str) -> String {
    let mut base: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if base.is_empty() || base.starts_with(|c: char| c.is_ascii_digit()) {
        base.insert(0, 'v');
    }
    if is_keyword(&base) {
        base.push('_');
    }
    base
}

fn dtype_text(d: crate::types::DType) -> &'static str {
    match d {
        crate::types::DType::F32 => "Float",
        crate::types::DType::I32 => "Int",
        crate::types::DType::Bool => "Bool",
    }
}

fn scalar_ty_text(st: &crate::types::ScalarType) -> String {
    match st {
        crate::types::ScalarType::Prim(d) => dtype_text(*d).to_string(),
        crate::types::ScalarType::Tuple(fs) => {
            let parts: Vec<&str> = fs.iter().map(|d| dtype_text(*d)).collect();
            format!("({})", parts.join(", "))
        }
    }
}

fn ty_text(ty: &crate::types::Type) -> String {
    use crate::types::Type;
    match ty {
        Type::Scalar(s) => scalar_ty_text(s),
        Type::Tensor { elem, shape } => {
            format!("{}[{}]", scalar_ty_text(elem), sizes_text(shape))
        }
        Type::DynVec { elem } => format!("{}[?]", scalar_ty_text(elem)),
        Type::Dict { key, value } => {
            format!("Dict[{} -> {}]", scalar_ty_text(key), ty_text(value))
        }
    }
}

/// Size expressions with every compound form parenthesized, so the parse
/// reproduces the structure exactly (the `Display` impl elides parentheses
/// around `*` and `/`, which is ambiguous).
fn size_text(s: &crate::size::Size) -> String {
    use crate::size::Size;
    match s {
        Size::Const(c) => c.to_string(),
        Size::Var(v) => v.clone(),
        Size::Add(a, b) => format!("({} + {})", size_text(a), size_text(b)),
        Size::Sub(a, b) => format!("({} - {})", size_text(a), size_text(b)),
        Size::Mul(a, b) => format!("({} * {})", size_text(a), size_text(b)),
        Size::Div(a, b) => format!("({} / {})", size_text(a), size_text(b)),
    }
}

fn sizes_text(sizes: &[crate::size::Size]) -> String {
    sizes.iter().map(size_text).collect::<Vec<_>>().join(", ")
}

/// Literals in re-parseable form: floats use the shortest round-trip
/// representation (always with `.` or an exponent), non-finite values the
/// `inf` / `-inf` / `nan` keywords.
fn lit_text(l: &crate::expr::Lit) -> String {
    use crate::expr::Lit;
    match l {
        Lit::F32(v) => {
            if v.is_nan() {
                "nan".to_string()
            } else if *v == f32::INFINITY {
                "inf".to_string()
            } else if *v == f32::NEG_INFINITY {
                "-inf".to_string()
            } else {
                format!("{v:?}")
            }
        }
        Lit::I32(v) => v.to_string(),
        Lit::Bool(v) => v.to_string(),
    }
}

struct Emitter<'a> {
    syms: &'a SymTable,
    out: String,
    indent: usize,
    names: std::collections::HashMap<Sym, String>,
    used: std::collections::HashSet<String>,
}

impl Emitter<'_> {
    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn line(&mut self, text: &str) {
        self.pad();
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Assigns (on first call) a globally unique identifier for `s`.
    fn bind_name(&mut self, s: Sym) -> String {
        if let Some(n) = self.names.get(&s) {
            return n.clone();
        }
        let base = sanitize_ident(&self.syms.info(s).name);
        let mut candidate = base.clone();
        let mut k = 1;
        while self.used.contains(&candidate) {
            k += 1;
            candidate = format!("{base}_{k}");
        }
        self.used.insert(candidate.clone());
        self.names.insert(s, candidate.clone());
        candidate
    }

    /// The already-assigned name of `s` (uses always follow bindings in
    /// emission order; the fallback covers invalid programs only).
    fn name(&self, s: Sym) -> String {
        self.names
            .get(&s)
            .cloned()
            .unwrap_or_else(|| format!("v{}", s.0))
    }

    fn stmt(&mut self, stmt: &Stmt) {
        let names: Vec<String> = stmt.syms.iter().map(|s| self.bind_name(*s)).collect();
        let lhs = if names.len() == 1 {
            names[0].clone()
        } else {
            format!("({})", names.join(", "))
        };
        match &stmt.op {
            Op::Expr(e) => {
                let t = self.expr_text(e);
                self.line(&format!("let {lhs} = {t}"));
            }
            Op::Slice(s) => {
                let dims = self.dims_text(&s.dims);
                self.line(&format!(
                    "let {lhs} = {}.slice({dims})",
                    self.name(s.tensor)
                ));
            }
            Op::Copy(c) => {
                let dims = self.dims_text(&c.dims);
                let reuse = if c.reuse == 1 {
                    String::new()
                } else {
                    format!(" reuse {}", c.reuse)
                };
                self.line(&format!(
                    "let {lhs} = {}.copy({dims}){reuse}",
                    self.name(c.tensor)
                ));
            }
            Op::VarVec(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|it| match &it.guard {
                        Some(g) => {
                            format!("if ({}) {}", self.expr_text(g), self.expr_text(&it.value))
                        }
                        None => self.expr_text(&it.value),
                    })
                    .collect();
                self.line(&format!("let {lhs} = [{}]", parts.join(", ")));
            }
            Op::Pattern(p) => self.emit_pattern(&lhs, p),
        }
    }

    /// Statements of a nested block followed by its `yield` (when the block
    /// has results), between braces the caller emits.
    fn body_block(&mut self, b: &Block) {
        self.indent += 1;
        for stmt in &b.stmts {
            self.stmt(stmt);
        }
        if !b.result.is_empty() {
            let rs: Vec<String> = b.result.iter().map(|s| self.name(*s)).collect();
            self.line(&format!("yield {}", rs.join(", ")));
        }
        self.indent -= 1;
    }

    fn acc_decl(&mut self, a: &crate::pattern::AccDef) -> String {
        let ty = if a.shape.is_empty() {
            scalar_ty_text(&a.elem)
        } else {
            format!("{}[{}]", scalar_ty_text(&a.elem), sizes_text(&a.shape))
        };
        let lits: Vec<String> = a.init.splat.iter().map(lit_text).collect();
        format!(
            "acc {}: {} = splat({})",
            sanitize_ident(&a.name),
            ty,
            lits.join(", ")
        )
    }

    fn emit_pattern(&mut self, lhs: &str, p: &Pattern) {
        match p {
            Pattern::Map(m) => {
                let params: Vec<String> =
                    m.body.params.iter().map(|s| self.bind_name(*s)).collect();
                self.line(&format!(
                    "let {lhs} = map({}) {{ ({}) =>",
                    sizes_text(&m.domain),
                    params.join(", ")
                ));
                self.body_block(&m.body.body);
                self.line("}");
            }
            Pattern::MultiFold(mf) => {
                self.line(&format!(
                    "let {lhs} = multiFold({}) {{",
                    sizes_text(&mf.domain)
                ));
                self.indent += 1;
                let acc_names: Vec<String> =
                    mf.accs.iter().map(|a| sanitize_ident(&a.name)).collect();
                for a in &mf.accs {
                    let decl = self.acc_decl(a);
                    self.line(&decl);
                }
                let idx: Vec<String> = mf.idx.iter().map(|s| self.bind_name(*s)).collect();
                self.line(&format!("({}) =>", idx.join(", ")));
                if !mf.pre.stmts.is_empty() || !mf.pre.result.is_empty() {
                    self.line("pre {");
                    self.body_block(&mf.pre);
                    self.line("}");
                }
                for (k, u) in mf.updates.iter().enumerate() {
                    let locs: Vec<String> = u.loc.iter().map(|e| self.expr_text(e)).collect();
                    let param = self.bind_name(u.acc_param);
                    let acc = acc_names.get(k).cloned().unwrap_or_else(|| "_".into());
                    self.line(&format!(
                        "update {acc} @ ({}) [{}] ({param}) {{",
                        locs.join(", "),
                        sizes_text(&u.shape)
                    ));
                    self.body_block(&u.body);
                    self.line("}");
                }
                for (k, c) in mf.combines.iter().enumerate() {
                    let acc = acc_names.get(k).cloned().unwrap_or_else(|| "_".into());
                    match c {
                        Some(l) => {
                            let params: Vec<String> =
                                l.params.iter().map(|s| self.bind_name(*s)).collect();
                            self.line(&format!("combine {acc} ({}) {{", params.join(", ")));
                            self.body_block(&l.body);
                            self.line("}");
                        }
                        None => self.line(&format!("combine {acc} _")),
                    }
                }
                self.indent -= 1;
                self.line("}");
            }
            Pattern::FlatMap(fm) => {
                let params: Vec<String> =
                    fm.body.params.iter().map(|s| self.bind_name(*s)).collect();
                self.line(&format!(
                    "let {lhs} = flatMap({}) {{ ({}) =>",
                    size_text(&fm.domain),
                    params.join(", ")
                ));
                self.body_block(&fm.body.body);
                self.line("}");
            }
            Pattern::GroupByFold(g) => {
                self.line(&format!(
                    "let {lhs} = groupByFold({}) {{",
                    size_text(&g.domain)
                ));
                self.indent += 1;
                let decl = self.acc_decl(&g.acc);
                self.line(&decl);
                let idx = self.bind_name(g.idx);
                self.line(&format!("({idx}) =>"));
                if !g.pre.stmts.is_empty() || !g.pre.result.is_empty() {
                    self.line("pre {");
                    self.body_block(&g.pre);
                    self.line("}");
                }
                match &g.body {
                    GbfBody::Element { key, update } => {
                        let k = self.expr_text(key);
                        self.line(&format!("key = {k}"));
                        let locs: Vec<String> =
                            update.loc.iter().map(|e| self.expr_text(e)).collect();
                        let param = self.bind_name(update.acc_param);
                        self.line(&format!(
                            "update @ ({}) [{}] ({param}) {{",
                            locs.join(", "),
                            sizes_text(&update.shape)
                        ));
                        self.body_block(&update.body);
                        self.line("}");
                    }
                    GbfBody::Merge { dict } => {
                        self.line(&format!("merge {}", self.name(*dict)));
                    }
                }
                let params: Vec<String> = g
                    .combine
                    .params
                    .iter()
                    .map(|s| self.bind_name(*s))
                    .collect();
                self.line(&format!("combine ({}) {{", params.join(", ")));
                self.body_block(&g.combine.body);
                self.line("}");
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    fn dims_text(&self, dims: &[SliceDim]) -> String {
        dims.iter()
            .map(|d| match d {
                SliceDim::Point(e) => self.expr_text(e),
                SliceDim::Window { start, len } => {
                    format!("{} :+ {}", self.expr_text(start), size_text(len))
                }
                SliceDim::Full => "*".to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Canonical expression text: binaries fully parenthesized, `min`/`max`
    /// as functions, `Select` as a parenthesized `if`, negation via `neg()`
    /// (a bare `-` always denotes a negative literal in the grammar).
    fn expr_text(&self, e: &Expr) -> String {
        match e {
            Expr::Lit(l) => lit_text(l),
            Expr::Var(s) => self.name(*s),
            Expr::SizeOf(s) => format!("size({})", size_text(s)),
            Expr::Un(op, a) => {
                let a = self.expr_text(a);
                match op {
                    UnOp::Neg => format!("neg({a})"),
                    UnOp::Not => format!("(!{a})"),
                    UnOp::Sqrt => format!("sqrt({a})"),
                    UnOp::Ln => format!("ln({a})"),
                    UnOp::Exp => format!("exp({a})"),
                    UnOp::Abs => format!("abs({a})"),
                    UnOp::Square => format!("square({a})"),
                    UnOp::ToF32 => format!("float({a})"),
                    UnOp::ToI32 => format!("int({a})"),
                }
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.expr_text(a), self.expr_text(b));
                match op {
                    BinOp::Min => format!("min({a}, {b})"),
                    BinOp::Max => format!("max({a}, {b})"),
                    _ => format!("({a} {} {b})", op.symbol()),
                }
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => format!(
                "(if ({}) {} else {})",
                self.expr_text(cond),
                self.expr_text(if_true),
                self.expr_text(if_false)
            ),
            Expr::Tuple(es) => {
                let parts: Vec<String> = es.iter().map(|e| self.expr_text(e)).collect();
                if es.len() >= 2 {
                    format!("({})", parts.join(", "))
                } else {
                    format!("tuple({})", parts.join(", "))
                }
            }
            Expr::Field(a, i) => format!("{}._{}", self.expr_text(a), i + 1),
            Expr::Read { tensor, index } => {
                let idx: Vec<String> = index.iter().map(|e| self.expr_text(e)).collect();
                format!("{}({})", self.name(*tensor), idx.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::DType;

    #[test]
    fn prints_map_program() {
        let mut b = ProgramBuilder::new("double");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let prog = b.finish(vec![out]);
        let text = print_program(&prog);
        assert!(text.contains("map(d)"), "got:\n{text}");
        assert!(text.contains("x_0("), "got:\n{text}");
    }

    #[test]
    fn prints_fold_with_combine() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            crate::types::ScalarType::Prim(DType::F32),
            crate::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let text = print_program(&prog);
        assert!(text.contains("multiFold(d)"), "got:\n{text}");
        assert!(text.contains("combine"), "got:\n{text}");
    }

    #[test]
    fn path_annotated_print_marks_patterns() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            crate::types::ScalarType::Prim(DType::F32),
            crate::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let plain = print_program(&prog);
        assert!(
            !plain.contains("// at "),
            "default output unchanged:\n{plain}"
        );
        let annotated = print_program_with_paths(&prog);
        assert!(annotated.contains("// at sum/sum[0]"), "got:\n{annotated}");
    }

    #[test]
    fn emit_is_canonical_surface_syntax() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            crate::types::ScalarType::Prim(DType::F32),
            crate::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let text = emit_program(&prog);
        assert!(text.starts_with("program sum(d) {\n"), "got:\n{text}");
        assert!(text.contains("input x: Float[d]"), "got:\n{text}");
        assert!(text.contains("multiFold(d) {"), "got:\n{text}");
        assert!(text.contains("acc sum: Float = splat(0.0)"), "got:\n{text}");
        assert!(text.contains("update sum @ () [] (acc) {"), "got:\n{text}");
        assert!(text.contains("combine sum (a, b) {"), "got:\n{text}");
        assert!(text.contains("yield"), "got:\n{text}");
        assert!(text.trim_end().ends_with('}'), "got:\n{text}");
        // No symbol ids leak into the canonical text.
        assert!(!text.contains("x_0"), "got:\n{text}");
    }

    #[test]
    fn emit_uniquifies_repeated_base_names() {
        // Two nested folds both mint `acc`, `a`, `b`, `upd`, `comb` bases.
        let mut b = ProgramBuilder::new("two");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let mk = |b: &mut ProgramBuilder, d: &crate::size::Size, x: Sym, name: &str| {
            b.fold(
                name,
                vec![d.clone()],
                vec![],
                crate::types::ScalarType::Prim(DType::F32),
                crate::pattern::Init::zeros(),
                |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        };
        let s1 = mk(&mut b, &d, x, "s1");
        let s2 = mk(&mut b, &d, x, "s2");
        let prog = b.finish(vec![s1, s2]);
        let text = emit_program(&prog);
        assert!(
            text.contains("(acc_2)"),
            "second acc param renamed:\n{text}"
        );
        assert!(
            text.contains("(a_2, b_2)"),
            "combine params renamed:\n{text}"
        );
    }

    #[test]
    fn emit_handles_special_floats_and_keyword_names() {
        let mut b = ProgramBuilder::new("arg");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        // `map` is both a keyword and the builder's output base name.
        let out = b.map(vec![d], |c, idx| {
            c.select(
                c.lt(c.read(x, vec![c.var(idx[0])]), c.f32(f32::MAX)),
                c.f32(f32::INFINITY),
                c.f32(f32::NEG_INFINITY),
            )
        });
        let prog = b.finish(vec![out]);
        let text = emit_program(&prog);
        assert!(
            text.contains("3.4028235e38"),
            "f32::MAX round-trips:\n{text}"
        );
        assert!(text.contains("inf"), "got:\n{text}");
        assert!(text.contains("-inf"), "got:\n{text}");
        assert!(!text.contains("let map ="), "keyword renamed:\n{text}");
        assert!(text.contains("let map_ ="), "got:\n{text}");
    }

    #[test]
    fn keyword_table_is_consistent() {
        assert!(is_keyword("multiFold"));
        // Clause words and type names are contextual, not reserved.
        assert!(!is_keyword("Float"));
        assert!(!is_keyword("acc"));
        assert!(!is_keyword("sums"));
        assert_eq!(sanitize_ident("map"), "map_");
        assert_eq!(sanitize_ident("9lives"), "v9lives");
        assert_eq!(sanitize_ident("a-b"), "a_b");
    }
}
