//! Pretty-printer producing paper-style PPL text.
//!
//! The output mirrors the notation of the paper's figures: patterns print
//! as `multiFold(n/b0)((k,d),k)(init){ ii => … }{ (a,b) => … }`, copies as
//! `points.copy(ii*b0 :+ b0, *)`, and slices as `points.slice(i, *)`.

use std::fmt::Write as _;

use crate::block::{Block, Op, SliceDim, Stmt};
use crate::expr::{BinOp, Expr, UnOp};
use crate::path::IrPath;
use crate::pattern::{GbfBody, Pattern};
use crate::program::Program;
use crate::types::{Sym, SymTable};

/// Renders a whole program.
pub fn print_program(prog: &Program) -> String {
    render_program(prog, None)
}

/// Like [`print_program`] but annotates every pattern statement with its
/// [`IrPath`] (`// at kmeans/sums[2]`) — the same paths verifier
/// diagnostics carry, so an error can be matched to a line of output.
pub fn print_program_with_paths(prog: &Program) -> String {
    render_program(prog, Some(IrPath::root(&prog.name)))
}

fn render_program(prog: &Program, path: Option<IrPath>) -> String {
    let mut p = Printer::new(&prog.syms);
    p.path = path;
    let _ = writeln!(p.out, "// program {}", prog.name);
    for i in &prog.inputs {
        let _ = writeln!(p.out, "{}: {}", prog.syms.name(*i), prog.syms.ty(*i));
    }
    p.block_stmts(&prog.body);
    let results: Vec<String> = prog.body.result.iter().map(|s| p.name(*s)).collect();
    let _ = writeln!(p.out, "return ({})", results.join(", "));
    p.out
}

/// Renders a single block (at indent level 0).
pub fn print_block(block: &Block, syms: &SymTable) -> String {
    let mut p = Printer::new(syms);
    p.block_stmts(block);
    p.out
}

struct Printer<'a> {
    syms: &'a SymTable,
    out: String,
    indent: usize,
    /// When set, pattern statements are annotated with their path and the
    /// path is threaded through nested blocks.
    path: Option<IrPath>,
}

impl<'a> Printer<'a> {
    fn new(syms: &'a SymTable) -> Self {
        Printer {
            syms,
            out: String::new(),
            indent: 0,
            path: None,
        }
    }

    /// Descends the path by one segment for the duration of `f`.
    fn scoped(&mut self, seg: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.path.clone();
        if let Some(p) = &self.path {
            self.path = Some(p.child(seg));
        }
        f(self);
        self.path = saved;
    }

    fn name(&self, s: Sym) -> String {
        self.syms.name(s)
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn line(&mut self, text: &str) {
        self.pad();
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block_stmts(&mut self, block: &Block) {
        for (i, stmt) in block.stmts.iter().enumerate() {
            self.stmt(stmt, i);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, index: usize) {
        let lhs = stmt
            .syms
            .iter()
            .map(|s| self.name(*s))
            .collect::<Vec<_>>()
            .join(", ");
        let lhs = if stmt.syms.len() > 1 {
            format!("({lhs})")
        } else {
            lhs
        };
        match &stmt.op {
            Op::Expr(e) => {
                let e = self.expr(e);
                self.line(&format!("{lhs} = {e}"));
            }
            Op::Slice(s) => {
                let dims = self.dims(&s.dims);
                self.line(&format!("{lhs} = {}.slice({dims})", self.name(s.tensor)));
            }
            Op::Copy(c) => {
                let dims = self.dims(&c.dims);
                let reuse = if c.reuse > 1 {
                    format!(" /* reuse {} */", c.reuse)
                } else {
                    String::new()
                };
                self.line(&format!(
                    "{lhs} = {}.copy({dims}){reuse}",
                    self.name(c.tensor)
                ));
            }
            Op::VarVec(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|it| match &it.guard {
                        Some(g) => format!("if ({}) {}", self.expr(g), self.expr(&it.value)),
                        None => self.expr(&it.value),
                    })
                    .collect();
                self.line(&format!("{lhs} = [{}]", parts.join(", ")));
            }
            Op::Pattern(p) => {
                let at = self.path.as_ref().map(|b| b.stmt(self.syms, stmt, index));
                match at {
                    Some(at) => {
                        self.line(&format!("// at {at}"));
                        let saved = self.path.replace(at);
                        self.pattern(&lhs, p);
                        self.path = saved;
                    }
                    None => self.pattern(&lhs, p),
                }
            }
        }
    }

    fn dims(&self, dims: &[SliceDim]) -> String {
        dims.iter()
            .map(|d| match d {
                SliceDim::Point(e) => self.expr(e),
                SliceDim::Window { start, len } => {
                    format!("{} :+ {}", self.expr(start), len)
                }
                SliceDim::Full => "*".to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn sizes(sizes: &[crate::size::Size]) -> String {
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn pattern(&mut self, lhs: &str, p: &Pattern) {
        match p {
            Pattern::Map(m) => {
                let params = m
                    .body
                    .params
                    .iter()
                    .map(|s| self.name(*s))
                    .collect::<Vec<_>>()
                    .join(",");
                self.line(&format!(
                    "{lhs} = map({}){{ ({params}) =>",
                    Self::sizes(&m.domain)
                ));
                self.scoped("body", |p| p.nested(&m.body.body, true));
                self.line("}");
            }
            Pattern::MultiFold(mf) => {
                let accs = mf
                    .accs
                    .iter()
                    .map(|a| {
                        if a.shape.is_empty() {
                            "1".to_string()
                        } else {
                            format!("({})", Self::sizes(&a.shape))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let idx = mf
                    .idx
                    .iter()
                    .map(|s| self.name(*s))
                    .collect::<Vec<_>>()
                    .join(",");
                self.line(&format!(
                    "{lhs} = multiFold({})({accs})(init){{ ({idx}) =>",
                    Self::sizes(&mf.domain)
                ));
                self.indent += 1;
                self.scoped("pre", |p| p.block_stmts(&mf.pre));
                for (k, u) in mf.updates.iter().enumerate() {
                    let loc = u
                        .loc
                        .iter()
                        .map(|e| self.expr(e))
                        .collect::<Vec<_>>()
                        .join(",");
                    let loc = if u.loc.is_empty() {
                        "·".to_string()
                    } else {
                        loc
                    };
                    self.line(&format!(
                        "upd[{k}] @({loc}) : {} =>",
                        self.name(u.acc_param)
                    ));
                    self.scoped(&format!("update[{k}]"), |p| p.nested(&u.body, true));
                }
                self.indent -= 1;
                self.line("}{ (a,b) =>");
                self.indent += 1;
                for (k, c) in mf.combines.iter().enumerate() {
                    match c {
                        Some(l) => {
                            let params = l
                                .params
                                .iter()
                                .map(|s| self.name(*s))
                                .collect::<Vec<_>>()
                                .join(",");
                            self.line(&format!("combine({params}):"));
                            self.scoped(&format!("combine[{k}]"), |p| p.nested(&l.body, true));
                        }
                        None => self.line("_"),
                    }
                }
                self.indent -= 1;
                self.line("}");
            }
            Pattern::FlatMap(fm) => {
                let i = self.name(fm.body.params[0]);
                self.line(&format!("{lhs} = flatMap({}){{ {i} =>", fm.domain));
                self.scoped("body", |p| p.nested(&fm.body.body, true));
                self.line("}");
            }
            Pattern::GroupByFold(g) => {
                let i = self.name(g.idx);
                self.line(&format!("{lhs} = groupByFold({})(init){{ {i} =>", g.domain));
                self.indent += 1;
                self.scoped("pre", |p| p.block_stmts(&g.pre));
                match &g.body {
                    GbfBody::Element { key, update } => {
                        let key = self.expr(key);
                        self.line(&format!("key = {key}; {} =>", self.name(update.acc_param)));
                        self.scoped("update", |p| p.nested(&update.body, true));
                    }
                    GbfBody::Merge { dict } => {
                        self.line(&format!("merge {}", self.name(*dict)));
                    }
                }
                self.indent -= 1;
                self.line("}{ combine }");
            }
        }
    }

    fn nested(&mut self, block: &Block, with_result: bool) {
        self.indent += 1;
        self.block_stmts(block);
        if with_result && !block.result.is_empty() {
            let results: Vec<String> = block.result.iter().map(|s| self.name(*s)).collect();
            self.line(&format!("-> {}", results.join(", ")));
        }
        self.indent -= 1;
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Lit(l) => l.to_string(),
            Expr::Var(s) => self.name(*s),
            Expr::SizeOf(s) => s.to_string(),
            Expr::Un(op, a) => {
                let a = self.expr(a);
                match op {
                    UnOp::Neg => format!("-{a}"),
                    UnOp::Not => format!("!{a}"),
                    UnOp::Sqrt => format!("sqrt({a})"),
                    UnOp::Ln => format!("ln({a})"),
                    UnOp::Exp => format!("exp({a})"),
                    UnOp::Abs => format!("abs({a})"),
                    UnOp::Square => format!("square({a})"),
                    UnOp::ToF32 => format!("float({a})"),
                    UnOp::ToI32 => format!("int({a})"),
                }
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                match op {
                    BinOp::Min => format!("min({a}, {b})"),
                    BinOp::Max => format!("max({a}, {b})"),
                    _ => format!("({a} {} {b})", op.symbol()),
                }
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => format!(
                "if ({}) {} else {}",
                self.expr(cond),
                self.expr(if_true),
                self.expr(if_false)
            ),
            Expr::Tuple(es) => {
                let parts: Vec<String> = es.iter().map(|e| self.expr(e)).collect();
                format!("({})", parts.join(", "))
            }
            Expr::Field(a, i) => format!("{}._{}", self.expr(a), i + 1),
            Expr::Read { tensor, index } => {
                let idx: Vec<String> = index.iter().map(|e| self.expr(e)).collect();
                format!("{}({})", self.name(*tensor), idx.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::DType;

    #[test]
    fn prints_map_program() {
        let mut b = ProgramBuilder::new("double");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let prog = b.finish(vec![out]);
        let text = print_program(&prog);
        assert!(text.contains("map(d)"), "got:\n{text}");
        assert!(text.contains("x_0("), "got:\n{text}");
    }

    #[test]
    fn prints_fold_with_combine() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            crate::types::ScalarType::Prim(DType::F32),
            crate::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let text = print_program(&prog);
        assert!(text.contains("multiFold(d)"), "got:\n{text}");
        assert!(text.contains("combine"), "got:\n{text}");
    }

    #[test]
    fn path_annotated_print_marks_patterns() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            crate::types::ScalarType::Prim(DType::F32),
            crate::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let plain = print_program(&prog);
        assert!(
            !plain.contains("// at "),
            "default output unchanged:\n{plain}"
        );
        let annotated = print_program_with_paths(&prog);
        assert!(annotated.contains("// at sum/sum[0]"), "got:\n{annotated}");
    }
}
