//! Types and symbols for PPL programs.
//!
//! Every value in a PPL program is either a *scalar* (a primitive or a flat
//! struct of primitives — the paper's "scalar or structure of scalars") or a
//! *tensor* (a multidimensional array of scalars, never a nested array).
//! Symbols are lightweight ids; names and types live in a [`SymTable`]
//! owned by the enclosing [`Program`](crate::program::Program).

use std::fmt;

use crate::size::Size;

/// Primitive element data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE float (the paper's benchmarks are all single precision).
    F32,
    /// 32-bit signed integer.
    I32,
    /// Boolean.
    Bool,
}

impl DType {
    /// Width of one element in bytes as stored in DRAM / on-chip buffers.
    pub fn bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::Bool => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "Float"),
            DType::I32 => write!(f, "Int"),
            DType::Bool => write!(f, "Bool"),
        }
    }
}

/// Scalar-level type: a primitive or a flat tuple of primitives.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// A single primitive value.
    Prim(DType),
    /// A flat struct of primitives, e.g. the `(dist, index)` pairs used by
    /// k-means reductions.
    Tuple(Vec<DType>),
}

impl ScalarType {
    /// Number of primitive fields (1 for a plain primitive).
    pub fn width(&self) -> usize {
        match self {
            ScalarType::Prim(_) => 1,
            ScalarType::Tuple(fs) => fs.len(),
        }
    }

    /// Total bytes of one scalar value.
    pub fn bytes(&self) -> u64 {
        match self {
            ScalarType::Prim(d) => d.bytes(),
            ScalarType::Tuple(fs) => fs.iter().map(|d| d.bytes()).sum(),
        }
    }

    /// The field type at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds for a tuple, or nonzero for a primitive.
    pub fn field(&self, i: usize) -> DType {
        match self {
            ScalarType::Prim(d) => {
                assert_eq!(i, 0, "field index {i} on primitive scalar");
                *d
            }
            ScalarType::Tuple(fs) => fs[i],
        }
    }
}

impl From<DType> for ScalarType {
    fn from(d: DType) -> Self {
        ScalarType::Prim(d)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Prim(d) => write!(f, "{d}"),
            ScalarType::Tuple(fs) => {
                write!(f, "(")?;
                for (i, d) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Type of any PPL value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar (primitive or flat tuple).
    Scalar(ScalarType),
    /// A multidimensional array of scalars.
    Tensor {
        /// Element type.
        elem: ScalarType,
        /// Extent of each dimension.
        shape: Vec<Size>,
    },
    /// A one-dimensional vector of dynamic length, produced by `FlatMap`.
    DynVec {
        /// Element type.
        elem: ScalarType,
    },
    /// The dynamically-sized key/value collection produced by `GroupByFold`.
    Dict {
        /// Key type.
        key: ScalarType,
        /// Value type (scalar buckets; tensor-valued buckets are represented
        /// as tensors of rank `shape.len()`).
        value: Box<Type>,
    },
}

impl Type {
    /// Scalar `F32` shorthand.
    pub fn f32() -> Type {
        Type::Scalar(ScalarType::Prim(DType::F32))
    }

    /// Scalar `I32` shorthand.
    pub fn i32() -> Type {
        Type::Scalar(ScalarType::Prim(DType::I32))
    }

    /// Scalar `Bool` shorthand.
    pub fn bool() -> Type {
        Type::Scalar(ScalarType::Prim(DType::Bool))
    }

    /// Tensor shorthand.
    pub fn tensor(elem: impl Into<ScalarType>, shape: Vec<Size>) -> Type {
        Type::Tensor {
            elem: elem.into(),
            shape,
        }
    }

    /// Returns the tensor shape, or `&[]` for scalars.
    pub fn shape(&self) -> &[Size] {
        match self {
            Type::Tensor { shape, .. } => shape,
            _ => &[],
        }
    }

    /// Returns the element/scalar type.
    ///
    /// # Panics
    ///
    /// Panics for `Dict` types, which have no single element type.
    pub fn elem(&self) -> &ScalarType {
        match self {
            Type::Scalar(s) => s,
            Type::Tensor { elem, .. } => elem,
            Type::DynVec { elem } => elem,
            Type::Dict { .. } => panic!("elem() on Dict type"),
        }
    }

    /// Rank of the value: 0 for scalars, number of dimensions for tensors.
    pub fn rank(&self) -> usize {
        self.shape().len()
    }

    /// Returns `true` if the type is a scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Tensor { elem, shape } => {
                write!(f, "{elem}[")?;
                for (i, s) in shape.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "]")
            }
            Type::DynVec { elem } => write!(f, "{elem}[?]"),
            Type::Dict { key, value } => write!(f, "Dict[{key} -> {value}]"),
        }
    }
}

/// A symbol: an id into the program's [`SymTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Index into the symbol table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Per-symbol metadata.
#[derive(Debug, Clone)]
pub struct SymInfo {
    /// Human-readable name used by the pretty-printer.
    pub name: String,
    /// Value type.
    pub ty: Type,
}

/// Table of all symbols in a program.
///
/// Fresh symbols are minted with [`SymTable::fresh`]; transformations that
/// create new bindings (strip mining, interchange, copy insertion) thread a
/// `&mut SymTable` through.
#[derive(Debug, Clone, Default)]
pub struct SymTable {
    entries: Vec<SymInfo>,
}

impl SymTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh symbol with the given name and type.
    pub fn fresh(&mut self, name: impl Into<String>, ty: Type) -> Sym {
        let sym = Sym(self.entries.len() as u32);
        self.entries.push(SymInfo {
            name: name.into(),
            ty,
        });
        sym
    }

    /// Looks up a symbol's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not minted by this table.
    pub fn info(&self, sym: Sym) -> &SymInfo {
        &self.entries[sym.index()]
    }

    /// The symbol's type.
    pub fn ty(&self, sym: Sym) -> &Type {
        &self.info(sym).ty
    }

    /// The symbol's display name (`name%id`).
    pub fn name(&self, sym: Sym) -> String {
        format!("{}_{}", self.entries[sym.index()].name, sym.0)
    }

    /// Replaces the type of `sym` (used when inference refines a type).
    pub fn set_ty(&mut self, sym: Sym, ty: Type) {
        self.entries[sym.index()].ty = ty;
    }

    /// Number of symbols minted so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no symbols have been minted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::Bool.bytes(), 1);
    }

    #[test]
    fn scalar_type_width_and_bytes() {
        let t = ScalarType::Tuple(vec![DType::F32, DType::I32]);
        assert_eq!(t.width(), 2);
        assert_eq!(t.bytes(), 8);
        assert_eq!(t.field(1), DType::I32);
        assert_eq!(ScalarType::from(DType::F32).width(), 1);
    }

    #[test]
    fn type_shape_and_rank() {
        let t = Type::tensor(DType::F32, vec![Size::var("n"), Size::var("d")]);
        assert_eq!(t.rank(), 2);
        assert!(!t.is_scalar());
        assert!(Type::f32().is_scalar());
        assert_eq!(Type::f32().rank(), 0);
    }

    #[test]
    fn display_forms() {
        let t = Type::tensor(DType::F32, vec![Size::var("n"), Size::var("d")]);
        assert_eq!(t.to_string(), "Float[n, d]");
        let s = ScalarType::Tuple(vec![DType::F32, DType::I32]);
        assert_eq!(s.to_string(), "(Float, Int)");
    }

    #[test]
    fn sym_table_fresh_and_lookup() {
        let mut tab = SymTable::new();
        let a = tab.fresh("x", Type::f32());
        let b = tab.fresh("y", Type::i32());
        assert_ne!(a, b);
        assert_eq!(tab.ty(a), &Type::f32());
        assert_eq!(tab.name(b), "y_1");
        assert_eq!(tab.len(), 2);
    }

    #[test]
    fn sym_table_set_ty() {
        let mut tab = SymTable::new();
        let a = tab.fresh("x", Type::f32());
        tab.set_ty(a, Type::i32());
        assert_eq!(tab.ty(a), &Type::i32());
    }
}
