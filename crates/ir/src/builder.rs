//! Ergonomic construction of PPL programs.
//!
//! [`ProgramBuilder`] mints symbols, tracks size variables and inputs, and
//! provides closure-based constructors for the common pattern shapes
//! (element-wise maps, folds, filters, group-by-folds). Pattern bodies are
//! built through a [`Ctx`], which provides the same constructors for
//! nesting plus scalar expression helpers.
//!
//! Irregular patterns (multi-accumulator `MultiFold`s like fused k-means)
//! can always be constructed directly from the [`crate::pattern`] structs
//! and installed with [`Ctx::push_pattern`].

use crate::block::{Block, CopyOp, GuardedItem, Op, SliceDim, SliceOp, Stmt};
use crate::expr::{BinOp, Expr, Lit, UnOp};
use crate::infer::infer_scalar_type;
use crate::pattern::{
    AccDef, AccUpdate, FlatMapPat, GbfBody, GroupByFoldPat, Init, Lambda, MapPat, MultiFoldPat,
    Pattern,
};
use crate::program::Program;
use crate::size::Size;
use crate::types::{DType, ScalarType, Sym, SymTable, Type};

/// The value returned from a body closure: either an expression (bound
/// automatically into the block) or a symbol already bound in the block.
#[derive(Debug, Clone)]
pub enum Ret {
    /// A scalar expression to be bound as the block result.
    Expr(Expr),
    /// An already-bound symbol (e.g. the result of a nested pattern).
    Sym(Sym),
}

impl From<Expr> for Ret {
    fn from(e: Expr) -> Ret {
        Ret::Expr(e)
    }
}

impl From<Sym> for Ret {
    fn from(s: Sym) -> Ret {
        Ret::Sym(s)
    }
}

/// Block-building context handed to body closures.
///
/// Statements created through the context accumulate into the block under
/// construction; expression helpers (`add`, `mul`, `read`, …) build pure
/// [`Expr`] trees without binding anything.
pub struct Ctx<'a> {
    syms: &'a mut SymTable,
    block: Block,
}

impl<'a> Ctx<'a> {
    fn new(syms: &'a mut SymTable) -> Self {
        Ctx {
            syms,
            block: Block::new(),
        }
    }

    /// Access to the symbol table (to mint symbols for hand-built patterns).
    pub fn syms(&mut self) -> &mut SymTable {
        self.syms
    }

    // ---- scalar expression helpers (pure; nothing is bound) ----

    /// Variable reference.
    pub fn var(&self, s: Sym) -> Expr {
        Expr::Var(s)
    }

    /// Float literal.
    pub fn f32(&self, v: f32) -> Expr {
        Expr::f32(v)
    }

    /// Integer literal.
    pub fn int(&self, v: i64) -> Expr {
        Expr::int(v)
    }

    /// A symbolic size as an integer value.
    pub fn size_of(&self, s: Size) -> Expr {
        Expr::SizeOf(s)
    }

    /// Addition.
    pub fn add(&self, a: Expr, b: Expr) -> Expr {
        a.add(b)
    }

    /// Subtraction.
    pub fn sub(&self, a: Expr, b: Expr) -> Expr {
        a.sub(b)
    }

    /// Multiplication.
    pub fn mul(&self, a: Expr, b: Expr) -> Expr {
        a.mul(b)
    }

    /// Division.
    pub fn div(&self, a: Expr, b: Expr) -> Expr {
        a.div(b)
    }

    /// Minimum of two values.
    pub fn min2(&self, a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(a), Box::new(b))
    }

    /// Maximum of two values.
    pub fn max2(&self, a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(a), Box::new(b))
    }

    /// Less-than comparison.
    pub fn lt(&self, a: Expr, b: Expr) -> Expr {
        a.lt(b)
    }

    /// Logical and.
    pub fn and(&self, a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(a), Box::new(b))
    }

    /// Conditional selection.
    pub fn select(&self, cond: Expr, t: Expr, f: Expr) -> Expr {
        Expr::select(cond, t, f)
    }

    /// Squared difference `(a-b)^2`.
    pub fn sq_diff(&self, a: Expr, b: Expr) -> Expr {
        a.sq_diff(b)
    }

    /// Square root.
    pub fn sqrt(&self, a: Expr) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(a))
    }

    /// Natural logarithm.
    pub fn ln(&self, a: Expr) -> Expr {
        Expr::Un(UnOp::Ln, Box::new(a))
    }

    /// Integer-to-float conversion.
    pub fn to_f32(&self, a: Expr) -> Expr {
        Expr::Un(UnOp::ToF32, Box::new(a))
    }

    /// Tuple construction.
    pub fn tuple(&self, es: Vec<Expr>) -> Expr {
        Expr::Tuple(es)
    }

    /// Tuple projection.
    pub fn field(&self, e: Expr, i: usize) -> Expr {
        e.field(i)
    }

    /// Tensor element read.
    pub fn read(&self, tensor: Sym, index: Vec<Expr>) -> Expr {
        Expr::read(tensor, index)
    }

    // ---- statement builders ----

    /// Binds a scalar expression to a fresh symbol.
    ///
    /// # Panics
    ///
    /// Panics if the expression is ill-typed.
    pub fn scalar(&mut self, name: &str, e: Expr) -> Sym {
        let ty = infer_scalar_type(&e, self.syms)
            .unwrap_or_else(|err| panic!("ill-typed expression for `{name}`: {err}"));
        let sym = self.syms.fresh(name, Type::Scalar(ty));
        self.block.push(sym, Op::Expr(e));
        sym
    }

    /// Binds a slice (view) of `tensor`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension specs don't match the tensor rank.
    pub fn slice(&mut self, name: &str, tensor: Sym, dims: Vec<SliceDim>) -> Sym {
        let ty = slice_result_type(self.syms.ty(tensor), &dims);
        let sym = self.syms.fresh(name, ty);
        self.block.push(sym, Op::Slice(SliceOp { tensor, dims }));
        sym
    }

    /// Binds an explicit tile copy of part of `tensor`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension specs don't match the tensor rank.
    pub fn copy(&mut self, name: &str, tensor: Sym, dims: Vec<SliceDim>) -> Sym {
        let ty = slice_result_type(self.syms.ty(tensor), &dims);
        let sym = self.syms.fresh(name, ty);
        self.block.push(
            sym,
            Op::Copy(CopyOp {
                tensor,
                dims,
                reuse: 1,
            }),
        );
        sym
    }

    /// Installs a hand-built pattern, binding one symbol per output.
    pub fn push_pattern(&mut self, outputs: Vec<(String, Type)>, pattern: Pattern) -> Vec<Sym> {
        assert_eq!(
            outputs.len(),
            pattern.output_count(),
            "pattern produces {} outputs",
            pattern.output_count()
        );
        let syms: Vec<Sym> = outputs
            .into_iter()
            .map(|(n, t)| self.syms.fresh(n, t))
            .collect();
        self.block.stmts.push(Stmt {
            syms: syms.clone(),
            op: Op::Pattern(pattern),
        });
        syms
    }

    fn seal(&mut self, name: &str, ret: Ret) -> Sym {
        match ret {
            Ret::Sym(s) => s,
            Ret::Expr(e) => self.scalar(name, e),
        }
    }

    /// Builds a detached block sharing this context's symbol table — the
    /// escape hatch for hand-constructing irregular patterns (e.g. the
    /// fused multi-accumulator k-means `MultiFold`) to install with
    /// [`Ctx::push_pattern`]. The closure's return value is passed through.
    pub fn block<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> (Block, R) {
        self.sub_block(f)
    }

    fn sub_block<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> (Block, R) {
        let mut inner = Ctx::new(self.syms);
        let r = f(&mut inner);
        (inner.block, r)
    }

    fn fresh_indices(&mut self, n: usize) -> Vec<Sym> {
        const NAMES: [&str; 4] = ["i", "j", "p", "q"];
        (0..n)
            .map(|k| {
                let name = NAMES.get(k).copied().unwrap_or("ix");
                self.syms.fresh(name, Type::i32())
            })
            .collect()
    }

    // ---- pattern builders ----

    /// `map(domain){ idx => body }` with a scalar body.
    pub fn map<R: Into<Ret>>(
        &mut self,
        domain: Vec<Size>,
        f: impl FnOnce(&mut Ctx<'_>, &[Sym]) -> R,
    ) -> Sym {
        let params = self.fresh_indices(domain.len());
        let (mut body, ret) = self.sub_block(|c| {
            let r = f(c, &params).into();
            c.seal("v", r)
        });
        body.result = vec![ret];
        let elem = match self.syms.ty(ret) {
            Type::Scalar(s) => s.clone(),
            other => panic!("map body must be scalar-typed, got {other}"),
        };
        let ty = Type::tensor(elem, domain.clone());
        let out = self.syms.fresh("map", ty);
        self.block.push(
            out,
            Op::Pattern(Pattern::Map(MapPat {
                domain,
                body: Lambda::new(params, body),
            })),
        );
        out
    }

    /// `fold(domain)(init){ (idx, acc) => update }{ (a,b) => combine }`:
    /// a full-accumulator `MultiFold` (scalar when `shape` is empty).
    #[allow(clippy::too_many_arguments)]
    pub fn fold<R1: Into<Ret>, R2: Into<Ret>>(
        &mut self,
        name: &str,
        domain: Vec<Size>,
        shape: Vec<Size>,
        elem: ScalarType,
        init: Init,
        update: impl FnOnce(&mut Ctx<'_>, &[Sym], Sym) -> R1,
        combine: impl FnOnce(&mut Ctx<'_>, Sym, Sym) -> R2,
    ) -> Sym {
        let idx = self.fresh_indices(domain.len());
        let acc_ty = region_type(&shape, &elem);
        let acc_param = self.syms.fresh("acc", acc_ty.clone());
        let (mut ub, ur) = self.sub_block(|c| {
            let r = update(c, &idx, acc_param).into();
            c.seal("upd", r)
        });
        ub.result = vec![ur];

        // Combines are scalar lambdas applied elementwise.
        let scalar_ty = Type::Scalar(elem.clone());
        let a = self.syms.fresh("a", scalar_ty.clone());
        let b = self.syms.fresh("b", scalar_ty);
        let (mut cb, cr) = self.sub_block(|c| {
            let r = combine(c, a, b).into();
            c.seal("comb", r)
        });
        cb.result = vec![cr];

        let pat = MultiFoldPat {
            domain,
            accs: vec![AccDef {
                name: name.to_string(),
                shape: shape.clone(),
                elem: elem.clone(),
                init,
            }],
            idx,
            pre: Block::new(),
            updates: vec![AccUpdate {
                loc: shape.iter().map(|_| Expr::int(0)).collect(),
                shape,
                acc_param,
                body: ub,
            }],
            combines: vec![Some(Lambda::new(vec![a, b], cb))],
        };
        let out = self.syms.fresh(name, acc_ty);
        self.block.push(out, Op::Pattern(Pattern::MultiFold(pat)));
        out
    }

    /// A single-accumulator `MultiFold` with per-index location: the body
    /// closure builds the shared (`pre`) computation and returns the update
    /// location, the updated-region shape, and a closure building the
    /// update body from the region parameter.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    pub fn multi_fold<R: Into<Ret>, R2: Into<Ret>>(
        &mut self,
        name: &str,
        domain: Vec<Size>,
        shape: Vec<Size>,
        elem: ScalarType,
        init: Init,
        body: impl FnOnce(
            &mut Ctx<'_>,
            &[Sym],
        ) -> (
            Vec<Expr>,
            Vec<Size>,
            Box<dyn FnOnce(&mut Ctx<'_>, Sym) -> R>,
        ),
        combine: Option<Box<dyn FnOnce(&mut Ctx<'_>, Sym, Sym) -> R2>>,
    ) -> Sym {
        let idx = self.fresh_indices(domain.len());
        let (pre, (loc, region, update)) = self.sub_block(|c| body(c, &idx));
        assert_eq!(
            loc.len(),
            shape.len(),
            "location arity must match accumulator rank"
        );
        let region_ty = region_type(&region, &elem);
        let acc_param = self.syms.fresh("acc", region_ty);
        let (mut ub, ur) = self.sub_block(|c| {
            let r = update(c, acc_param).into();
            c.seal("upd", r)
        });
        ub.result = vec![ur];

        let acc_ty = region_type(&shape, &elem);
        let combines = match combine {
            Some(cf) => {
                let scalar_ty = Type::Scalar(elem.clone());
                let a = self.syms.fresh("a", scalar_ty.clone());
                let b = self.syms.fresh("b", scalar_ty);
                let (mut cb, cr) = self.sub_block(|c| {
                    let r = cf(c, a, b).into();
                    c.seal("comb", r)
                });
                cb.result = vec![cr];
                vec![Some(Lambda::new(vec![a, b], cb))]
            }
            None => vec![None],
        };

        let pat = MultiFoldPat {
            domain,
            accs: vec![AccDef {
                name: name.to_string(),
                shape,
                elem,
                init,
            }],
            idx,
            pre,
            updates: vec![AccUpdate {
                loc,
                shape: region,
                acc_param,
                body: ub,
            }],
            combines,
        };
        let out = self.syms.fresh(name, acc_ty);
        self.block.push(out, Op::Pattern(Pattern::MultiFold(pat)));
        out
    }

    /// `flatMap(domain){ i => if guard [value] else [] }` — a filter.
    pub fn filter(
        &mut self,
        name: &str,
        domain: Size,
        f: impl FnOnce(&mut Ctx<'_>, Sym) -> (Expr, Expr),
    ) -> Sym {
        self.flat_map_items(name, domain, |c, i| {
            let (guard, value) = f(c, i);
            vec![GuardedItem {
                guard: Some(guard),
                value,
            }]
        })
    }

    /// `flatMap(domain){ i => [items…] }` with guarded items.
    pub fn flat_map_items(
        &mut self,
        name: &str,
        domain: Size,
        f: impl FnOnce(&mut Ctx<'_>, Sym) -> Vec<GuardedItem>,
    ) -> Sym {
        let i = self.syms.fresh("i", Type::i32());
        let (mut body, items) = self.sub_block(|c| f(c, i));
        let elem = infer_scalar_type(&items[0].value, self.syms)
            .unwrap_or_else(|e| panic!("ill-typed flatMap item: {e}"));
        let vv = self
            .syms
            .fresh("items", Type::DynVec { elem: elem.clone() });
        body.push(vv, Op::VarVec(items));
        body.result = vec![vv];
        let out = self.syms.fresh(name, Type::DynVec { elem });
        self.block.push(
            out,
            Op::Pattern(Pattern::FlatMap(FlatMapPat {
                domain,
                body: Lambda::new(vec![i], body),
            })),
        );
        out
    }

    /// `groupByFold(domain)(init){ i => (key, value) }{ (a,b) => combine }`
    /// with scalar buckets; the per-bucket update is `combine(acc, value)`.
    pub fn group_by_fold(
        &mut self,
        name: &str,
        domain: Size,
        elem: ScalarType,
        init: Init,
        body: impl FnOnce(&mut Ctx<'_>, Sym) -> (Expr, Expr),
        combine: impl Fn(Expr, Expr) -> Expr,
    ) -> Sym {
        let i = self.syms.fresh("i", Type::i32());
        let (pre, (key, value)) = self.sub_block(|c| body(c, i));
        let key_ty = infer_scalar_type(&key, self.syms)
            .unwrap_or_else(|e| panic!("ill-typed groupByFold key: {e}"));

        let acc_param = self.syms.fresh("acc", Type::Scalar(elem.clone()));
        let upd_expr = combine(Expr::Var(acc_param), value);
        let (mut ub, ur) = self.sub_block(|c| c.scalar("upd", upd_expr));
        ub.result = vec![ur];

        let a = self.syms.fresh("a", Type::Scalar(elem.clone()));
        let b = self.syms.fresh("b", Type::Scalar(elem.clone()));
        let comb_expr = combine(Expr::Var(a), Expr::Var(b));
        let (mut cb, cr) = self.sub_block(|c| c.scalar("comb", comb_expr));
        cb.result = vec![cr];

        let pat = GroupByFoldPat {
            domain,
            acc: AccDef {
                name: name.to_string(),
                shape: vec![],
                elem: elem.clone(),
                init,
            },
            idx: i,
            pre,
            body: GbfBody::Element {
                key,
                update: AccUpdate {
                    loc: vec![],
                    shape: vec![],
                    acc_param,
                    body: ub,
                },
            },
            combine: Lambda::new(vec![a, b], cb),
        };
        let out = self.syms.fresh(
            name,
            Type::Dict {
                key: key_ty,
                value: Box::new(Type::Scalar(elem)),
            },
        );
        self.block.push(out, Op::Pattern(Pattern::GroupByFold(pat)));
        out
    }
}

/// The type a region of the given shape binds as: leading unit dimensions
/// are squeezed so a `(1, d)` region binds as a `d`-vector and an all-unit
/// (or empty) region binds as a scalar, matching the paper's informal
/// update notation. The textual frontend uses the same rule when typing
/// accumulator parameters and `multiFold` outputs.
pub fn region_type(shape: &[Size], elem: &ScalarType) -> Type {
    let squeezed: Vec<Size> = shape
        .iter()
        .skip_while(|s| s.as_const() == Some(1))
        .cloned()
        .collect();
    if squeezed.is_empty() {
        Type::Scalar(elem.clone())
    } else {
        Type::Tensor {
            elem: elem.clone(),
            shape: squeezed,
        }
    }
}

/// Computes the result type of slicing `ty` with `dims`.
///
/// # Panics
///
/// Panics if `ty` is not a tensor or the spec arity mismatches.
pub fn slice_result_type(ty: &Type, dims: &[SliceDim]) -> Type {
    let (elem, shape) = match ty {
        Type::Tensor { elem, shape } => (elem.clone(), shape.clone()),
        other => panic!("slice of non-tensor type {other}"),
    };
    assert_eq!(dims.len(), shape.len(), "slice arity mismatch");
    let mut out = Vec::new();
    for (d, s) in dims.iter().zip(shape) {
        match d {
            SliceDim::Point(_) => {}
            SliceDim::Window { len, .. } => out.push(len.clone()),
            SliceDim::Full => out.push(s),
        }
    }
    if out.is_empty() {
        Type::Scalar(elem)
    } else {
        Type::Tensor { elem, shape: out }
    }
}

/// Builds a [`Program`] incrementally.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct ProgramBuilder {
    name: String,
    size_vars: Vec<String>,
    inputs: Vec<Sym>,
    syms: SymTable,
    block: Block,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            size_vars: Vec::new(),
            inputs: Vec::new(),
            syms: SymTable::new(),
            block: Block::new(),
        }
    }

    /// Declares a symbolic dimension and returns it as a [`Size`].
    pub fn size(&mut self, name: &str) -> Size {
        if !self.size_vars.iter().any(|v| v == name) {
            self.size_vars.push(name.to_string());
        }
        Size::var(name)
    }

    /// Declares a tensor input.
    pub fn input(&mut self, name: &str, elem: impl Into<ScalarType>, shape: Vec<Size>) -> Sym {
        let sym = self.syms.fresh(name, Type::tensor(elem, shape));
        self.inputs.push(sym);
        sym
    }

    /// Declares a scalar input.
    pub fn scalar_input(&mut self, name: &str, dtype: DType) -> Sym {
        let sym = self.syms.fresh(name, Type::Scalar(ScalarType::Prim(dtype)));
        self.inputs.push(sym);
        sym
    }

    /// Runs `f` with a context over the program's top-level block.
    pub fn with_ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut ctx = Ctx {
            syms: &mut self.syms,
            block: std::mem::take(&mut self.block),
        };
        let r = f(&mut ctx);
        self.block = ctx.block;
        r
    }

    /// Top-level `map`; see [`Ctx::map`].
    pub fn map<R: Into<Ret>>(
        &mut self,
        domain: Vec<Size>,
        f: impl FnOnce(&mut Ctx<'_>, &[Sym]) -> R,
    ) -> Sym {
        self.with_ctx(|c| c.map(domain, f))
    }

    /// Top-level `fold`; see [`Ctx::fold`].
    #[allow(clippy::too_many_arguments)]
    pub fn fold<R1: Into<Ret>, R2: Into<Ret>>(
        &mut self,
        name: &str,
        domain: Vec<Size>,
        shape: Vec<Size>,
        elem: ScalarType,
        init: Init,
        update: impl FnOnce(&mut Ctx<'_>, &[Sym], Sym) -> R1,
        combine: impl FnOnce(&mut Ctx<'_>, Sym, Sym) -> R2,
    ) -> Sym {
        self.with_ctx(|c| c.fold(name, domain, shape, elem, init, update, combine))
    }

    /// Top-level filter; see [`Ctx::filter`].
    pub fn filter(
        &mut self,
        name: &str,
        domain: Size,
        f: impl FnOnce(&mut Ctx<'_>, Sym) -> (Expr, Expr),
    ) -> Sym {
        self.with_ctx(|c| c.filter(name, domain, f))
    }

    /// Top-level group-by-fold; see [`Ctx::group_by_fold`].
    pub fn group_by_fold(
        &mut self,
        name: &str,
        domain: Size,
        elem: ScalarType,
        init: Init,
        body: impl FnOnce(&mut Ctx<'_>, Sym) -> (Expr, Expr),
        combine: impl Fn(Expr, Expr) -> Expr,
    ) -> Sym {
        self.with_ctx(|c| c.group_by_fold(name, domain, elem, init, body, combine))
    }

    /// Finishes the program with the given outputs.
    ///
    /// # Panics
    ///
    /// Panics if the constructed program fails structural validation —
    /// this indicates a builder-usage bug, not an input-data error.
    pub fn finish(mut self, outputs: Vec<Sym>) -> Program {
        self.block.result = outputs;
        let prog = Program::new(
            self.name,
            self.size_vars,
            self.inputs,
            self.block,
            self.syms,
        );
        if let Err(e) = prog.validate() {
            panic!("builder produced invalid program: {e}");
        }
        prog
    }
}

/// Literal helper: `lit(1.5f32)`, `lit(3i64)`.
pub fn lit_f32(v: f32) -> Lit {
    Lit::F32(v)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn build_simple_map() {
        let mut b = ProgramBuilder::new("double");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let prog = b.finish(vec![out]);
        assert_eq!(prog.outputs().len(), 1);
        assert_eq!(prog.size_vars, vec!["d".to_string()]);
        prog.validate().unwrap();
    }

    #[test]
    fn build_scalar_fold() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, idx, acc| c.add(c.var(acc), c.read(x, vec![c.var(idx[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        prog.validate().unwrap();
        assert_eq!(prog.ty(out), &Type::f32());
    }

    #[test]
    fn build_filter() {
        let mut b = ProgramBuilder::new("pos");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.filter("pos", d, |c, i| {
            let v = c.read(x, vec![c.var(i)]);
            (c.lt(c.f32(0.0), v.clone()), v)
        });
        let prog = b.finish(vec![out]);
        prog.validate().unwrap();
        assert!(matches!(prog.ty(out), Type::DynVec { .. }));
    }

    #[test]
    fn build_group_by_fold() {
        let mut b = ProgramBuilder::new("hist");
        let d = b.size("d");
        let x = b.input("x", DType::I32, vec![d.clone()]);
        let out = b.group_by_fold(
            "hist",
            d,
            ScalarType::Prim(DType::I32),
            Init::zero_i32(),
            |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
            |a, b| a.add(b),
        );
        let prog = b.finish(vec![out]);
        prog.validate().unwrap();
        assert!(matches!(prog.ty(out), Type::Dict { .. }));
    }

    #[test]
    fn nested_map_fold_builds() {
        // sumrows: x.map{ row => row.fold(0)(+) } as map over i of fold over j
        let mut b = ProgramBuilder::new("sumrows");
        let m = b.size("m");
        let n = b.size("n");
        let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
        let out = b.with_ctx(|c| {
            c.map(vec![m], |c, i| {
                let i = i[0];
                c.fold(
                    "rowsum",
                    vec![n],
                    vec![],
                    ScalarType::Prim(DType::F32),
                    Init::zeros(),
                    |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                    |c, a, b2| c.add(c.var(a), c.var(b2)),
                )
            })
        });
        let prog = b.finish(vec![out]);
        prog.validate().unwrap();
    }

    #[test]
    fn slice_result_type_drops_points() {
        let ty = Type::tensor(DType::F32, vec![Size::var("n"), Size::var("d")]);
        let r = slice_result_type(&ty, &[SliceDim::Point(Expr::int(0)), SliceDim::Full]);
        assert_eq!(r, Type::tensor(DType::F32, vec![Size::var("d")]));
    }

    #[test]
    #[should_panic(expected = "slice arity mismatch")]
    fn slice_arity_panics() {
        let ty = Type::tensor(DType::F32, vec![Size::var("n")]);
        let _ = slice_result_type(&ty, &[SliceDim::Full, SliceDim::Full]);
    }
}
