//! # pphw-ir — the parallel pattern language (PPL)
//!
//! The intermediate representation from *Generating Configurable Hardware
//! from Parallel Patterns*: four parallel patterns (`Map`, `MultiFold`,
//! `FlatMap`, `GroupByFold`) over multidimensional arrays, a scalar
//! expression language, symbolic sizes, slices and explicit tile copies,
//! plus a reference interpreter and the analyses (access patterns, shapes,
//! uses) that the tiling and hardware-generation passes build on.
//!
//! ## Quick tour
//!
//! ```
//! use pphw_ir::builder::ProgramBuilder;
//! use pphw_ir::types::DType;
//! use pphw_ir::interp::{Interpreter, Value};
//!
//! // map(d){ i => 2 * x(i) }
//! let mut b = ProgramBuilder::new("double");
//! let d = b.size("d");
//! let x = b.input("x", DType::F32, vec![d.clone()]);
//! let out = b.map(vec![d], |c, idx| {
//!     c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
//! });
//! let prog = b.finish(vec![out]);
//!
//! let input = Value::tensor_f32(&[3], vec![1.0, 2.0, 3.0]);
//! let out = Interpreter::new(&prog, &[("d", 3)]).run(vec![input]).unwrap();
//! assert_eq!(out[0].as_f32_slice(), vec![2.0, 4.0, 6.0]);
//! ```

pub mod access;
pub mod block;
pub mod builder;
pub mod equiv;
pub mod expr;
pub mod infer;
pub mod interp;
pub mod path;
pub mod pattern;
pub mod pretty;
pub mod program;
pub mod size;
pub mod span;
pub mod types;

pub use block::{Block, CopyOp, GuardedItem, Op, SliceDim, SliceOp, Stmt};
pub use equiv::{structural_diff, structural_eq};
pub use expr::{BinOp, Expr, Lit, UnOp};
pub use path::IrPath;
pub use pattern::{
    AccDef, AccUpdate, FlatMapPat, GbfBody, GroupByFoldPat, Init, Lambda, MapPat, MultiFoldPat,
    Pattern,
};
pub use program::{Program, ValidateError};
pub use size::{Size, SizeEnv};
pub use span::{SourceMap, Span};
pub use types::{DType, ScalarType, Sym, SymTable, Type};
