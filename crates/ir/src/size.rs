//! Symbolic size expressions.
//!
//! Pattern domains and tensor shapes in PPL are described by [`Size`]
//! expressions over named symbolic dimensions (`n`, `k`, `d`, …) and
//! integer constants. Tiling introduces strided domains such as `n / b0`,
//! which are represented structurally so that later analyses (cost models,
//! hardware sizing) can reason about them and evaluate them once concrete
//! dimension values are known.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A symbolic, non-negative integer size expression.
///
/// Sizes form a small arithmetic language closed under `+`, `-`, `*` and
/// exact division. Division is introduced by strip mining (`d / b`) and is
/// defined only when the divisor evenly divides the dividend; the tiling
/// driver validates divisibility before introducing it (the paper treats
/// ragged edges as a trivial extension via `min` checks and so do we — by
/// requiring the caller to pick dividing tile sizes).
///
/// # Examples
///
/// ```
/// use pphw_ir::size::Size;
/// let n = Size::var("n");
/// let tiles = n.clone() / Size::from(64);
/// let env = Size::env(&[("n", 1024)]);
/// assert_eq!(tiles.eval(&env), Ok(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Size {
    /// Integer constant.
    Const(i64),
    /// Named symbolic dimension.
    Var(String),
    /// Sum of two sizes.
    Add(Box<Size>, Box<Size>),
    /// Difference of two sizes.
    Sub(Box<Size>, Box<Size>),
    /// Product of two sizes.
    Mul(Box<Size>, Box<Size>),
    /// Exact division (strided tile-count domains).
    Div(Box<Size>, Box<Size>),
}

/// Environment assigning concrete values to symbolic dimensions.
pub type SizeEnv = BTreeMap<String, i64>;

/// Error produced when evaluating a [`Size`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeError {
    /// A symbolic dimension had no binding in the environment.
    Unbound(String),
    /// A division was not exact.
    Indivisible { dividend: i64, divisor: i64 },
    /// Division by zero.
    DivByZero,
    /// Evaluated to a negative value.
    Negative(i64),
}

impl fmt::Display for SizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeError::Unbound(v) => write!(f, "unbound size variable `{v}`"),
            SizeError::Indivisible { dividend, divisor } => {
                write!(f, "size division {dividend}/{divisor} is not exact")
            }
            SizeError::DivByZero => write!(f, "size division by zero"),
            SizeError::Negative(v) => write!(f, "size evaluated to negative value {v}"),
        }
    }
}

impl std::error::Error for SizeError {}

impl Size {
    /// Creates a symbolic dimension with the given name.
    pub fn var(name: impl Into<String>) -> Self {
        Size::Var(name.into())
    }

    /// Builds a [`SizeEnv`] from `(name, value)` pairs.
    pub fn env(pairs: &[(&str, i64)]) -> SizeEnv {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Evaluates the size under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`SizeError`] if a variable is unbound, a division is not
    /// exact, or the result is negative.
    pub fn eval(&self, env: &SizeEnv) -> Result<i64, SizeError> {
        let v = self.eval_inner(env)?;
        if v < 0 {
            return Err(SizeError::Negative(v));
        }
        Ok(v)
    }

    fn eval_inner(&self, env: &SizeEnv) -> Result<i64, SizeError> {
        match self {
            Size::Const(c) => Ok(*c),
            Size::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| SizeError::Unbound(v.clone())),
            Size::Add(a, b) => Ok(a.eval_inner(env)? + b.eval_inner(env)?),
            Size::Sub(a, b) => Ok(a.eval_inner(env)? - b.eval_inner(env)?),
            Size::Mul(a, b) => Ok(a.eval_inner(env)? * b.eval_inner(env)?),
            Size::Div(a, b) => {
                let (a, b) = (a.eval_inner(env)?, b.eval_inner(env)?);
                if b == 0 {
                    return Err(SizeError::DivByZero);
                }
                if a % b != 0 {
                    return Err(SizeError::Indivisible {
                        dividend: a,
                        divisor: b,
                    });
                }
                Ok(a / b)
            }
        }
    }

    /// Returns the constant value if this size is a literal constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.simplified() {
            Size::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns `true` if no symbolic variables occur in the size.
    pub fn is_static(&self) -> bool {
        match self {
            Size::Const(_) => true,
            Size::Var(_) => false,
            Size::Add(a, b) | Size::Sub(a, b) | Size::Mul(a, b) | Size::Div(a, b) => {
                a.is_static() && b.is_static()
            }
        }
    }

    /// Collects the names of all symbolic variables occurring in the size.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Size::Const(_) => {}
            Size::Var(v) => out.push(v.clone()),
            Size::Add(a, b) | Size::Sub(a, b) | Size::Mul(a, b) | Size::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Returns a structurally simplified copy (constant folding, neutral
    /// element elimination). Simplification is conservative: symbolic terms
    /// are never reordered.
    pub fn simplified(&self) -> Size {
        match self {
            Size::Const(_) | Size::Var(_) => self.clone(),
            Size::Add(a, b) => match (a.simplified(), b.simplified()) {
                (Size::Const(x), Size::Const(y)) => Size::Const(x + y),
                (Size::Const(0), s) | (s, Size::Const(0)) => s,
                (a, b) => Size::Add(Box::new(a), Box::new(b)),
            },
            Size::Sub(a, b) => match (a.simplified(), b.simplified()) {
                (Size::Const(x), Size::Const(y)) => Size::Const(x - y),
                (s, Size::Const(0)) => s,
                (a, b) if a == b => Size::Const(0),
                (a, b) => Size::Sub(Box::new(a), Box::new(b)),
            },
            Size::Mul(a, b) => match (a.simplified(), b.simplified()) {
                (Size::Const(x), Size::Const(y)) => Size::Const(x * y),
                (Size::Const(1), s) | (s, Size::Const(1)) => s,
                (Size::Const(0), _) | (_, Size::Const(0)) => Size::Const(0),
                // (n/b) * b  ==>  n  (tile count times tile size)
                (Size::Div(x, y), b) if *y == b => x.simplified(),
                (b, Size::Div(x, y)) if *y == b => x.simplified(),
                (a, b) => Size::Mul(Box::new(a), Box::new(b)),
            },
            Size::Div(a, b) => match (a.simplified(), b.simplified()) {
                (Size::Const(x), Size::Const(y)) if y != 0 && x % y == 0 => Size::Const(x / y),
                (s, Size::Const(1)) => s,
                (a, b) if a == b => Size::Const(1),
                // (x * b) / b  ==>  x   and   (b * x) / b  ==>  x
                (Size::Mul(x, y), b) if *y == b => x.simplified(),
                (Size::Mul(x, y), b) if *x == b => y.simplified(),
                (a, b) => Size::Div(Box::new(a), Box::new(b)),
            },
        }
    }
}

impl From<i64> for Size {
    fn from(v: i64) -> Self {
        Size::Const(v)
    }
}

impl From<&str> for Size {
    fn from(v: &str) -> Self {
        Size::Var(v.to_string())
    }
}

impl Add for Size {
    type Output = Size;
    fn add(self, rhs: Size) -> Size {
        Size::Add(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Sub for Size {
    type Output = Size;
    fn sub(self, rhs: Size) -> Size {
        Size::Sub(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Mul for Size {
    type Output = Size;
    fn mul(self, rhs: Size) -> Size {
        Size::Mul(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Div for Size {
    type Output = Size;
    fn div(self, rhs: Size) -> Size {
        Size::Div(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Size::Const(c) => write!(f, "{c}"),
            Size::Var(v) => write!(f, "{v}"),
            Size::Add(a, b) => write!(f, "({a} + {b})"),
            Size::Sub(a, b) => write!(f, "({a} - {b})"),
            Size::Mul(a, b) => write!(f, "{a}*{b}"),
            Size::Div(a, b) => write!(f, "{a}/{b}"),
        }
    }
}

/// Computes the product of a shape's extents as a single [`Size`].
pub fn shape_elems(shape: &[Size]) -> Size {
    shape.iter().cloned().fold(Size::Const(1), |a, b| a * b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval() {
        assert_eq!(Size::from(7).eval(&SizeEnv::new()), Ok(7));
    }

    #[test]
    fn var_eval_and_unbound() {
        let n = Size::var("n");
        assert_eq!(n.eval(&Size::env(&[("n", 12)])), Ok(12));
        assert_eq!(n.eval(&SizeEnv::new()), Err(SizeError::Unbound("n".into())));
    }

    #[test]
    fn arithmetic_eval() {
        let e = (Size::var("n") * Size::from(2) + Size::from(4)) / Size::from(4);
        assert_eq!(e.eval(&Size::env(&[("n", 6)])), Ok(4));
    }

    #[test]
    fn indivisible_errors() {
        let e = Size::var("n") / Size::from(5);
        assert_eq!(
            e.eval(&Size::env(&[("n", 7)])),
            Err(SizeError::Indivisible {
                dividend: 7,
                divisor: 5
            })
        );
    }

    #[test]
    fn div_by_zero_errors() {
        let e = Size::var("n") / Size::from(0);
        assert_eq!(e.eval(&Size::env(&[("n", 7)])), Err(SizeError::DivByZero));
    }

    #[test]
    fn negative_errors() {
        let e = Size::from(3) - Size::from(5);
        assert_eq!(e.eval(&SizeEnv::new()), Err(SizeError::Negative(-2)));
    }

    #[test]
    fn simplify_neutral_elements() {
        let n = Size::var("n");
        assert_eq!(n.clone() * Size::from(1), n);
        assert_eq!(n.clone() + Size::from(0), n);
        assert_eq!(n.clone() - n.clone(), Size::from(0));
        assert_eq!((n.clone() * Size::from(4)) / Size::from(4), n);
        assert_eq!(n.clone() / n.clone(), Size::from(1));
    }

    #[test]
    fn simplify_is_stable_on_symbolic() {
        let e = Size::var("n") / Size::var("b0");
        assert_eq!(e.simplified(), e);
    }

    #[test]
    fn vars_collects_unique_sorted() {
        let e = (Size::var("n") / Size::var("b")) + Size::var("b") + Size::var("n");
        assert_eq!(e.vars(), vec!["b".to_string(), "n".to_string()]);
    }

    #[test]
    fn tile_count_times_tile_cancels() {
        let e = (Size::var("n") / Size::var("b")) * Size::var("b");
        assert_eq!(e.simplified(), Size::var("n"));
    }

    #[test]
    fn is_static() {
        assert!((Size::from(6) / Size::from(2)).is_static());
        assert!(!(Size::var("n") / Size::from(2)).is_static());
    }

    #[test]
    fn shape_elems_product() {
        let s = shape_elems(&[Size::var("k"), Size::var("d")]);
        assert_eq!(s.eval(&Size::env(&[("k", 4), ("d", 8)])), Ok(32));
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Size::var("n") / Size::var("b0");
        assert_eq!(e.to_string(), "n/b0");
    }
}
