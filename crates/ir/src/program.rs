//! Whole-program container and structural validation.

use std::collections::BTreeSet;
use std::fmt;

use crate::block::{Block, Op, SliceDim};
use crate::pattern::Pattern;
use crate::size::Size;
use crate::types::{Sym, SymTable, Type};

/// A complete PPL program: symbolic sizes, tensor/scalar inputs, and a body
/// block whose results are the program outputs.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (used in reports and emitted HGL).
    pub name: String,
    /// Names of the symbolic dimensions the program is parameterized over.
    pub size_vars: Vec<String>,
    /// Input symbols (bound externally).
    pub inputs: Vec<Sym>,
    /// Program body; `body.result` are the outputs.
    pub body: Block,
    /// Symbol table covering every symbol in the program.
    pub syms: SymTable,
}

/// Structural validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A symbol is referenced before being bound.
    UnboundSym { sym: Sym, context: String },
    /// A symbol is bound more than once.
    Rebound { sym: Sym },
    /// A statement's symbol count doesn't match the operation's outputs.
    OutputArity {
        sym_count: usize,
        expected: usize,
        context: String,
    },
    /// Slice/copy dimension count doesn't match the tensor rank.
    DimArity {
        sym: Sym,
        got: usize,
        expected: usize,
    },
    /// A one-dimensional pattern was given a multidimensional domain.
    BadDomain { context: String },
    /// A size expression references an undeclared size variable.
    UnknownSizeVar { var: String },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnboundSym { sym, context } => {
                write!(f, "symbol {sym} referenced before binding in {context}")
            }
            ValidateError::Rebound { sym } => write!(f, "symbol {sym} bound more than once"),
            ValidateError::OutputArity {
                sym_count,
                expected,
                context,
            } => write!(
                f,
                "statement binds {sym_count} symbols but operation produces {expected} in {context}"
            ),
            ValidateError::DimArity { sym, got, expected } => write!(
                f,
                "slice of {sym} has {got} dimension specs but tensor has rank {expected}"
            ),
            ValidateError::BadDomain { context } => {
                write!(f, "one-dimensional pattern with non-1D domain in {context}")
            }
            ValidateError::UnknownSizeVar { var } => {
                write!(f, "size variable `{var}` not declared by the program")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Creates a program.
    pub fn new(
        name: impl Into<String>,
        size_vars: Vec<String>,
        inputs: Vec<Sym>,
        body: Block,
        syms: SymTable,
    ) -> Program {
        Program {
            name: name.into(),
            size_vars,
            inputs,
            body,
            syms,
        }
    }

    /// The program's output symbols.
    pub fn outputs(&self) -> &[Sym] {
        &self.body.result
    }

    /// Returns the type of a symbol.
    pub fn ty(&self, sym: Sym) -> &Type {
        self.syms.ty(sym)
    }

    /// Structurally validates the program: def-before-use, single binding,
    /// output arity, slice arity, 1-D restrictions, declared size variables.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] encountered.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut bound: BTreeSet<Sym> = self.inputs.iter().copied().collect();
        let declared: BTreeSet<&String> = self.size_vars.iter().collect();
        self.validate_block(&self.body, &mut bound, &declared, "program body")?;
        Ok(())
    }

    fn check_size(&self, size: &Size, declared: &BTreeSet<&String>) -> Result<(), ValidateError> {
        for v in size.vars() {
            if !declared.contains(&v) {
                return Err(ValidateError::UnknownSizeVar { var: v });
            }
        }
        Ok(())
    }

    fn validate_block(
        &self,
        block: &Block,
        bound: &mut BTreeSet<Sym>,
        declared: &BTreeSet<&String>,
        context: &str,
    ) -> Result<(), ValidateError> {
        for stmt in &block.stmts {
            // Check uses before binding outputs.
            match &stmt.op {
                Op::Expr(e) => self.check_syms(&e.syms(), bound, context)?,
                Op::VarVec(items) => {
                    for item in items {
                        if let Some(g) = &item.guard {
                            self.check_syms(&g.syms(), bound, context)?;
                        }
                        self.check_syms(&item.value.syms(), bound, context)?;
                    }
                }
                Op::Slice(s) => {
                    self.check_syms(&[s.tensor], bound, context)?;
                    self.check_dims(s.tensor, &s.dims, bound, declared, context)?;
                }
                Op::Copy(c) => {
                    self.check_syms(&[c.tensor], bound, context)?;
                    self.check_dims(c.tensor, &c.dims, bound, declared, context)?;
                }
                Op::Pattern(p) => {
                    self.validate_pattern(p, bound, declared)?;
                }
            }
            // Arity.
            let expected = match &stmt.op {
                Op::Pattern(p) => p.output_count(),
                _ => 1,
            };
            if stmt.syms.len() != expected {
                return Err(ValidateError::OutputArity {
                    sym_count: stmt.syms.len(),
                    expected,
                    context: context.to_string(),
                });
            }
            // Bind outputs.
            for s in &stmt.syms {
                if !bound.insert(*s) {
                    return Err(ValidateError::Rebound { sym: *s });
                }
            }
        }
        self.check_syms(&block.result, bound, context)?;
        Ok(())
    }

    fn check_dims(
        &self,
        tensor: Sym,
        dims: &[SliceDim],
        bound: &BTreeSet<Sym>,
        declared: &BTreeSet<&String>,
        context: &str,
    ) -> Result<(), ValidateError> {
        let rank = self.syms.ty(tensor).rank();
        if dims.len() != rank {
            return Err(ValidateError::DimArity {
                sym: tensor,
                got: dims.len(),
                expected: rank,
            });
        }
        for d in dims {
            match d {
                SliceDim::Point(e) => self.check_syms(&e.syms(), bound, context)?,
                SliceDim::Window { start, len } => {
                    self.check_syms(&start.syms(), bound, context)?;
                    self.check_size(len, declared)?;
                }
                SliceDim::Full => {}
            }
        }
        Ok(())
    }

    fn validate_pattern(
        &self,
        pattern: &Pattern,
        bound: &mut BTreeSet<Sym>,
        declared: &BTreeSet<&String>,
    ) -> Result<(), ValidateError> {
        for s in pattern.domain() {
            self.check_size(&s, declared)?;
        }
        let context = pattern.kind();
        match pattern {
            Pattern::Map(p) => {
                let mut inner = bound.clone();
                inner.extend(p.body.params.iter().copied());
                self.validate_block(&p.body.body, &mut inner, declared, context)?;
            }
            Pattern::MultiFold(p) => {
                for acc in &p.accs {
                    for s in &acc.shape {
                        self.check_size(s, declared)?;
                    }
                }
                let mut inner = bound.clone();
                inner.extend(p.idx.iter().copied());
                self.validate_block(&p.pre, &mut inner, declared, context)?;
                for u in &p.updates {
                    for e in &u.loc {
                        self.check_syms(&e.syms(), &inner, context)?;
                    }
                    for s in &u.shape {
                        self.check_size(s, declared)?;
                    }
                    let mut ub = inner.clone();
                    ub.insert(u.acc_param);
                    self.validate_block(&u.body, &mut ub, declared, context)?;
                }
                for c in p.combines.iter().flatten() {
                    let mut cb = bound.clone();
                    cb.extend(c.params.iter().copied());
                    self.validate_block(&c.body, &mut cb, declared, context)?;
                }
            }
            Pattern::FlatMap(p) => {
                let mut inner = bound.clone();
                inner.extend(p.body.params.iter().copied());
                self.validate_block(&p.body.body, &mut inner, declared, context)?;
            }
            Pattern::GroupByFold(p) => {
                let mut inner = bound.clone();
                inner.insert(p.idx);
                self.validate_block(&p.pre, &mut inner, declared, context)?;
                match &p.body {
                    crate::pattern::GbfBody::Element { key, update } => {
                        self.check_syms(&key.syms(), &inner, context)?;
                        let mut ub = inner.clone();
                        ub.insert(update.acc_param);
                        self.validate_block(&update.body, &mut ub, declared, context)?;
                    }
                    crate::pattern::GbfBody::Merge { dict } => {
                        self.check_syms(&[*dict], &inner, context)?;
                    }
                }
                let mut cb = bound.clone();
                cb.extend(p.combine.params.iter().copied());
                self.validate_block(&p.combine.body, &mut cb, declared, context)?;
            }
        }
        Ok(())
    }

    fn check_syms(
        &self,
        syms: &[Sym],
        bound: &BTreeSet<Sym>,
        context: &str,
    ) -> Result<(), ValidateError> {
        for s in syms {
            if !bound.contains(s) {
                return Err(ValidateError::UnboundSym {
                    sym: *s,
                    context: context.to_string(),
                });
            }
        }
        Ok(())
    }
}
