//! Human-readable paths to IR nodes.
//!
//! Diagnostics (and the annotated pretty-printer) name nodes by *path* —
//! e.g. `kmeans/sums[2]/pre/best[1]/combine[0]` — instead of a bare symbol
//! id. Each statement segment is the base name of the first symbol the
//! statement binds plus the statement's index in its block; descending into
//! a pattern appends the sub-block names the traversal passes through
//! (`pre`, `update[k]`, `combine[k]`, `body`, `key`, `merge`). Paths are
//! stable across symbol renumbering as long as the program structure is
//! unchanged, which is what lets the verifier's allowlist and test
//! assertions name nodes durably.

use std::fmt;

use crate::block::Stmt;
use crate::types::SymTable;

/// A `/`-separated path from the program root to an IR node.
///
/// Built functionally: [`IrPath::child`] returns an extended copy so a
/// traversal can hand sub-paths to recursive calls without unwinding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IrPath {
    segs: Vec<String>,
}

impl IrPath {
    /// The root path: just the program name.
    pub fn root(name: &str) -> IrPath {
        IrPath {
            segs: vec![name.to_string()],
        }
    }

    /// Returns this path extended by one segment.
    #[must_use]
    pub fn child(&self, seg: impl Into<String>) -> IrPath {
        let mut segs = self.segs.clone();
        segs.push(seg.into());
        IrPath { segs }
    }

    /// Returns this path extended by the segment naming `stmt` (the
    /// `index`-th statement of its block): `basename[index]`.
    #[must_use]
    pub fn stmt(&self, syms: &SymTable, stmt: &Stmt, index: usize) -> IrPath {
        self.child(stmt_segment(syms, stmt, index))
    }

    /// The path segments, root first.
    pub fn segments(&self) -> &[String] {
        &self.segs
    }
}

impl fmt::Display for IrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segs.join("/"))
    }
}

/// The path segment for a statement: the base name of its first bound
/// symbol plus its index in the enclosing block, e.g. `sums[2]`.
pub fn stmt_segment(syms: &SymTable, stmt: &Stmt, index: usize) -> String {
    let base = stmt
        .syms
        .first()
        .map(|s| syms.info(*s).name.as_str())
        .unwrap_or("stmt");
    format!("{base}[{index}]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Op, Stmt};
    use crate::expr::Expr;
    use crate::types::Type;

    #[test]
    fn paths_render_slash_separated() {
        let p = IrPath::root("kmeans").child("sums[2]").child("pre");
        assert_eq!(p.to_string(), "kmeans/sums[2]/pre");
        assert_eq!(p.segments().len(), 3);
    }

    #[test]
    fn child_does_not_mutate_parent() {
        let p = IrPath::root("prog");
        let _c = p.child("x[0]");
        assert_eq!(p.to_string(), "prog");
    }

    #[test]
    fn stmt_segment_uses_base_name_not_sym_id() {
        let mut syms = SymTable::new();
        let s = syms.fresh("acc", Type::f32());
        let stmt = Stmt::new(s, Op::Expr(Expr::int(0)));
        assert_eq!(stmt_segment(&syms, &stmt, 3), "acc[3]");
    }
}
