//! Blocks, statements and tensor-level operations.
//!
//! PPL programs are in let-normal form: a [`Block`] is an ordered list of
//! [`Stmt`]s, each binding one or more symbols to an [`Op`], followed by the
//! block's result symbols. Scalar computation is an [`Op::Expr`]; parallel
//! patterns, slices, and tile copies are tensor-level operations.

use crate::expr::Expr;
use crate::pattern::Pattern;
use crate::size::Size;
use crate::types::Sym;

/// One dimension of a slice or copy specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceDim {
    /// Fix this dimension at an index (removes the dimension).
    Point(Expr),
    /// A window `[start, start + len)` (keeps the dimension with extent `len`).
    Window {
        /// Starting offset (element units).
        start: Expr,
        /// Window extent.
        len: Size,
    },
    /// The whole dimension (keeps the dimension unchanged).
    Full,
}

impl SliceDim {
    /// Returns `true` if this dimension survives into the result shape.
    pub fn keeps_dim(&self) -> bool {
        !matches!(self, SliceDim::Point(_))
    }
}

/// A view of a subset of a tensor (`x.slice(i, *)` in the paper).
///
/// Slices are cheap views; they do not imply data movement.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceOp {
    /// Tensor being viewed.
    pub tensor: Sym,
    /// One entry per dimension of `tensor`.
    pub dims: Vec<SliceDim>,
}

/// An explicit tile copy (`x.copy(b + ii, *)` in the paper).
///
/// Copies are inserted by the strip-mining transformation and later become
/// on-chip buffers fed by tile-load units during hardware generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyOp {
    /// Source tensor (in main memory).
    pub tensor: Sym,
    /// One entry per dimension of `tensor`.
    pub dims: Vec<SliceDim>,
    /// Reuse factor metadata for overlapping tiles (sliding windows); `1`
    /// means disjoint tiles.
    pub reuse: u32,
}

/// A guarded element of a variable-length vector construction.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedItem {
    /// Optional guard; the element is produced only when it evaluates true.
    pub guard: Option<Expr>,
    /// The element value.
    pub value: Expr,
}

/// Right-hand sides of statements.
#[allow(clippy::large_enum_variant)] // Pattern is big; statements are few
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A pure scalar computation.
    Expr(Expr),
    /// A parallel pattern.
    Pattern(Pattern),
    /// A view of part of a tensor.
    Slice(SliceOp),
    /// An explicit tile copy into local memory.
    Copy(CopyOp),
    /// Construction of a dynamically-sized vector from guarded items, the
    /// scalar-level body of `FlatMap` (e.g. `if (e > 0) [e] else []`).
    VarVec(Vec<GuardedItem>),
}

impl Op {
    /// Returns the contained pattern, if this is a pattern statement.
    pub fn as_pattern(&self) -> Option<&Pattern> {
        match self {
            Op::Pattern(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable variant of [`Op::as_pattern`].
    pub fn as_pattern_mut(&mut self) -> Option<&mut Pattern> {
        match self {
            Op::Pattern(p) => Some(p),
            _ => None,
        }
    }
}

/// A statement binding `syms` to the result(s) of `op`.
///
/// Most operations produce a single value; a
/// [`MultiFold`](crate::pattern::MultiFoldPat) with several accumulators
/// binds one symbol per accumulator (the paper's
/// `(sums, counts) = multiFold(…)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Bound symbols.
    pub syms: Vec<Sym>,
    /// Right-hand side.
    pub op: Op,
}

impl Stmt {
    /// Single-output statement shorthand.
    pub fn new(sym: Sym, op: Op) -> Stmt {
        Stmt {
            syms: vec![sym],
            op,
        }
    }

    /// The single bound symbol.
    ///
    /// # Panics
    ///
    /// Panics if the statement binds more than one symbol.
    pub fn sym(&self) -> Sym {
        assert_eq!(self.syms.len(), 1, "stmt binds {} symbols", self.syms.len());
        self.syms[0]
    }
}

/// A straight-line sequence of statements with result symbols.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Ordered statements.
    pub stmts: Vec<Stmt>,
    /// Result symbols (empty for effect-free prefix blocks whose bindings
    /// are referenced by the enclosing pattern).
    pub result: Vec<Sym>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// A block consisting of the given statements and a single result.
    pub fn with_result(stmts: Vec<Stmt>, result: Sym) -> Block {
        Block {
            stmts,
            result: vec![result],
        }
    }

    /// The single result symbol.
    ///
    /// # Panics
    ///
    /// Panics if the block does not have exactly one result.
    pub fn result_sym(&self) -> Sym {
        assert_eq!(
            self.result.len(),
            1,
            "block has {} results",
            self.result.len()
        );
        self.result[0]
    }

    /// Appends a statement binding `sym` to `op`.
    pub fn push(&mut self, sym: Sym, op: Op) {
        self.stmts.push(Stmt::new(sym, op));
    }

    /// Visits this block and every nested block (pattern bodies, updates,
    /// combines), pre-order.
    pub fn visit_blocks<'a>(&'a self, f: &mut impl FnMut(&'a Block)) {
        f(self);
        for stmt in &self.stmts {
            if let Op::Pattern(p) = &stmt.op {
                for b in p.child_blocks() {
                    b.visit_blocks(f);
                }
            }
        }
    }

    /// Collects the symbols bound anywhere inside this block (including
    /// nested pattern bodies and their parameters).
    pub fn bound_syms(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_bound(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_bound(&self, out: &mut Vec<Sym>) {
        for stmt in &self.stmts {
            out.extend_from_slice(&stmt.syms);
            if let Op::Pattern(p) = &stmt.op {
                out.extend(p.param_syms());
                for b in p.child_blocks() {
                    b.collect_bound(out);
                }
            }
        }
    }

    /// Collects the free symbols of the block: every symbol referenced but
    /// not bound within it.
    pub fn free_syms(&self) -> Vec<Sym> {
        let bound: std::collections::BTreeSet<Sym> = self.bound_syms().into_iter().collect();
        let mut used = Vec::new();
        self.collect_used(&mut used);
        used.retain(|s| !bound.contains(s));
        used.sort();
        used.dedup();
        used
    }

    fn collect_used(&self, out: &mut Vec<Sym>) {
        for stmt in &self.stmts {
            match &stmt.op {
                Op::Expr(e) => out.extend(e.syms()),
                Op::Slice(s) => {
                    out.push(s.tensor);
                    for d in &s.dims {
                        collect_dim_syms(d, out);
                    }
                }
                Op::Copy(c) => {
                    out.push(c.tensor);
                    for d in &c.dims {
                        collect_dim_syms(d, out);
                    }
                }
                Op::VarVec(items) => {
                    for item in items {
                        if let Some(g) = &item.guard {
                            out.extend(g.syms());
                        }
                        out.extend(item.value.syms());
                    }
                }
                Op::Pattern(p) => p.collect_used(out),
            }
        }
        out.extend_from_slice(&self.result);
    }
}

pub(crate) fn collect_dim_syms(dim: &SliceDim, out: &mut Vec<Sym>) {
    match dim {
        SliceDim::Point(e) => out.extend(e.syms()),
        SliceDim::Window { start, .. } => out.extend(start.syms()),
        SliceDim::Full => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn stmt_single_sym() {
        let st = Stmt::new(s(1), Op::Expr(Expr::int(1)));
        assert_eq!(st.sym(), s(1));
    }

    #[test]
    #[should_panic(expected = "binds 2 symbols")]
    fn stmt_sym_panics_on_multi() {
        let st = Stmt {
            syms: vec![s(1), s(2)],
            op: Op::Expr(Expr::int(1)),
        };
        let _ = st.sym();
    }

    #[test]
    fn free_syms_excludes_bound() {
        let mut b = Block::new();
        b.push(s(1), Op::Expr(Expr::var(s(0)).add(Expr::int(1))));
        b.push(s(2), Op::Expr(Expr::var(s(1)).mul(Expr::var(s(3)))));
        b.result = vec![s(2)];
        assert_eq!(b.free_syms(), vec![s(0), s(3)]);
    }

    #[test]
    fn free_syms_sees_slice_tensor() {
        let mut b = Block::new();
        b.push(
            s(1),
            Op::Slice(SliceOp {
                tensor: s(7),
                dims: vec![SliceDim::Point(Expr::var(s(4))), SliceDim::Full],
            }),
        );
        b.result = vec![s(1)];
        assert_eq!(b.free_syms(), vec![s(4), s(7)]);
    }

    #[test]
    fn slice_dim_keeps_dim() {
        assert!(!SliceDim::Point(Expr::int(0)).keeps_dim());
        assert!(SliceDim::Full.keeps_dim());
        assert!(SliceDim::Window {
            start: Expr::int(0),
            len: Size::from(4)
        }
        .keeps_dim());
    }
}
