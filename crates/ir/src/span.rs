//! Byte-span source locations and the path→span side table.
//!
//! Programs constructed through the builder API have no source text, so
//! diagnostics locate nodes by [`IrPath`](crate::path::IrPath) alone.
//! Text-originated programs (parsed from `.ppl` files) additionally carry
//! a [`SourceMap`] mapping rendered path strings to byte [`Span`]s of the
//! source, which lets every downstream diagnostic render `file:line:col`
//! with a caret snippet. The map lives here — rather than in the frontend
//! crate — so the verifier can consume it without depending on the parser.

use std::collections::BTreeMap;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span; `end` is clamped to at least `start`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for zero-length spans (e.g. end-of-input errors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// 1-based line and column of `offset` within `src`.
///
/// Columns count characters, not bytes, so multi-byte input renders
/// sensibly; offsets past the end of `src` locate at the end.
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Renders the source line containing `span.start` with a caret marker
/// underneath, in the style of compiler diagnostics:
///
/// ```text
///   3 | let y = x(i,)
///     |             ^
/// ```
#[must_use]
pub fn caret_snippet(src: &str, span: Span) -> String {
    let (line_no, col) = line_col(src, span.start);
    let line = src.lines().nth(line_no - 1).unwrap_or("");
    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    let mut carets = "^".to_string();
    // Extend the marker across the span, but never past the line end.
    let span_chars = src
        .get(span.start..span.end.min(src.len()))
        .map_or(1, |s| s.chars().take_while(|c| *c != '\n').count());
    for _ in 1..span_chars.max(1) {
        carets.push('^');
    }
    format!(
        "{gutter} | {line}\n{pad} | {}{carets}",
        " ".repeat(col.saturating_sub(1))
    )
}

/// Side table from rendered [`IrPath`](crate::path::IrPath) strings to the
/// source spans they were parsed from.
///
/// Lookups fall back to the nearest recorded ancestor: a diagnostic at
/// `kmeans/sums[2]/update[0]/r[0]` resolves to the span recorded for
/// `kmeans/sums[2]/update[0]` (or `kmeans/sums[2]`, …) when the exact path
/// was not recorded. This keeps the map small — statements and pattern
/// clauses — while still locating every diagnostic the verifier can emit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Display name of the source file the spans index into.
    pub file: String,
    spans: BTreeMap<String, Span>,
}

impl SourceMap {
    /// An empty map for the given file name.
    #[must_use]
    pub fn new(file: impl Into<String>) -> SourceMap {
        SourceMap {
            file: file.into(),
            spans: BTreeMap::new(),
        }
    }

    /// Records the span for a rendered path (later records win).
    pub fn record(&mut self, path: impl Into<String>, span: Span) {
        self.spans.insert(path.into(), span);
    }

    /// Exact-match lookup, no ancestor fallback.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<Span> {
        self.spans.get(path).copied()
    }

    /// Looks up `path`, falling back to the nearest recorded ancestor
    /// (trimming `/`-separated segments from the right).
    #[must_use]
    pub fn lookup(&self, path: &str) -> Option<Span> {
        let mut p = path;
        loop {
            if let Some(s) = self.spans.get(p) {
                return Some(*s);
            }
            match p.rfind('/') {
                Some(cut) => p = &p[..cut],
                None => return None,
            }
        }
    }

    /// Number of recorded paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over `(path, span)` entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Span)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 999), (3, 3));
    }

    #[test]
    fn caret_points_at_column() {
        let src = "let x = 1\nlet y = ?\n";
        let snip = caret_snippet(src, Span::new(18, 19));
        assert_eq!(snip, "2 | let y = ?\n  |         ^");
    }

    #[test]
    fn caret_spans_multiple_chars() {
        let src = "abcdef";
        let snip = caret_snippet(src, Span::new(1, 4));
        assert_eq!(snip, "1 | abcdef\n  |  ^^^");
    }

    #[test]
    fn source_map_ancestor_fallback() {
        let mut m = SourceMap::new("t.ppl");
        m.record("p/x[0]", Span::new(3, 9));
        m.record("p/x[0]/update[1]", Span::new(5, 7));
        assert_eq!(m.lookup("p/x[0]/update[1]/r[0]"), Some(Span::new(5, 7)));
        assert_eq!(m.lookup("p/x[0]/pre/q[2]"), Some(Span::new(3, 9)));
        assert_eq!(m.lookup("q/z[1]"), None);
        assert_eq!(m.get("p/x[0]"), Some(Span::new(3, 9)));
        assert_eq!(m.get("p/x[0]/pre"), None);
    }

    #[test]
    fn span_merge_and_len() {
        let s = Span::new(4, 6).merge(Span::new(1, 5));
        assert_eq!(s, Span::new(1, 6));
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }
}
