//! Structural (alpha-) equivalence of programs.
//!
//! Two programs are structurally equal when they differ at most in symbol
//! *ids* and display names: same patterns, same expression trees, same
//! types, same sizes (up to [`Size::simplified`]), with a consistent
//! bijection between their symbols built in traversal order. This is the
//! equality the textual frontend is tested against — a parsed `.ppl`
//! benchmark mints fresh symbols in its own order, so `PartialEq` on
//! [`Program`] bodies would spuriously fail.
//!
//! Floats are compared by bit pattern, so `f32::MAX` survives a
//! print/parse round trip and `-0.0 != 0.0`.

use std::collections::BTreeMap;

use crate::block::{Block, GuardedItem, Op, SliceDim};
use crate::expr::{Expr, Lit};
use crate::pattern::{AccDef, AccUpdate, GbfBody, Lambda, Pattern};
use crate::program::Program;
use crate::size::Size;
use crate::types::{Sym, SymTable, Type};

/// Returns `true` when `a` and `b` are structurally equal (see module docs).
#[must_use]
pub fn structural_eq(a: &Program, b: &Program) -> bool {
    structural_diff(a, b).is_none()
}

/// Returns `None` when the programs are structurally equal, or a
/// human-readable description of the first difference found.
#[must_use]
pub fn structural_diff(a: &Program, b: &Program) -> Option<String> {
    let mut m = Matcher {
        a: &a.syms,
        b: &b.syms,
        a2b: BTreeMap::new(),
        b2a: BTreeMap::new(),
    };
    m.program(a, b).err()
}

type Res = Result<(), String>;

fn sizes_eq(a: &[Size], b: &[Size]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.simplified() == y.simplified())
}

fn size_eq(a: &Size, b: &Size) -> bool {
    a.simplified() == b.simplified()
}

fn ty_eq(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Scalar(x), Type::Scalar(y)) => x == y,
        (
            Type::Tensor {
                elem: ea,
                shape: sa,
            },
            Type::Tensor {
                elem: eb,
                shape: sb,
            },
        ) => ea == eb && sizes_eq(sa, sb),
        (Type::DynVec { elem: ea }, Type::DynVec { elem: eb }) => ea == eb,
        (Type::Dict { key: ka, value: va }, Type::Dict { key: kb, value: vb }) => {
            ka == kb && ty_eq(va, vb)
        }
        _ => false,
    }
}

fn lit_eq(a: &Lit, b: &Lit) -> bool {
    match (a, b) {
        (Lit::F32(x), Lit::F32(y)) => x.to_bits() == y.to_bits(),
        (Lit::I32(x), Lit::I32(y)) => x == y,
        (Lit::Bool(x), Lit::Bool(y)) => x == y,
        _ => false,
    }
}

struct Matcher<'a> {
    a: &'a SymTable,
    b: &'a SymTable,
    a2b: BTreeMap<Sym, Sym>,
    b2a: BTreeMap<Sym, Sym>,
}

impl Matcher<'_> {
    fn program(&mut self, a: &Program, b: &Program) -> Res {
        if a.name != b.name {
            return Err(format!("program name: `{}` vs `{}`", a.name, b.name));
        }
        if a.size_vars != b.size_vars {
            return Err(format!("size vars: {:?} vs {:?}", a.size_vars, b.size_vars));
        }
        if a.inputs.len() != b.inputs.len() {
            return Err(format!(
                "input count: {} vs {}",
                a.inputs.len(),
                b.inputs.len()
            ));
        }
        for (i, (&x, &y)) in a.inputs.iter().zip(&b.inputs).enumerate() {
            self.bind(x, y, &format!("input #{i}"))?;
        }
        self.block(&a.body, &b.body, "body")
    }

    /// Records that `x` corresponds to `y`, checking type equality and
    /// bijection consistency.
    fn bind(&mut self, x: Sym, y: Sym, at: &str) -> Res {
        if !ty_eq(self.a.ty(x), self.b.ty(y)) {
            return Err(format!(
                "{at}: type of {} is {} but {} is {}",
                self.a.name(x),
                self.a.ty(x),
                self.b.name(y),
                self.b.ty(y)
            ));
        }
        if let Some(prev) = self.a2b.insert(x, y) {
            if prev != y {
                return Err(format!("{at}: symbol {} bound twice", self.a.name(x)));
            }
        }
        if let Some(prev) = self.b2a.insert(y, x) {
            if prev != x {
                return Err(format!("{at}: symbol {} bound twice", self.b.name(y)));
            }
        }
        Ok(())
    }

    /// Checks that a *use* of `x` corresponds to a use of `y`.
    fn use_eq(&self, x: Sym, y: Sym, at: &str) -> Res {
        if self.a2b.get(&x) == Some(&y) {
            Ok(())
        } else {
            Err(format!(
                "{at}: `{}` does not correspond to `{}`",
                self.a.name(x),
                self.b.name(y)
            ))
        }
    }

    fn block(&mut self, a: &Block, b: &Block, at: &str) -> Res {
        if a.stmts.len() != b.stmts.len() {
            return Err(format!(
                "{at}: {} statements vs {}",
                a.stmts.len(),
                b.stmts.len()
            ));
        }
        for (i, (sa, sb)) in a.stmts.iter().zip(&b.stmts).enumerate() {
            let here = format!("{at}/stmt[{i}]");
            self.op(&sa.op, &sb.op, &here)?;
            if sa.syms.len() != sb.syms.len() {
                return Err(format!(
                    "{here}: binds {} symbols vs {}",
                    sa.syms.len(),
                    sb.syms.len()
                ));
            }
            for (&x, &y) in sa.syms.iter().zip(&sb.syms) {
                self.bind(x, y, &here)?;
            }
        }
        if a.result.len() != b.result.len() {
            return Err(format!(
                "{at}: {} results vs {}",
                a.result.len(),
                b.result.len()
            ));
        }
        for (&x, &y) in a.result.iter().zip(&b.result) {
            self.use_eq(x, y, &format!("{at}/result"))?;
        }
        Ok(())
    }

    fn op(&mut self, a: &Op, b: &Op, at: &str) -> Res {
        match (a, b) {
            (Op::Expr(x), Op::Expr(y)) => self.expr(x, y, at),
            (Op::Slice(x), Op::Slice(y)) => {
                self.use_eq(x.tensor, y.tensor, at)?;
                self.dims(&x.dims, &y.dims, at)
            }
            (Op::Copy(x), Op::Copy(y)) => {
                self.use_eq(x.tensor, y.tensor, at)?;
                if x.reuse != y.reuse {
                    return Err(format!("{at}: reuse {} vs {}", x.reuse, y.reuse));
                }
                self.dims(&x.dims, &y.dims, at)
            }
            (Op::VarVec(xs), Op::VarVec(ys)) => {
                if xs.len() != ys.len() {
                    return Err(format!("{at}: {} items vs {}", xs.len(), ys.len()));
                }
                for (x, y) in xs.iter().zip(ys) {
                    self.guarded(x, y, at)?;
                }
                Ok(())
            }
            (Op::Pattern(x), Op::Pattern(y)) => self.pattern(x, y, at),
            _ => Err(format!("{at}: different statement kinds")),
        }
    }

    fn guarded(&mut self, a: &GuardedItem, b: &GuardedItem, at: &str) -> Res {
        match (&a.guard, &b.guard) {
            (Some(x), Some(y)) => self.expr(x, y, at)?,
            (None, None) => {}
            _ => return Err(format!("{at}: guard present on one side only")),
        }
        self.expr(&a.value, &b.value, at)
    }

    fn dims(&mut self, a: &[SliceDim], b: &[SliceDim], at: &str) -> Res {
        if a.len() != b.len() {
            return Err(format!("{at}: {} dims vs {}", a.len(), b.len()));
        }
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (SliceDim::Full, SliceDim::Full) => {}
                (SliceDim::Point(ex), SliceDim::Point(ey)) => self.expr(ex, ey, at)?,
                (
                    SliceDim::Window { start: sx, len: lx },
                    SliceDim::Window { start: sy, len: ly },
                ) => {
                    self.expr(sx, sy, at)?;
                    if !size_eq(lx, ly) {
                        return Err(format!("{at}: window length {lx} vs {ly}"));
                    }
                }
                _ => return Err(format!("{at}: different slice dimension kinds")),
            }
        }
        Ok(())
    }

    fn expr(&self, a: &Expr, b: &Expr, at: &str) -> Res {
        match (a, b) {
            (Expr::Lit(x), Expr::Lit(y)) => {
                if lit_eq(x, y) {
                    Ok(())
                } else {
                    Err(format!("{at}: literal {x} vs {y}"))
                }
            }
            (Expr::Var(x), Expr::Var(y)) => self.use_eq(*x, *y, at),
            (Expr::SizeOf(x), Expr::SizeOf(y)) => {
                if size_eq(x, y) {
                    Ok(())
                } else {
                    Err(format!("{at}: size {x} vs {y}"))
                }
            }
            (Expr::Un(opx, x), Expr::Un(opy, y)) => {
                if opx != opy {
                    return Err(format!("{at}: unary {opx:?} vs {opy:?}"));
                }
                self.expr(x, y, at)
            }
            (Expr::Bin(opx, xa, xb), Expr::Bin(opy, ya, yb)) => {
                if opx != opy {
                    return Err(format!("{at}: binary {opx:?} vs {opy:?}"));
                }
                self.expr(xa, ya, at)?;
                self.expr(xb, yb, at)
            }
            (
                Expr::Select {
                    cond: cx,
                    if_true: tx,
                    if_false: fx,
                },
                Expr::Select {
                    cond: cy,
                    if_true: ty,
                    if_false: fy,
                },
            ) => {
                self.expr(cx, cy, at)?;
                self.expr(tx, ty, at)?;
                self.expr(fx, fy, at)
            }
            (Expr::Tuple(xs), Expr::Tuple(ys)) => {
                if xs.len() != ys.len() {
                    return Err(format!("{at}: tuple arity {} vs {}", xs.len(), ys.len()));
                }
                for (x, y) in xs.iter().zip(ys) {
                    self.expr(x, y, at)?;
                }
                Ok(())
            }
            (Expr::Field(x, i), Expr::Field(y, j)) => {
                if i != j {
                    return Err(format!("{at}: field {i} vs {j}"));
                }
                self.expr(x, y, at)
            }
            (
                Expr::Read {
                    tensor: tx,
                    index: ix,
                },
                Expr::Read {
                    tensor: ty,
                    index: iy,
                },
            ) => {
                self.use_eq(*tx, *ty, at)?;
                if ix.len() != iy.len() {
                    return Err(format!("{at}: read arity {} vs {}", ix.len(), iy.len()));
                }
                for (x, y) in ix.iter().zip(iy) {
                    self.expr(x, y, at)?;
                }
                Ok(())
            }
            _ => Err(format!("{at}: different expression kinds")),
        }
    }

    fn acc_def(&mut self, a: &AccDef, b: &AccDef, at: &str) -> Res {
        if a.name != b.name {
            return Err(format!("{at}: accumulator `{}` vs `{}`", a.name, b.name));
        }
        if !sizes_eq(&a.shape, &b.shape) {
            return Err(format!("{at}: accumulator `{}` shape differs", a.name));
        }
        if a.elem != b.elem {
            return Err(format!(
                "{at}: accumulator `{}` element {} vs {}",
                a.name, a.elem, b.elem
            ));
        }
        if a.init.splat.len() != b.init.splat.len()
            || !a
                .init
                .splat
                .iter()
                .zip(&b.init.splat)
                .all(|(x, y)| lit_eq(x, y))
        {
            return Err(format!("{at}: accumulator `{}` init differs", a.name));
        }
        Ok(())
    }

    /// Checks an update clause; locations are compared *before* binding the
    /// accumulator parameter, mirroring its scope.
    fn update(&mut self, a: &AccUpdate, b: &AccUpdate, at: &str) -> Res {
        if a.loc.len() != b.loc.len() {
            return Err(format!(
                "{at}: loc arity {} vs {}",
                a.loc.len(),
                b.loc.len()
            ));
        }
        for (x, y) in a.loc.iter().zip(&b.loc) {
            self.expr(x, y, at)?;
        }
        if !sizes_eq(&a.shape, &b.shape) {
            return Err(format!("{at}: update region shape differs"));
        }
        self.bind(a.acc_param, b.acc_param, at)?;
        self.block(&a.body, &b.body, at)
    }

    fn lambda(&mut self, a: &Lambda, b: &Lambda, at: &str) -> Res {
        if a.params.len() != b.params.len() {
            return Err(format!(
                "{at}: {} params vs {}",
                a.params.len(),
                b.params.len()
            ));
        }
        for (&x, &y) in a.params.iter().zip(&b.params) {
            self.bind(x, y, at)?;
        }
        self.block(&a.body, &b.body, at)
    }

    fn pattern(&mut self, a: &Pattern, b: &Pattern, at: &str) -> Res {
        match (a, b) {
            (Pattern::Map(x), Pattern::Map(y)) => {
                if !sizes_eq(&x.domain, &y.domain) {
                    return Err(format!("{at}: map domain differs"));
                }
                self.lambda(&x.body, &y.body, &format!("{at}/body"))
            }
            (Pattern::MultiFold(x), Pattern::MultiFold(y)) => {
                if !sizes_eq(&x.domain, &y.domain) {
                    return Err(format!("{at}: multiFold domain differs"));
                }
                if x.accs.len() != y.accs.len() {
                    return Err(format!(
                        "{at}: {} accumulators vs {}",
                        x.accs.len(),
                        y.accs.len()
                    ));
                }
                for (ax, ay) in x.accs.iter().zip(&y.accs) {
                    self.acc_def(ax, ay, at)?;
                }
                if x.idx.len() != y.idx.len() {
                    return Err(format!("{at}: index arity differs"));
                }
                for (&ix, &iy) in x.idx.iter().zip(&y.idx) {
                    self.bind(ix, iy, at)?;
                }
                self.block(&x.pre, &y.pre, &format!("{at}/pre"))?;
                if x.updates.len() != y.updates.len() {
                    return Err(format!("{at}: update count differs"));
                }
                for (k, (ux, uy)) in x.updates.iter().zip(&y.updates).enumerate() {
                    self.update(ux, uy, &format!("{at}/update[{k}]"))?;
                }
                if x.combines.len() != y.combines.len() {
                    return Err(format!("{at}: combine count differs"));
                }
                for (k, (cx, cy)) in x.combines.iter().zip(&y.combines).enumerate() {
                    match (cx, cy) {
                        (Some(lx), Some(ly)) => {
                            self.lambda(lx, ly, &format!("{at}/combine[{k}]"))?;
                        }
                        (None, None) => {}
                        _ => {
                            return Err(format!("{at}/combine[{k}]: `_` on one side only"));
                        }
                    }
                }
                Ok(())
            }
            (Pattern::FlatMap(x), Pattern::FlatMap(y)) => {
                if !size_eq(&x.domain, &y.domain) {
                    return Err(format!("{at}: flatMap domain differs"));
                }
                self.lambda(&x.body, &y.body, &format!("{at}/body"))
            }
            (Pattern::GroupByFold(x), Pattern::GroupByFold(y)) => {
                if !size_eq(&x.domain, &y.domain) {
                    return Err(format!("{at}: groupByFold domain differs"));
                }
                self.acc_def(&x.acc, &y.acc, at)?;
                self.bind(x.idx, y.idx, at)?;
                self.block(&x.pre, &y.pre, &format!("{at}/pre"))?;
                match (&x.body, &y.body) {
                    (
                        GbfBody::Element {
                            key: kx,
                            update: ux,
                        },
                        GbfBody::Element {
                            key: ky,
                            update: uy,
                        },
                    ) => {
                        self.expr(kx, ky, &format!("{at}/key"))?;
                        self.update(ux, uy, &format!("{at}/update"))?;
                    }
                    (GbfBody::Merge { dict: dx }, GbfBody::Merge { dict: dy }) => {
                        self.use_eq(*dx, *dy, &format!("{at}/merge"))?;
                    }
                    _ => return Err(format!("{at}: element body vs merge body")),
                }
                self.lambda(&x.combine, &y.combine, &format!("{at}/combine"))
            }
            _ => Err(format!("{at}: pattern {} vs {}", a.kind(), b.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::Init;
    use crate::types::{DType, ScalarType};

    fn sum_program(name: &str, lit: f32) -> Program {
        let mut b = ProgramBuilder::new(name);
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, i, acc| {
                let scaled = c.mul(c.f32(lit), c.read(x, vec![c.var(i[0])]));
                c.add(c.var(acc), scaled)
            },
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        b.finish(vec![out])
    }

    #[test]
    fn identical_programs_are_equal() {
        let a = sum_program("sum", 2.0);
        let b = sum_program("sum", 2.0);
        assert_eq!(structural_diff(&a, &b), None);
        assert!(structural_eq(&a, &b));
    }

    #[test]
    fn sym_ids_do_not_matter() {
        // Mint a few throwaway symbols first so every id shifts.
        let a = sum_program("sum", 2.0);
        let mut b = ProgramBuilder::new("sum");
        let _ = b.size("d");
        b.with_ctx(|c| {
            let _ = c.syms().fresh("pad0", Type::f32());
            let _ = c.syms().fresh("pad1", Type::i32());
        });
        let d = Size::var("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, i, acc| {
                let scaled = c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])]));
                c.add(c.var(acc), scaled)
            },
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let b = b.finish(vec![out]);
        assert!(structural_eq(&a, &b));
    }

    #[test]
    fn literal_difference_is_reported() {
        let a = sum_program("sum", 2.0);
        let b = sum_program("sum", 3.0);
        let diff = structural_diff(&a, &b).unwrap_or_default();
        assert!(diff.contains("literal"), "got: {diff}");
    }

    #[test]
    fn name_difference_is_reported() {
        let a = sum_program("sum", 2.0);
        let b = sum_program("sum2", 2.0);
        assert!(!structural_eq(&a, &b));
    }

    #[test]
    fn float_bits_distinguish_negative_zero() {
        let mk = |v: f32| {
            let mut b = ProgramBuilder::new("z");
            let d = b.size("d");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.map(vec![d], |c, idx| {
                c.add(c.f32(v), c.read(x, vec![c.var(idx[0])]))
            });
            b.finish(vec![out])
        };
        assert!(structural_eq(&mk(0.0), &mk(0.0)));
        assert!(!structural_eq(&mk(0.0), &mk(-0.0)));
    }

    #[test]
    fn sizes_compare_simplified() {
        let mk = |d: Size| {
            let mut b = ProgramBuilder::new("m");
            let _ = b.size("d");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
            b.finish(vec![out])
        };
        let plain = mk(Size::var("d"));
        let padded = mk(Size::Add(
            Box::new(Size::var("d")),
            Box::new(Size::Const(0)),
        ));
        assert!(structural_eq(&plain, &padded));
    }
}
