//! Reference interpreter for PPL programs.
//!
//! Executes programs sequentially with exact functional semantics; it is
//! the ground truth every transformation is validated against (the tiled
//! program must compute the same values as the original) and the oracle
//! the hardware simulator's functional results are checked against.

use std::collections::BTreeMap;
use std::fmt;

use crate::block::{Block, Op, SliceDim};
use crate::expr::{BinOp, Expr, Lit, UnOp};
use crate::pattern::{AccDef, AccUpdate, GbfBody, Pattern};
use crate::program::Program;
use crate::size::{Size, SizeEnv, SizeError};
use crate::types::Sym;

/// A scalar runtime value (primitive or flat tuple).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarVal {
    /// Float.
    F(f32),
    /// Integer.
    I(i64),
    /// Boolean.
    B(bool),
    /// Flat tuple.
    Tuple(Vec<ScalarVal>),
}

impl ScalarVal {
    /// Extracts a float (converting integers).
    ///
    /// # Panics
    ///
    /// Panics on booleans or tuples.
    pub fn as_f32(&self) -> f32 {
        match self {
            ScalarVal::F(v) => *v,
            ScalarVal::I(v) => *v as f32,
            other => panic!("not a float: {other:?}"),
        }
    }

    /// Extracts an integer.
    ///
    /// # Panics
    ///
    /// Panics unless the value is an integer.
    pub fn as_i64(&self) -> i64 {
        match self {
            ScalarVal::I(v) => *v,
            other => panic!("not an integer: {other:?}"),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Panics
    ///
    /// Panics unless the value is a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            ScalarVal::B(v) => *v,
            other => panic!("not a bool: {other:?}"),
        }
    }
}

impl From<Lit> for ScalarVal {
    fn from(l: Lit) -> ScalarVal {
        match l {
            Lit::F32(v) => ScalarVal::F(v),
            Lit::I32(v) => ScalarVal::I(v),
            Lit::Bool(v) => ScalarVal::B(v),
        }
    }
}

/// A dense tensor value in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorVal {
    /// Extent of each dimension.
    pub shape: Vec<usize>,
    /// Elements, row-major.
    pub data: Vec<ScalarVal>,
}

impl TensorVal {
    /// Creates a tensor, checking that `data.len()` matches the shape.
    ///
    /// # Panics
    ///
    /// Panics on a shape/data length mismatch.
    pub fn new(shape: Vec<usize>, data: Vec<ScalarVal>) -> TensorVal {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "tensor shape/data mismatch");
        TensorVal { shape, data }
    }

    /// Row-major linear offset of `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index arity mismatches.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index arity mismatch");
        let mut off = 0;
        for (i, d) in index.iter().zip(&self.shape) {
            off = off * d + i;
        }
        off
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Any runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Scalar(ScalarVal),
    /// A fixed-shape tensor.
    Tensor(TensorVal),
    /// A dynamically sized vector (`FlatMap` output).
    DynVec(Vec<ScalarVal>),
    /// Keyed buckets (`GroupByFold` output), in first-insertion order.
    Dict(Vec<(ScalarVal, Value)>),
}

impl Value {
    /// Builds an f32 tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics on a shape/data length mismatch.
    pub fn tensor_f32(shape: &[usize], data: Vec<f32>) -> Value {
        Value::Tensor(TensorVal::new(
            shape.to_vec(),
            data.into_iter().map(ScalarVal::F).collect(),
        ))
    }

    /// Builds an i32 tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics on a shape/data length mismatch.
    pub fn tensor_i32(shape: &[usize], data: Vec<i64>) -> Value {
        Value::Tensor(TensorVal::new(
            shape.to_vec(),
            data.into_iter().map(ScalarVal::I).collect(),
        ))
    }

    /// Scalar f32 shorthand.
    pub fn scalar_f32(v: f32) -> Value {
        Value::Scalar(ScalarVal::F(v))
    }

    /// Flattens a tensor/dynvec/scalar into a `Vec<f32>`, flattening tuple
    /// fields in order (booleans become 0/1).
    ///
    /// # Panics
    ///
    /// Panics on `Dict` values.
    pub fn as_f32_slice(&self) -> Vec<f32> {
        fn flat(s: &ScalarVal, out: &mut Vec<f32>) {
            match s {
                ScalarVal::F(v) => out.push(*v),
                ScalarVal::I(v) => out.push(*v as f32),
                ScalarVal::B(v) => out.push(if *v { 1.0 } else { 0.0 }),
                ScalarVal::Tuple(fs) => fs.iter().for_each(|f| flat(f, out)),
            }
        }
        let mut out = Vec::new();
        match self {
            Value::Scalar(s) => flat(s, &mut out),
            Value::Tensor(t) => t.data.iter().for_each(|s| flat(s, &mut out)),
            Value::DynVec(v) => v.iter().for_each(|s| flat(s, &mut out)),
            Value::Dict(_) => panic!("as_f32_slice on Dict"),
        }
        out
    }

    /// Returns the scalar, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<&ScalarVal> {
        match self {
            Value::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the tensor, if this is a tensor value.
    pub fn as_tensor(&self) -> Option<&TensorVal> {
        match self {
            Value::Tensor(t) => Some(t),
            _ => None,
        }
    }

    /// Compares numeric contents against another value within `tol`,
    /// ignoring scalar/1-element-tensor representation differences.
    pub fn approx_eq(&self, other: &Value, tol: f32) -> bool {
        match (self, other) {
            (Value::Dict(a), Value::Dict(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                // Order-insensitive comparison by key.
                a.iter().all(|(k, v)| {
                    b.iter()
                        .find(|(k2, _)| k2 == k)
                        .is_some_and(|(_, v2)| v.approx_eq(v2, tol))
                })
            }
            (Value::Dict(_), _) | (_, Value::Dict(_)) => false,
            _ => {
                let (a, b) = (self.as_f32_slice(), other.as_f32_slice());
                a.len() == b.len()
                    && a.iter().zip(&b).all(|(x, y)| {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        (x - y).abs() <= tol * scale
                    })
            }
        }
    }
}

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A symbol had no runtime value.
    Unbound(Sym),
    /// Index out of tensor bounds.
    OutOfBounds {
        tensor: Sym,
        index: Vec<i64>,
        shape: Vec<usize>,
    },
    /// A size expression failed to evaluate.
    Size(SizeError),
    /// A runtime type mismatch.
    Type(String),
    /// Wrong number of program inputs.
    InputArity { got: usize, expected: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(s) => write!(f, "unbound symbol {s}"),
            EvalError::OutOfBounds {
                tensor,
                index,
                shape,
            } => write!(
                f,
                "index {index:?} out of bounds for {tensor} shape {shape:?}"
            ),
            EvalError::Size(e) => write!(f, "size error: {e}"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::InputArity { got, expected } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SizeError> for EvalError {
    fn from(e: SizeError) -> Self {
        EvalError::Size(e)
    }
}

type Env = BTreeMap<Sym, Value>;

/// Upper bound on elements the interpreter will materialize for a single
/// tensor — adversarial size expressions become a typed error instead of
/// an allocation failure.
const MAX_INTERP_ELEMS: usize = 1 << 26;

fn expect_bool(v: ScalarVal) -> Result<bool, EvalError> {
    match v {
        ScalarVal::B(b) => Ok(b),
        other => Err(EvalError::Type(format!("expected bool, got {other:?}"))),
    }
}

fn expect_i64(v: ScalarVal) -> Result<i64, EvalError> {
    match v {
        ScalarVal::I(i) => Ok(i),
        other => Err(EvalError::Type(format!("expected integer, got {other:?}"))),
    }
}

/// A non-negative index from an evaluated expression.
fn expect_index(v: ScalarVal) -> Result<usize, EvalError> {
    let i = expect_i64(v)?;
    usize::try_from(i).map_err(|_| EvalError::Type(format!("negative index {i}")))
}

/// Overflow- and budget-checked element count of a shape.
fn checked_volume(dims: &[usize]) -> Result<usize, EvalError> {
    let mut total: usize = 1;
    for d in dims {
        total = total
            .checked_mul(*d)
            .ok_or_else(|| EvalError::Type(format!("tensor volume overflows: {dims:?}")))?;
    }
    if total > MAX_INTERP_ELEMS {
        return Err(EvalError::Type(format!(
            "tensor volume {total} exceeds interpreter limit {MAX_INTERP_ELEMS}"
        )));
    }
    Ok(total)
}

/// Interprets a PPL [`Program`] with concrete dimension sizes.
pub struct Interpreter<'a> {
    prog: &'a Program,
    sizes: SizeEnv,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter binding the program's symbolic dimensions.
    pub fn new(prog: &'a Program, sizes: &[(&str, i64)]) -> Self {
        Interpreter {
            prog,
            sizes: Size::env(sizes),
        }
    }

    /// Creates an interpreter from a prebuilt size environment.
    pub fn with_env(prog: &'a Program, sizes: SizeEnv) -> Self {
        Interpreter { prog, sizes }
    }

    /// Runs the program on the given input values, returning its outputs.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on arity mismatches, unbound symbols,
    /// out-of-bounds accesses, or size evaluation failures.
    pub fn run(&self, inputs: Vec<Value>) -> Result<Vec<Value>, EvalError> {
        if inputs.len() != self.prog.inputs.len() {
            return Err(EvalError::InputArity {
                got: inputs.len(),
                expected: self.prog.inputs.len(),
            });
        }
        let mut env: Env = self.prog.inputs.iter().copied().zip(inputs).collect();
        self.eval_block(&self.prog.body, &mut env)?;
        // Move results out of the environment rather than cloning them; a
        // sym listed twice clones from its first extracted occurrence.
        let result = &self.prog.body.result;
        let mut out: Vec<Value> = Vec::with_capacity(result.len());
        for (k, s) in result.iter().enumerate() {
            match env.remove(s) {
                Some(v) => out.push(v),
                None => match result[..k].iter().position(|r| r == s) {
                    Some(j) => {
                        let v = out[j].clone();
                        out.push(v);
                    }
                    None => return Err(EvalError::Unbound(*s)),
                },
            }
        }
        Ok(out)
    }

    fn size(&self, s: &Size) -> Result<usize, EvalError> {
        let v = s.eval(&self.sizes)?;
        let v = usize::try_from(v).map_err(|_| EvalError::Type(format!("negative size {v}")))?;
        if v > MAX_INTERP_ELEMS {
            return Err(EvalError::Type(format!(
                "size {v} exceeds interpreter limit {MAX_INTERP_ELEMS}"
            )));
        }
        Ok(v)
    }

    fn eval_block(&self, block: &Block, env: &mut Env) -> Result<(), EvalError> {
        for stmt in &block.stmts {
            match &stmt.op {
                Op::Expr(e) => {
                    let v = self.eval_expr(e, env)?;
                    env.insert(stmt.sym(), Value::Scalar(v));
                }
                Op::VarVec(items) => {
                    let mut out = Vec::new();
                    for it in items {
                        let keep = match &it.guard {
                            Some(g) => expect_bool(self.eval_expr(g, env)?)?,
                            None => true,
                        };
                        if keep {
                            out.push(self.eval_expr(&it.value, env)?);
                        }
                    }
                    env.insert(stmt.sym(), Value::DynVec(out));
                }
                Op::Slice(s) => {
                    let v = self.extract(s.tensor, &s.dims, env)?;
                    env.insert(stmt.sym(), v);
                }
                Op::Copy(c) => {
                    let v = self.extract(c.tensor, &c.dims, env)?;
                    env.insert(stmt.sym(), v);
                }
                Op::Pattern(p) => {
                    let vals = self.eval_pattern(p, env)?;
                    debug_assert_eq!(vals.len(), stmt.syms.len());
                    for (s, v) in stmt.syms.iter().zip(vals) {
                        env.insert(*s, v);
                    }
                }
            }
        }
        Ok(())
    }

    fn extract(&self, tensor: Sym, dims: &[SliceDim], env: &Env) -> Result<Value, EvalError> {
        // Borrow the source tensor in place: the spec expressions below
        // only read the environment, so no defensive clone is needed.
        let t = match env.get(&tensor).ok_or(EvalError::Unbound(tensor))? {
            Value::Tensor(t) => t,
            other => {
                return Err(EvalError::Type(format!(
                    "slice of non-tensor value {other:?}"
                )))
            }
        };
        if dims.len() != t.shape.len() {
            return Err(EvalError::Type(format!(
                "slice arity {} vs tensor rank {}",
                dims.len(),
                t.shape.len()
            )));
        }
        // Per-dimension (start, extent, keep).
        let mut specs = Vec::with_capacity(dims.len());
        for (d, extent) in dims.iter().zip(&t.shape) {
            match d {
                SliceDim::Point(e) => {
                    let i = expect_index(self.eval_expr(e, env)?)?;
                    specs.push((i, 1usize, false));
                }
                SliceDim::Window { start, len } => {
                    let s = expect_index(self.eval_expr(start, env)?)?;
                    let l = self.size(len)?;
                    specs.push((s, l, true));
                }
                SliceDim::Full => specs.push((0, *extent, true)),
            }
        }
        for ((start, len, _), extent) in specs.iter().zip(&t.shape) {
            if start + len > *extent {
                return Err(EvalError::OutOfBounds {
                    tensor,
                    index: vec![(start + len) as i64],
                    shape: t.shape.clone(),
                });
            }
        }
        let out_shape: Vec<usize> = specs
            .iter()
            .filter(|(_, _, keep)| *keep)
            .map(|(_, len, _)| *len)
            .collect();
        let mut data = Vec::with_capacity(checked_volume(&out_shape)?);
        let mut idx = vec![0usize; specs.len()];
        // Reused absolute-index buffer, kept in lock-step with `idx` as the
        // odometer advances — no per-element allocation.
        let mut src: Vec<usize> = specs.iter().map(|(start, _, _)| *start).collect();
        loop {
            data.push(t.data[t.offset(&src)].clone());
            // Advance odometer over the spec extents.
            let mut k = specs.len();
            loop {
                if k == 0 {
                    return Ok(if out_shape.is_empty() {
                        match data.pop() {
                            Some(s) => Value::Scalar(s),
                            None => {
                                return Err(EvalError::Type("empty point slice".into()));
                            }
                        }
                    } else {
                        Value::Tensor(TensorVal::new(out_shape, data))
                    });
                }
                k -= 1;
                idx[k] += 1;
                src[k] += 1;
                if idx[k] < specs[k].1 {
                    break;
                }
                idx[k] = 0;
                src[k] = specs[k].0;
            }
        }
    }

    fn eval_pattern(&self, p: &Pattern, env: &mut Env) -> Result<Vec<Value>, EvalError> {
        match p {
            Pattern::Map(m) => {
                let dims: Vec<usize> = m
                    .domain
                    .iter()
                    .map(|s| self.size(s))
                    .collect::<Result<_, _>>()?;
                let total = checked_volume(&dims)?;
                let mut data = Vec::with_capacity(total);
                for flat in 0..total {
                    let idx = unflatten(flat, &dims);
                    for (p, i) in m.body.params.iter().zip(&idx) {
                        env.insert(*p, Value::Scalar(ScalarVal::I(*i as i64)));
                    }
                    self.eval_block(&m.body.body, env)?;
                    let sym = m.body.body.result_sym();
                    match env.remove(&sym).ok_or(EvalError::Unbound(sym))? {
                        Value::Scalar(s) => data.push(s),
                        other => {
                            return Err(EvalError::Type(format!(
                                "map body produced non-scalar {other:?}"
                            )))
                        }
                    }
                }
                Ok(vec![Value::Tensor(TensorVal::new(dims, data))])
            }
            Pattern::MultiFold(mf) => {
                let dims: Vec<usize> = mf
                    .domain
                    .iter()
                    .map(|s| self.size(s))
                    .collect::<Result<_, _>>()?;
                let mut accs: Vec<Value> = mf
                    .accs
                    .iter()
                    .map(|a| self.init_acc(a))
                    .collect::<Result<_, _>>()?;
                let total = checked_volume(&dims)?;
                for flat in 0..total {
                    let idx = unflatten(flat, &dims);
                    for (p, i) in mf.idx.iter().zip(&idx) {
                        env.insert(*p, Value::Scalar(ScalarVal::I(*i as i64)));
                    }
                    self.eval_block(&mf.pre, env)?;
                    for (acc, u) in accs.iter_mut().zip(&mf.updates) {
                        self.apply_update(acc, u, env)?;
                    }
                }
                Ok(accs)
            }
            Pattern::FlatMap(fm) => {
                let d = self.size(&fm.domain)?;
                let mut out = Vec::new();
                for i in 0..d {
                    env.insert(fm.body.params[0], Value::Scalar(ScalarVal::I(i as i64)));
                    self.eval_block(&fm.body.body, env)?;
                    let sym = fm.body.body.result_sym();
                    match env.remove(&sym).ok_or(EvalError::Unbound(sym))? {
                        Value::DynVec(v) => out.extend(v),
                        Value::Tensor(t) => out.extend(t.data),
                        other => {
                            return Err(EvalError::Type(format!("flatMap body produced {other:?}")))
                        }
                    }
                }
                Ok(vec![Value::DynVec(out)])
            }
            Pattern::GroupByFold(g) => {
                let d = self.size(&g.domain)?;
                let mut dict: Vec<(ScalarVal, Value)> = Vec::new();
                for i in 0..d {
                    env.insert(g.idx, Value::Scalar(ScalarVal::I(i as i64)));
                    self.eval_block(&g.pre, env)?;
                    match &g.body {
                        GbfBody::Element { key, update } => {
                            let k = self.eval_expr(key, env)?;
                            let pos = dict.iter().position(|(k2, _)| *k2 == k);
                            let mut bucket = match pos {
                                Some(p) => dict[p].1.clone(),
                                None => self.init_acc(&g.acc)?,
                            };
                            self.apply_update(&mut bucket, update, env)?;
                            match pos {
                                Some(p) => dict[p].1 = bucket,
                                None => dict.push((k, bucket)),
                            }
                        }
                        GbfBody::Merge { dict: dsym } => {
                            let incoming = match env.get(dsym).ok_or(EvalError::Unbound(*dsym))? {
                                Value::Dict(d) => d.clone(),
                                other => {
                                    return Err(EvalError::Type(format!(
                                        "merge of non-dict {other:?}"
                                    )))
                                }
                            };
                            for (k, v) in incoming {
                                match dict.iter().position(|(k2, _)| *k2 == k) {
                                    Some(p) => {
                                        let merged = self.apply_combine(
                                            &g.combine,
                                            dict[p].1.clone(),
                                            v,
                                            env,
                                        )?;
                                        dict[p].1 = merged;
                                    }
                                    None => dict.push((k, v)),
                                }
                            }
                        }
                    }
                }
                Ok(vec![Value::Dict(dict)])
            }
        }
    }

    fn init_acc(&self, acc: &AccDef) -> Result<Value, EvalError> {
        let splat: ScalarVal = if acc.init.splat.len() == 1 {
            acc.init.splat[0].into()
        } else {
            ScalarVal::Tuple(acc.init.splat.iter().map(|l| ScalarVal::from(*l)).collect())
        };
        if acc.shape.is_empty() {
            return Ok(Value::Scalar(splat));
        }
        let dims: Vec<usize> = acc
            .shape
            .iter()
            .map(|s| self.size(s))
            .collect::<Result<_, _>>()?;
        let n = checked_volume(&dims)?;
        Ok(Value::Tensor(TensorVal::new(dims, vec![splat; n])))
    }

    /// Applies one accumulator update: reads the (squeezed) region, binds
    /// it as the update parameter, evaluates the update body, writes back.
    fn apply_update(&self, acc: &mut Value, u: &AccUpdate, env: &mut Env) -> Result<(), EvalError> {
        match acc {
            Value::Scalar(s) => {
                // Scalar accumulator: update replaces the whole value.
                env.insert(u.acc_param, Value::Scalar(s.clone()));
                self.eval_block(&u.body, env)?;
                let sym = u.body.result_sym();
                match env.remove(&sym).ok_or(EvalError::Unbound(sym))? {
                    Value::Scalar(v) => *s = v,
                    other => {
                        return Err(EvalError::Type(format!("scalar update produced {other:?}")))
                    }
                }
                Ok(())
            }
            Value::Tensor(t) => {
                let loc: Vec<usize> = u
                    .loc
                    .iter()
                    .map(|e| expect_index(self.eval_expr(e, env)?))
                    .collect::<Result<_, EvalError>>()?;
                let region: Vec<usize> = if u.shape.is_empty() {
                    vec![1; t.shape.len()]
                } else {
                    u.shape
                        .iter()
                        .map(|s| self.size(s))
                        .collect::<Result<_, _>>()?
                };
                if loc.len() != t.shape.len() || region.len() != t.shape.len() {
                    return Err(EvalError::Type(format!(
                        "update location arity {} / region rank {} vs accumulator rank {}",
                        loc.len(),
                        region.len(),
                        t.shape.len()
                    )));
                }
                for ((l, r), d) in loc.iter().zip(&region).zip(&t.shape) {
                    if l + r > *d {
                        return Err(EvalError::OutOfBounds {
                            tensor: u.acc_param,
                            index: vec![(l + r) as i64],
                            shape: t.shape.clone(),
                        });
                    }
                }
                // Squeezed view of the region, matching the builder's
                // region typing: leading unit dims are dropped.
                let squeezed: Vec<usize> = {
                    let mut s: &[usize] = &region;
                    while let Some((&1, rest)) = s.split_first() {
                        s = rest;
                    }
                    s.to_vec()
                };
                let count: usize = region.iter().product();
                // Reused relative/absolute index buffers for both the
                // region read and the write-back below.
                let mut rel = vec![0usize; region.len()];
                let mut abs = vec![0usize; region.len()];
                let mut cur = Vec::with_capacity(count);
                for flat in 0..count {
                    unflatten_into(flat, &region, &mut rel);
                    for (a, (r, l)) in abs.iter_mut().zip(rel.iter().zip(&loc)) {
                        *a = r + l;
                    }
                    cur.push(t.data[t.offset(&abs)].clone());
                }
                let param_val = if squeezed.is_empty() {
                    match cur.pop() {
                        Some(s) => Value::Scalar(s),
                        None => return Err(EvalError::Type("empty update region".into())),
                    }
                } else {
                    Value::Tensor(TensorVal::new(squeezed.clone(), cur))
                };
                env.insert(u.acc_param, param_val);
                self.eval_block(&u.body, env)?;
                let sym = u.body.result_sym();
                let r = env.remove(&sym).ok_or(EvalError::Unbound(sym))?;
                let new_data: Vec<ScalarVal> = match r {
                    Value::Scalar(v) => vec![v],
                    Value::Tensor(nt) => {
                        if nt.len() != count {
                            return Err(EvalError::Type(format!(
                                "update produced {} elements for region of {count}",
                                nt.len()
                            )));
                        }
                        nt.data
                    }
                    other => return Err(EvalError::Type(format!("update produced {other:?}"))),
                };
                for (flat, v) in new_data.into_iter().enumerate() {
                    unflatten_into(flat, &region, &mut rel);
                    for (a, (r, l)) in abs.iter_mut().zip(rel.iter().zip(&loc)) {
                        *a = r + l;
                    }
                    let off = t.offset(&abs);
                    t.data[off] = v;
                }
                Ok(())
            }
            other => Err(EvalError::Type(format!(
                "update on non-accumulator value {other:?}"
            ))),
        }
    }

    /// Applies a scalar combine lambda, elementwise over tensors.
    fn apply_combine(
        &self,
        combine: &crate::pattern::Lambda,
        a: Value,
        b: Value,
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        let one = |x: ScalarVal, y: ScalarVal, env: &mut Env| -> Result<ScalarVal, EvalError> {
            env.insert(combine.params[0], Value::Scalar(x));
            env.insert(combine.params[1], Value::Scalar(y));
            self.eval_block(&combine.body, env)?;
            match env
                .get(&combine.body.result_sym())
                .ok_or(EvalError::Unbound(combine.body.result_sym()))?
            {
                Value::Scalar(s) => Ok(s.clone()),
                other => Err(EvalError::Type(format!(
                    "combine produced non-scalar {other:?}"
                ))),
            }
        };
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => Ok(Value::Scalar(one(x, y, env)?)),
            (Value::Tensor(x), Value::Tensor(y)) => {
                if x.shape != y.shape {
                    return Err(EvalError::Type("combine shape mismatch".into()));
                }
                let data: Vec<ScalarVal> = x
                    .data
                    .into_iter()
                    .zip(y.data)
                    .map(|(xe, ye)| one(xe, ye, env))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Tensor(TensorVal::new(x.shape, data)))
            }
            (a, b) => Err(EvalError::Type(format!(
                "combine of mismatched values {a:?} / {b:?}"
            ))),
        }
    }

    fn eval_expr(&self, e: &Expr, env: &Env) -> Result<ScalarVal, EvalError> {
        match e {
            Expr::Lit(l) => Ok(ScalarVal::from(*l)),
            Expr::SizeOf(s) => Ok(ScalarVal::I(s.eval(&self.sizes)?)),
            Expr::Var(s) => match env.get(s).ok_or(EvalError::Unbound(*s))? {
                Value::Scalar(v) => Ok(v.clone()),
                other => Err(EvalError::Type(format!(
                    "scalar variable {s} bound to {other:?}"
                ))),
            },
            Expr::Un(op, a) => {
                let a = self.eval_expr(a, env)?;
                eval_unop(*op, a)
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval_expr(a, env)?;
                let b = self.eval_expr(b, env)?;
                eval_binop(*op, a, b)
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                if expect_bool(self.eval_expr(cond, env)?)? {
                    self.eval_expr(if_true, env)
                } else {
                    self.eval_expr(if_false, env)
                }
            }
            Expr::Tuple(es) => Ok(ScalarVal::Tuple(
                es.iter()
                    .map(|e| self.eval_expr(e, env))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Field(a, i) => match self.eval_expr(a, env)? {
                ScalarVal::Tuple(fs) => fs
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| EvalError::Type(format!("tuple field {i} out of range"))),
                other => Err(EvalError::Type(format!("field of non-tuple {other:?}"))),
            },
            Expr::Read { tensor, index } => {
                let idx: Vec<i64> = index
                    .iter()
                    .map(|e| expect_i64(self.eval_expr(e, env)?))
                    .collect::<Result<_, EvalError>>()?;
                match env.get(tensor).ok_or(EvalError::Unbound(*tensor))? {
                    Value::Tensor(t) => {
                        if idx.len() != t.shape.len()
                            || idx
                                .iter()
                                .zip(&t.shape)
                                .any(|(i, d)| *i < 0 || *i as usize >= *d)
                        {
                            return Err(EvalError::OutOfBounds {
                                tensor: *tensor,
                                index: idx,
                                shape: t.shape.clone(),
                            });
                        }
                        let u: Vec<usize> = idx.iter().map(|i| *i as usize).collect();
                        Ok(t.data[t.offset(&u)].clone())
                    }
                    Value::DynVec(v) => {
                        let i = idx[0];
                        if i < 0 || i as usize >= v.len() {
                            return Err(EvalError::OutOfBounds {
                                tensor: *tensor,
                                index: idx,
                                shape: vec![v.len()],
                            });
                        }
                        Ok(v[i as usize].clone())
                    }
                    other => Err(EvalError::Type(format!(
                        "read of non-tensor {tensor}: {other:?}"
                    ))),
                }
            }
        }
    }
}

fn unflatten(flat: usize, dims: &[usize]) -> Vec<usize> {
    let mut idx = vec![0usize; dims.len()];
    unflatten_into(flat, dims, &mut idx);
    idx
}

/// [`unflatten`] into a caller-owned buffer, avoiding the allocation in
/// per-element loops.
fn unflatten_into(mut flat: usize, dims: &[usize], idx: &mut [usize]) {
    for k in (0..dims.len()).rev() {
        idx[k] = flat % dims[k];
        flat /= dims[k];
    }
}

/// Evaluates a unary operator. Invalid op/type combinations (reachable
/// from adversarial IR) are typed errors; integer arithmetic wraps rather
/// than aborting on overflow.
fn eval_unop(op: UnOp, a: ScalarVal) -> Result<ScalarVal, EvalError> {
    use ScalarVal::*;
    Ok(match (op, a) {
        (UnOp::Neg, F(v)) => F(-v),
        (UnOp::Neg, I(v)) => I(v.wrapping_neg()),
        (UnOp::Not, B(v)) => B(!v),
        (UnOp::Sqrt, F(v)) => F(v.sqrt()),
        (UnOp::Ln, F(v)) => F(v.ln()),
        (UnOp::Exp, F(v)) => F(v.exp()),
        (UnOp::Abs, F(v)) => F(v.abs()),
        (UnOp::Abs, I(v)) => I(v.wrapping_abs()),
        (UnOp::Square, F(v)) => F(v * v),
        (UnOp::Square, I(v)) => I(v.wrapping_mul(v)),
        (UnOp::ToF32, I(v)) => F(v as f32),
        (UnOp::ToF32, F(v)) => F(v),
        (UnOp::ToI32, F(v)) => I(v as i64),
        (UnOp::ToI32, I(v)) => I(v),
        (op, a) => {
            return Err(EvalError::Type(format!("invalid unary op {op:?} on {a:?}")));
        }
    })
}

/// Evaluates a binary operator. Invalid combinations and integer division
/// by zero are typed errors; integer arithmetic wraps on overflow.
fn eval_binop(op: BinOp, a: ScalarVal, b: ScalarVal) -> Result<ScalarVal, EvalError> {
    use ScalarVal::*;
    // Promote mixed int/float arithmetic to float.
    let (a, b) = match (&a, &b) {
        (F(_), I(y)) => (a.clone(), F(*y as f32)),
        (I(x), F(_)) => (F(*x as f32), b.clone()),
        _ => (a, b),
    };
    if matches!(op, BinOp::Div | BinOp::Rem) {
        if let (I(_), I(0)) = (&a, &b) {
            return Err(EvalError::Type("integer division by zero".into()));
        }
    }
    Ok(match (op, a, b) {
        (BinOp::Add, F(x), F(y)) => F(x + y),
        (BinOp::Add, I(x), I(y)) => I(x.wrapping_add(y)),
        (BinOp::Sub, F(x), F(y)) => F(x - y),
        (BinOp::Sub, I(x), I(y)) => I(x.wrapping_sub(y)),
        (BinOp::Mul, F(x), F(y)) => F(x * y),
        (BinOp::Mul, I(x), I(y)) => I(x.wrapping_mul(y)),
        (BinOp::Div, F(x), F(y)) => F(x / y),
        (BinOp::Div, I(x), I(y)) => I(x.wrapping_div(y)),
        (BinOp::Rem, I(x), I(y)) => I(x.wrapping_rem(y)),
        (BinOp::Min, F(x), F(y)) => F(x.min(y)),
        (BinOp::Min, I(x), I(y)) => I(x.min(y)),
        (BinOp::Max, F(x), F(y)) => F(x.max(y)),
        (BinOp::Max, I(x), I(y)) => I(x.max(y)),
        (BinOp::Lt, F(x), F(y)) => B(x < y),
        (BinOp::Lt, I(x), I(y)) => B(x < y),
        (BinOp::Le, F(x), F(y)) => B(x <= y),
        (BinOp::Le, I(x), I(y)) => B(x <= y),
        (BinOp::Eq, F(x), F(y)) => B(x == y),
        (BinOp::Eq, I(x), I(y)) => B(x == y),
        (BinOp::Eq, B(x), B(y)) => B(x == y),
        (BinOp::And, B(x), B(y)) => B(x && y),
        (BinOp::Or, B(x), B(y)) => B(x || y),
        (op, a, b) => {
            return Err(EvalError::Type(format!(
                "invalid binary op {op:?} on {a:?}, {b:?}"
            )));
        }
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::Init;
    use crate::types::{DType, ScalarType};

    #[test]
    fn map_doubles() {
        let mut b = ProgramBuilder::new("double");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 4)])
            .run(vec![Value::tensor_f32(&[4], vec![1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        assert_eq!(r[0].as_f32_slice(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn fold_sums() {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 4)])
            .run(vec![Value::tensor_f32(&[4], vec![1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        assert_eq!(r[0], Value::scalar_f32(10.0));
    }

    #[test]
    fn filter_keeps_positive() {
        let mut b = ProgramBuilder::new("pos");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.filter("pos", d, |c, i| {
            let v = c.read(x, vec![c.var(i)]);
            (c.lt(c.f32(0.0), v.clone()), v)
        });
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 5)])
            .run(vec![Value::tensor_f32(
                &[5],
                vec![1.0, -2.0, 3.0, -4.0, 5.0],
            )])
            .unwrap();
        assert_eq!(r[0].as_f32_slice(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn histogram_groups() {
        let mut b = ProgramBuilder::new("hist");
        let d = b.size("d");
        let x = b.input("x", DType::I32, vec![d.clone()]);
        let out = b.group_by_fold(
            "hist",
            d,
            ScalarType::Prim(DType::I32),
            Init::zero_i32(),
            |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
            |a, b| a.add(b),
        );
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 6)])
            .run(vec![Value::tensor_i32(&[6], vec![1, 5, 12, 17, 23, 9])])
            .unwrap();
        match &r[0] {
            Value::Dict(d) => {
                let get = |k: i64| {
                    d.iter()
                        .find(|(k2, _)| *k2 == ScalarVal::I(k))
                        .map(|(_, v)| v.clone())
                };
                assert_eq!(get(0), Some(Value::Scalar(ScalarVal::I(3))));
                assert_eq!(get(1), Some(Value::Scalar(ScalarVal::I(2))));
                assert_eq!(get(2), Some(Value::Scalar(ScalarVal::I(1))));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn out_of_bounds_read_errors() {
        let mut b = ProgramBuilder::new("oob");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.read(x, vec![c.add(c.var(idx[0]), c.int(1))])
        });
        let prog = b.finish(vec![out]);
        let r =
            Interpreter::new(&prog, &[("d", 2)]).run(vec![Value::tensor_f32(&[2], vec![1.0, 2.0])]);
        assert!(matches!(r, Err(EvalError::OutOfBounds { .. })));
    }

    #[test]
    fn input_arity_checked() {
        let mut b = ProgramBuilder::new("arity");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 2)]).run(vec![]);
        assert!(matches!(r, Err(EvalError::InputArity { .. })));
    }

    #[test]
    fn approx_eq_tolerates_representation() {
        let a = Value::scalar_f32(1.0);
        let b = Value::tensor_f32(&[1], vec![1.0 + 1e-7]);
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&Value::scalar_f32(2.0), 1e-5));
    }

    #[test]
    fn integer_division_by_zero_is_an_error() {
        let mut b = ProgramBuilder::new("divzero");
        let d = b.size("d");
        let x = b.input("x", DType::I32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            c.div(c.read(x, vec![c.var(idx[0])]), c.int(0))
        });
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 2)]).run(vec![Value::tensor_i32(&[2], vec![1, 2])]);
        assert!(matches!(r, Err(EvalError::Type(_))), "{r:?}");
    }

    #[test]
    fn integer_overflow_wraps_instead_of_aborting() {
        let mut b = ProgramBuilder::new("wrap");
        let d = b.size("d");
        let x = b.input("x", DType::I32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            let v = c.read(x, vec![c.var(idx[0])]);
            c.mul(v.clone(), v)
        });
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 1)])
            .run(vec![Value::tensor_i32(&[1], vec![i64::MAX])])
            .unwrap();
        assert_eq!(
            r[0],
            Value::tensor_i32(&[1], vec![i64::MAX.wrapping_mul(i64::MAX)])
        );
    }

    #[test]
    fn negative_size_is_an_error() {
        let mut b = ProgramBuilder::new("negsize");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", -4)]).run(vec![Value::tensor_f32(&[0], vec![])]);
        assert!(r.is_err(), "{r:?}");
    }

    #[test]
    fn absurd_size_is_an_error_not_an_allocation() {
        let mut b = ProgramBuilder::new("huge");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", i64::MAX / 2)])
            .run(vec![Value::tensor_f32(&[0], vec![])]);
        assert!(matches!(r, Err(EvalError::Type(_))), "{r:?}");
    }

    #[test]
    fn unflatten_row_major() {
        assert_eq!(unflatten(5, &[2, 3]), vec![1, 2]);
        assert_eq!(unflatten(0, &[2, 3]), vec![0, 0]);
    }

    #[test]
    fn tuple_select_argmin_style() {
        // fold(d)((max,-1)){ i => acc => if (acc._1 < x(i)) acc else (x(i), i) }
        let mut b = ProgramBuilder::new("argmin");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "argmin",
            vec![d],
            vec![],
            ScalarType::Tuple(vec![DType::F32, DType::I32]),
            Init::argmin(),
            |c, i, acc| {
                let v = c.read(x, vec![c.var(i[0])]);
                let cand = c.tuple(vec![v.clone(), c.var(i[0])]);
                c.select(c.lt(c.field(c.var(acc), 0), v), c.var(acc), cand)
            },
            |c, a, b2| {
                c.select(
                    c.lt(c.field(c.var(a), 0), c.field(c.var(b2), 0)),
                    c.var(a),
                    c.var(b2),
                )
            },
        );
        let prog = b.finish(vec![out]);
        let r = Interpreter::new(&prog, &[("d", 4)])
            .run(vec![Value::tensor_f32(&[4], vec![3.0, 1.0, 2.0, 5.0])])
            .unwrap();
        assert_eq!(
            r[0],
            Value::Scalar(ScalarVal::Tuple(vec![ScalarVal::F(1.0), ScalarVal::I(1)]))
        );
    }
}
