//! The four parallel patterns of the paper's PPL (Figure 2).
//!
//! *Multidimensional* patterns ([`MapPat`], [`MultiFoldPat`]) have a range
//! that is a fixed function of the domain; *one-dimensional* patterns
//! ([`FlatMapPat`], [`GroupByFoldPat`]) have dynamic output sizes and are
//! therefore restricted to one-dimensional domains.

use crate::block::Block;
use crate::expr::{Expr, Lit};
use crate::size::Size;
use crate::types::{ScalarType, Sym};

/// A function value: index parameters plus a body block.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameter symbols (pattern indices, or combine operands).
    pub params: Vec<Sym>,
    /// Body; its result is the lambda's value.
    pub body: Block,
}

impl Lambda {
    /// Creates a lambda.
    pub fn new(params: Vec<Sym>, body: Block) -> Lambda {
        Lambda { params, body }
    }
}

/// Initial accumulator contents.
///
/// The paper requires the initial value to be an identity of the combine
/// function with the same shape as the output; every benchmark uses a
/// broadcast scalar (zeros, or `(max, -1)` for argmin reductions), which is
/// what `Splat` expresses.
#[derive(Debug, Clone, PartialEq)]
pub struct Init {
    /// One literal per scalar field (a single literal for primitives).
    pub splat: Vec<Lit>,
}

impl Init {
    /// All-zeros float initializer.
    pub fn zeros() -> Init {
        Init {
            splat: vec![Lit::F32(0.0)],
        }
    }

    /// Zero integer initializer.
    pub fn zero_i32() -> Init {
        Init {
            splat: vec![Lit::I32(0)],
        }
    }

    /// The `(max, -1)` initializer used by argmin reductions.
    pub fn argmin() -> Init {
        Init {
            splat: vec![Lit::F32(f32::MAX), Lit::I32(-1)],
        }
    }

    /// A custom splat initializer.
    pub fn splat(lits: Vec<Lit>) -> Init {
        Init { splat: lits }
    }

    /// The all-zero initializer for the given scalar type (false for bools).
    pub fn zero_of(ty: &crate::types::ScalarType) -> Init {
        use crate::types::{DType, ScalarType};
        let zero = |d: &DType| match d {
            DType::F32 => Lit::F32(0.0),
            DType::I32 => Lit::I32(0),
            DType::Bool => Lit::Bool(false),
        };
        match ty {
            ScalarType::Prim(d) => Init {
                splat: vec![zero(d)],
            },
            ScalarType::Tuple(fs) => Init {
                splat: fs.iter().map(zero).collect(),
            },
        }
    }
}

/// Declaration of one accumulator of a [`MultiFoldPat`] or the per-bucket
/// value of a [`GroupByFoldPat`].
#[derive(Debug, Clone, PartialEq)]
pub struct AccDef {
    /// Display name.
    pub name: String,
    /// Full accumulator shape (empty for scalar accumulators).
    pub shape: Vec<Size>,
    /// Element type.
    pub elem: ScalarType,
    /// Initial contents.
    pub init: Init,
}

/// The `(location, value function)` pair generated per index per accumulator.
///
/// `loc` gives the element-unit offset of the updated region within the
/// accumulator and `shape` its extent (the paper permits any size up to the
/// accumulator's, with equal arity). The update body receives the current
/// region bound to `acc_param` and yields its replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct AccUpdate {
    /// Offset of the updated region, one expression per accumulator
    /// dimension (empty for scalar accumulators).
    pub loc: Vec<Expr>,
    /// Extent of the updated region (same length as `loc`).
    pub shape: Vec<Size>,
    /// Symbol bound to the current region contents inside `body`.
    pub acc_param: Sym,
    /// Computes the new region value.
    pub body: Block,
}

impl AccUpdate {
    /// Returns `true` if the update covers the whole accumulator `acc`
    /// starting at the origin — the *fold* special case the interchange
    /// rules match on.
    pub fn is_full(&self, acc: &AccDef) -> bool {
        self.shape.len() == acc.shape.len()
            && self
                .shape
                .iter()
                .zip(&acc.shape)
                .all(|(a, b)| a.simplified() == b.simplified())
            && self.loc.iter().all(|e| matches!(e, Expr::Lit(Lit::I32(0))))
    }
}

/// `Map(d)(m)`: one generated value per index, aggregated into a fixed-size
/// output of the same shape as the domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPat {
    /// Iteration domain (arbitrary arity).
    pub domain: Vec<Size>,
    /// Value function: one index parameter per domain dimension; the body's
    /// result is the generated element (scalar, or a tensor when the map has
    /// been strip-mined and generates tiles).
    pub body: Lambda,
}

/// `MultiFold(d)(r)(z)(f)(c)`: reduces generated values into regions of a
/// (potentially larger) accumulator with an associative combine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFoldPat {
    /// Iteration domain.
    pub domain: Vec<Size>,
    /// Accumulators (one output symbol each).
    pub accs: Vec<AccDef>,
    /// Index parameter symbols (one per domain dimension).
    pub idx: Vec<Sym>,
    /// Shared per-index computation; updates may reference its bindings.
    pub pre: Block,
    /// One update per accumulator.
    pub updates: Vec<AccUpdate>,
    /// Per-accumulator *scalar* combine `(a, b) -> merged`, applied
    /// elementwise when the accumulator is a tensor; `None` is the paper's
    /// `_` (every location written at most once, no combine needed).
    ///
    /// The paper's combine is a function over full accumulator values, but
    /// in every program it presents (and every benchmark) it is an
    /// elementwise map of a scalar operation; representing the scalar
    /// directly is what lets strip mining derive region-restricted combines
    /// and hardware generation infer reduction trees (see DESIGN.md).
    pub combines: Vec<Option<Lambda>>,
}

impl MultiFoldPat {
    /// Returns `true` if this is a *fold*: a single accumulator updated in
    /// full every iteration (the special case matched by the interchange
    /// rules of §4).
    pub fn is_fold(&self) -> bool {
        self.accs.len() == 1 && self.updates[0].is_full(&self.accs[0])
    }
}

/// `FlatMap(d)(n)`: zero or more generated values per index, concatenated.
/// Restricted to one-dimensional domains (dynamic output size).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMapPat {
    /// Iteration domain.
    pub domain: Size,
    /// Multi-value function; its body result is a dynamically-sized vector
    /// (an [`Op::VarVec`](crate::block::Op::VarVec) or a nested `FlatMap`).
    pub body: Lambda,
}

/// Body form of a [`GroupByFoldPat`].
#[derive(Debug, Clone, PartialEq)]
pub enum GbfBody {
    /// The user-facing form: each index generates a `(key, value-update)`
    /// pair; the update is applied to the keyed bucket.
    Element {
        /// Bucket key expression.
        key: Expr,
        /// Per-bucket update (location must be the full bucket).
        update: AccUpdate,
    },
    /// The strip-mined outer form (Table 1): each iteration's `pre` block
    /// binds a whole dictionary (from a nested `GroupByFold`) which is
    /// merged into the result bucket-by-bucket using the combine function.
    Merge {
        /// Symbol (bound in `pre`) of the per-tile dictionary to merge.
        dict: Sym,
    },
}

/// `GroupByFold(d)(z)(g)(c)`: reduces generated values into dynamically
/// keyed buckets — a fused `groupBy` + per-bucket fold.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByFoldPat {
    /// Iteration domain (one-dimensional).
    pub domain: Size,
    /// Per-bucket value declaration (shape, element type, init).
    pub acc: AccDef,
    /// Index parameter.
    pub idx: Sym,
    /// Shared per-index computation.
    pub pre: Block,
    /// Per-index contribution.
    pub body: GbfBody,
    /// Combine for merging partial buckets.
    pub combine: Lambda,
}

/// A parallel pattern.
#[allow(clippy::large_enum_variant)] // MultiFold carries its accumulators
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// See [`MapPat`].
    Map(MapPat),
    /// See [`MultiFoldPat`].
    MultiFold(MultiFoldPat),
    /// See [`FlatMapPat`].
    FlatMap(FlatMapPat),
    /// See [`GroupByFoldPat`].
    GroupByFold(GroupByFoldPat),
}

impl Pattern {
    /// Short name used in diagnostics and the pretty-printer.
    pub fn kind(&self) -> &'static str {
        match self {
            Pattern::Map(_) => "map",
            Pattern::MultiFold(_) => "multiFold",
            Pattern::FlatMap(_) => "flatMap",
            Pattern::GroupByFold(_) => "groupByFold",
        }
    }

    /// The iteration domain extents.
    pub fn domain(&self) -> Vec<Size> {
        match self {
            Pattern::Map(p) => p.domain.clone(),
            Pattern::MultiFold(p) => p.domain.clone(),
            Pattern::FlatMap(p) => vec![p.domain.clone()],
            Pattern::GroupByFold(p) => vec![p.domain.clone()],
        }
    }

    /// Number of values the pattern statement binds.
    pub fn output_count(&self) -> usize {
        match self {
            Pattern::MultiFold(p) => p.accs.len(),
            _ => 1,
        }
    }

    /// All immediate child blocks (bodies, updates, combines) in
    /// deterministic order.
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Pattern::Map(p) => vec![&p.body.body],
            Pattern::MultiFold(p) => {
                let mut out = vec![&p.pre];
                out.extend(p.updates.iter().map(|u| &u.body));
                out.extend(p.combines.iter().flatten().map(|c| &c.body));
                out
            }
            Pattern::FlatMap(p) => vec![&p.body.body],
            Pattern::GroupByFold(p) => {
                let mut out = vec![&p.pre];
                if let GbfBody::Element { update, .. } = &p.body {
                    out.push(&update.body);
                }
                out.push(&p.combine.body);
                out
            }
        }
    }

    /// Mutable variant of [`Pattern::child_blocks`].
    pub fn child_blocks_mut(&mut self) -> Vec<&mut Block> {
        match self {
            Pattern::Map(p) => vec![&mut p.body.body],
            Pattern::MultiFold(p) => {
                let mut out = vec![&mut p.pre];
                out.extend(p.updates.iter_mut().map(|u| &mut u.body));
                out.extend(p.combines.iter_mut().flatten().map(|c| &mut c.body));
                out
            }
            Pattern::FlatMap(p) => vec![&mut p.body.body],
            Pattern::GroupByFold(p) => {
                let mut out = vec![&mut p.pre];
                if let GbfBody::Element { update, .. } = &mut p.body {
                    out.push(&mut update.body);
                }
                out.push(&mut p.combine.body);
                out
            }
        }
    }

    /// Parameter symbols bound by the pattern itself (indices, accumulator
    /// region parameters, combine operands).
    pub fn param_syms(&self) -> Vec<Sym> {
        match self {
            Pattern::Map(p) => p.body.params.clone(),
            Pattern::MultiFold(p) => {
                let mut out = p.idx.clone();
                out.extend(p.updates.iter().map(|u| u.acc_param));
                for c in p.combines.iter().flatten() {
                    out.extend_from_slice(&c.params);
                }
                out
            }
            Pattern::FlatMap(p) => p.body.params.clone(),
            Pattern::GroupByFold(p) => {
                let mut out = vec![p.idx];
                if let GbfBody::Element { update, .. } = &p.body {
                    out.push(update.acc_param);
                }
                out.extend_from_slice(&p.combine.params);
                out
            }
        }
    }

    /// Collects symbols referenced (not bound) by the pattern, including
    /// those referenced by nested blocks. Used for free-variable analysis.
    pub(crate) fn collect_used(&self, out: &mut Vec<Sym>) {
        match self {
            Pattern::Map(p) => p.body.body.collect_used_via(out),
            Pattern::MultiFold(p) => {
                p.pre.collect_used_via(out);
                for u in &p.updates {
                    for e in &u.loc {
                        out.extend(e.syms());
                    }
                    u.body.collect_used_via(out);
                }
                for c in p.combines.iter().flatten() {
                    c.body.collect_used_via(out);
                }
            }
            Pattern::FlatMap(p) => p.body.body.collect_used_via(out),
            Pattern::GroupByFold(p) => {
                p.pre.collect_used_via(out);
                match &p.body {
                    GbfBody::Element { key, update } => {
                        out.extend(key.syms());
                        for e in &update.loc {
                            out.extend(e.syms());
                        }
                        update.body.collect_used_via(out);
                    }
                    GbfBody::Merge { dict } => out.push(*dict),
                }
                p.combine.body.collect_used_via(out);
            }
        }
    }
}

impl Block {
    pub(crate) fn collect_used_via(&self, out: &mut Vec<Sym>) {
        // Free-variable computation at the block level already handles
        // nesting; reuse it here so a pattern's "used" set is its blocks'
        // free symbols.
        out.extend(self.free_syms());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Op, Stmt};
    use crate::types::Sym;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    fn scalar_fold() -> MultiFoldPat {
        // fold(d)(0){ i => acc => acc + x(i) }{ (a,b) => a + b }
        let i = s(0);
        let acc = s(1);
        let a = s(2);
        let b = s(3);
        let upd = s(4);
        let comb = s(5);
        MultiFoldPat {
            domain: vec![Size::var("d")],
            accs: vec![AccDef {
                name: "acc".into(),
                shape: vec![],
                elem: ScalarType::Prim(crate::types::DType::F32),
                init: Init::zeros(),
            }],
            idx: vec![i],
            pre: Block::new(),
            updates: vec![AccUpdate {
                loc: vec![],
                shape: vec![],
                acc_param: acc,
                body: Block::with_result(
                    vec![Stmt::new(
                        upd,
                        Op::Expr(Expr::var(acc).add(Expr::read(s(9), vec![Expr::var(i)]))),
                    )],
                    upd,
                ),
            }],
            combines: vec![Some(Lambda::new(
                vec![a, b],
                Block::with_result(
                    vec![Stmt::new(comb, Op::Expr(Expr::var(a).add(Expr::var(b))))],
                    comb,
                ),
            ))],
        }
    }

    #[test]
    fn scalar_fold_is_fold() {
        assert!(scalar_fold().is_fold());
    }

    #[test]
    fn strided_multifold_is_not_fold() {
        let mut mf = scalar_fold();
        mf.accs[0].shape = vec![Size::var("d")];
        mf.updates[0].shape = vec![Size::var("b")];
        mf.updates[0].loc = vec![Expr::var(s(0)).mul(Expr::int(4))];
        assert!(!mf.is_fold());
    }

    #[test]
    fn pattern_param_syms_cover_idx_acc_combine() {
        let p = Pattern::MultiFold(scalar_fold());
        let params = p.param_syms();
        assert!(params.contains(&s(0)));
        assert!(params.contains(&s(1)));
        assert!(params.contains(&s(2)));
        assert!(params.contains(&s(3)));
    }

    #[test]
    fn pattern_used_sees_read_tensors() {
        let p = Pattern::MultiFold(scalar_fold());
        let mut used = Vec::new();
        p.collect_used(&mut used);
        assert!(used.contains(&s(9)), "tensor x should be a used symbol");
    }

    #[test]
    fn child_blocks_count() {
        let p = Pattern::MultiFold(scalar_fold());
        // pre + 1 update + 1 combine
        assert_eq!(p.child_blocks().len(), 3);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Pattern::MultiFold(scalar_fold()).kind(), "multiFold");
    }

    #[test]
    fn init_helpers() {
        assert_eq!(Init::zeros().splat, vec![Lit::F32(0.0)]);
        assert_eq!(Init::argmin().splat.len(), 2);
    }
}
