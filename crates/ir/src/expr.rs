//! Scalar expression language.
//!
//! Pattern bodies compute scalar values (possibly flat tuples) from the
//! pattern indices, elements read out of tensors, and ordinary arithmetic.
//! Expressions are pure trees; tensor-producing computation lives in
//! [`Op`](crate::block::Op) statements instead.

use std::fmt;

use crate::size::Size;
use crate::types::Sym;

/// Literal scalar constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lit {
    /// Float literal.
    F32(f32),
    /// Integer literal.
    I32(i64),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::F32(v) => {
                if *v == f32::MAX {
                    write!(f, "max")
                } else if *v == f32::MIN {
                    write!(f, "min")
                } else {
                    write!(f, "{v}")
                }
            }
            Lit::I32(v) => write!(f, "{v}"),
            Lit::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float division or exact integer division).
    Div,
    /// Integer remainder.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Equality comparison.
    Eq,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Returns `true` for comparison operators (result type `Bool`).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Eq)
    }

    /// Infix symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Square root.
    Sqrt,
    /// Natural logarithm.
    Ln,
    /// Exponential.
    Exp,
    /// Absolute value.
    Abs,
    /// Square (x*x) — common enough in distance computations to be a unit.
    Square,
    /// Convert integer to float.
    ToF32,
    /// Convert float to integer (truncation).
    ToI32,
}

/// A pure scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Lit(Lit),
    /// Reference to a bound scalar symbol (pattern index, accumulator
    /// parameter, or a scalar let-binding).
    Var(Sym),
    /// A symbolic size used as an integer value (e.g. dividing by a count).
    SizeOf(Size),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional selection: `if cond { t } else { f }`.
    Select {
        /// Condition (Bool).
        cond: Box<Expr>,
        /// Value when true.
        if_true: Box<Expr>,
        /// Value when false.
        if_false: Box<Expr>,
    },
    /// Flat tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple field projection (`x._1` is `Field(x, 0)`).
    Field(Box<Expr>, usize),
    /// Element read from a tensor: `array(i, j, …)`.
    Read {
        /// The tensor being read.
        tensor: Sym,
        /// One index expression per dimension.
        index: Vec<Expr>,
    },
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Lit::I32(v))
    }

    /// Float literal shorthand.
    pub fn f32(v: f32) -> Expr {
        Expr::Lit(Lit::F32(v))
    }

    /// Variable reference shorthand.
    pub fn var(s: Sym) -> Expr {
        Expr::Var(s)
    }

    /// `a + b`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `a - b`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `a * b`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `a / b`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `a < b`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `(a - b)^2` — the squared-difference kernel used by distance sums.
    pub fn sq_diff(self, rhs: Expr) -> Expr {
        Expr::Un(UnOp::Square, Box::new(self.sub(rhs)))
    }

    /// Tuple projection.
    pub fn field(self, i: usize) -> Expr {
        Expr::Field(Box::new(self), i)
    }

    /// Element read shorthand.
    pub fn read(tensor: Sym, index: Vec<Expr>) -> Expr {
        Expr::Read { tensor, index }
    }

    /// Conditional selection shorthand.
    pub fn select(cond: Expr, if_true: Expr, if_false: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            if_true: Box::new(if_true),
            if_false: Box::new(if_false),
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) => {}
            Expr::Un(_, a) => a.visit(f),
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => {
                cond.visit(f);
                if_true.visit(f);
                if_false.visit(f);
            }
            Expr::Tuple(es) => {
                for e in es {
                    e.visit(f);
                }
            }
            Expr::Field(a, _) => a.visit(f),
            Expr::Read { index, .. } => {
                for e in index {
                    e.visit(f);
                }
            }
        }
    }

    /// Rebuilds the expression, applying `f` bottom-up to every node.
    pub fn map(&self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) => self.clone(),
            Expr::Un(op, a) => Expr::Un(*op, Box::new(a.map(f))),
            Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(a.map(f)), Box::new(b.map(f))),
            Expr::Select {
                cond,
                if_true,
                if_false,
            } => Expr::Select {
                cond: Box::new(cond.map(f)),
                if_true: Box::new(if_true.map(f)),
                if_false: Box::new(if_false.map(f)),
            },
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| e.map(f)).collect()),
            Expr::Field(a, i) => Expr::Field(Box::new(a.map(f)), *i),
            Expr::Read { tensor, index } => Expr::Read {
                tensor: *tensor,
                index: index.iter().map(|e| e.map(f)).collect(),
            },
        };
        f(rebuilt)
    }

    /// Collects all symbols referenced by the expression (variables and
    /// tensors read).
    pub fn syms(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            Expr::Var(s) => out.push(*s),
            Expr::Read { tensor, .. } => out.push(*tensor),
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }

    /// Substitutes variable references according to `subst`.
    pub fn subst_vars(&self, subst: &impl Fn(Sym) -> Option<Expr>) -> Expr {
        self.map(&mut |e| match e {
            Expr::Var(s) => subst(s).unwrap_or(Expr::Var(s)),
            other => other,
        })
    }

    /// Renames every symbol occurrence (both `Var` and `Read` tensors).
    pub fn rename_syms(&self, rename: &impl Fn(Sym) -> Sym) -> Expr {
        self.map(&mut |e| match e {
            Expr::Var(s) => Expr::Var(rename(s)),
            Expr::Read { tensor, index } => Expr::Read {
                tensor: rename(tensor),
                index,
            },
            other => other,
        })
    }

    /// Counts floating-point operations in the expression tree (used by the
    /// hardware area/timing model).
    pub fn flop_count(&self) -> u32 {
        let mut n = 0;
        self.visit(&mut |e| match e {
            Expr::Bin(op, _, _) if !op.is_comparison() => n += 1,
            Expr::Bin(_, _, _) => n += 1,
            Expr::Un(_, _) => n += 1,
            _ => {}
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn builders_compose() {
        let e = Expr::var(s(0)).add(Expr::int(1)).mul(Expr::var(s(1)));
        assert_eq!(e.syms(), vec![s(0), s(1)]);
    }

    #[test]
    fn read_collects_tensor_sym() {
        let e = Expr::read(s(5), vec![Expr::var(s(1))]);
        assert_eq!(e.syms(), vec![s(1), s(5)]);
    }

    #[test]
    fn subst_vars_replaces() {
        let e = Expr::var(s(0)).add(Expr::var(s(1)));
        let r = e.subst_vars(&|sym| (sym == s(0)).then(|| Expr::int(7)));
        assert_eq!(r, Expr::int(7).add(Expr::var(s(1))));
    }

    #[test]
    fn rename_syms_hits_reads() {
        let e = Expr::read(s(2), vec![Expr::var(s(0))]);
        let r = e.rename_syms(&|sym| if sym == s(2) { s(9) } else { sym });
        assert_eq!(r, Expr::read(s(9), vec![Expr::var(s(0))]));
    }

    #[test]
    fn map_is_bottom_up() {
        // Replace every literal 1 with 2, then confirm addition sees both.
        let e = Expr::int(1).add(Expr::int(1));
        let r = e.map(&mut |e| {
            if e == Expr::int(1) {
                Expr::int(2)
            } else {
                e
            }
        });
        assert_eq!(r, Expr::int(2).add(Expr::int(2)));
    }

    #[test]
    fn flop_count_counts_arith() {
        let e = Expr::var(s(0)).sq_diff(Expr::var(s(1)));
        // Sub + Square
        assert_eq!(e.flop_count(), 2);
    }

    #[test]
    fn select_visit_covers_all_branches() {
        let e = Expr::select(Expr::var(s(0)), Expr::var(s(1)), Expr::var(s(2)));
        assert_eq!(e.syms(), vec![s(0), s(1), s(2)]);
    }
}
