//! Scalar type inference for expressions.

use std::fmt;

use crate::expr::{BinOp, Expr, Lit, UnOp};
use crate::path::IrPath;
use crate::types::{DType, ScalarType, SymTable, Type};

/// Errors produced during expression type inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable referenced a non-scalar symbol in scalar position.
    NotScalar(String),
    /// Tuple field projection on a non-tuple or out of range.
    BadField { ty: ScalarType, index: usize },
    /// A read indexed a non-tensor symbol.
    NotTensor(String),
    /// Operand types disagree where they must match.
    Mismatch { left: ScalarType, right: ScalarType },
    /// Tuple expressions may only contain primitive fields.
    NestedTuple,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::NotScalar(s) => write!(f, "symbol {s} is not scalar-typed"),
            TypeError::BadField { ty, index } => {
                write!(f, "field {index} projection on scalar of type {ty}")
            }
            TypeError::NotTensor(s) => write!(f, "symbol {s} is not a tensor"),
            TypeError::Mismatch { left, right } => {
                write!(f, "operand type mismatch: {left} vs {right}")
            }
            TypeError::NestedTuple => write!(f, "tuple expressions must have primitive fields"),
        }
    }
}

impl std::error::Error for TypeError {}

/// A [`TypeError`] located at a human-readable IR path, so consumers can
/// point at `kmeans/sums[2]/pre` instead of a bare symbol id. Programs that
/// originate from `.ppl` text additionally carry the byte span of the
/// offending source, letting frontends render `file:line:col` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeErrorAt {
    /// Rendered [`IrPath`](crate::path::IrPath) of the block the expression
    /// appears in.
    pub path: String,
    /// The underlying inference error.
    pub error: TypeError,
    /// Source span, when the expression came from parsed text (`None` for
    /// builder-constructed programs).
    pub span: Option<crate::span::Span>,
}

impl TypeErrorAt {
    /// Attaches a source span (builder programs leave it `None`).
    #[must_use]
    pub fn with_span(mut self, span: crate::span::Span) -> TypeErrorAt {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for TypeErrorAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.error)
    }
}

impl std::error::Error for TypeErrorAt {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Like [`infer_scalar_type`] but attaches the node's path to any error.
///
/// # Errors
///
/// Returns a [`TypeErrorAt`] wrapping the [`TypeError`] with `path`.
pub fn infer_scalar_type_at(
    expr: &Expr,
    syms: &SymTable,
    path: &IrPath,
) -> Result<ScalarType, TypeErrorAt> {
    infer_scalar_type(expr, syms).map_err(|error| TypeErrorAt {
        path: path.to_string(),
        error,
        span: None,
    })
}

/// Infers the scalar type of `expr` under the symbol table.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed (non-scalar
/// variable in scalar position, bad tuple projection, and so on).
pub fn infer_scalar_type(expr: &Expr, syms: &SymTable) -> Result<ScalarType, TypeError> {
    match expr {
        Expr::Lit(Lit::F32(_)) => Ok(ScalarType::Prim(DType::F32)),
        Expr::Lit(Lit::I32(_)) => Ok(ScalarType::Prim(DType::I32)),
        Expr::Lit(Lit::Bool(_)) => Ok(ScalarType::Prim(DType::Bool)),
        Expr::SizeOf(_) => Ok(ScalarType::Prim(DType::I32)),
        Expr::Var(s) => match syms.ty(*s) {
            Type::Scalar(t) => Ok(t.clone()),
            other => Err(TypeError::NotScalar(format!("{s} : {other}"))),
        },
        Expr::Un(op, a) => {
            let at = infer_scalar_type(a, syms)?;
            Ok(match op {
                UnOp::Not => ScalarType::Prim(DType::Bool),
                UnOp::ToF32 => ScalarType::Prim(DType::F32),
                UnOp::ToI32 => ScalarType::Prim(DType::I32),
                UnOp::Neg | UnOp::Sqrt | UnOp::Ln | UnOp::Exp | UnOp::Abs | UnOp::Square => at,
            })
        }
        Expr::Bin(op, a, b) => {
            let at = infer_scalar_type(a, syms)?;
            let bt = infer_scalar_type(b, syms)?;
            if op.is_comparison() {
                return Ok(ScalarType::Prim(DType::Bool));
            }
            match op {
                BinOp::And | BinOp::Or => Ok(ScalarType::Prim(DType::Bool)),
                _ => {
                    if at != bt {
                        // Integer/float mixing is permitted where one side is
                        // an index expression scaled into float math; the
                        // result takes the float side.
                        let f32t = ScalarType::Prim(DType::F32);
                        if at == f32t || bt == f32t {
                            return Ok(f32t);
                        }
                        return Err(TypeError::Mismatch {
                            left: at,
                            right: bt,
                        });
                    }
                    Ok(at)
                }
            }
        }
        Expr::Select {
            if_true, if_false, ..
        } => {
            let t = infer_scalar_type(if_true, syms)?;
            let f = infer_scalar_type(if_false, syms)?;
            if t != f {
                return Err(TypeError::Mismatch { left: t, right: f });
            }
            Ok(t)
        }
        Expr::Tuple(es) => {
            let mut fields = Vec::with_capacity(es.len());
            for e in es {
                match infer_scalar_type(e, syms)? {
                    ScalarType::Prim(d) => fields.push(d),
                    ScalarType::Tuple(_) => return Err(TypeError::NestedTuple),
                }
            }
            Ok(ScalarType::Tuple(fields))
        }
        Expr::Field(a, i) => {
            let at = infer_scalar_type(a, syms)?;
            match &at {
                ScalarType::Tuple(fs) if *i < fs.len() => Ok(ScalarType::Prim(fs[*i])),
                _ => Err(TypeError::BadField { ty: at, index: *i }),
            }
        }
        Expr::Read { tensor, .. } => match syms.ty(*tensor) {
            Type::Tensor { elem, .. } => Ok(elem.clone()),
            Type::DynVec { elem } => Ok(elem.clone()),
            other => Err(TypeError::NotTensor(format!("{tensor} : {other}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::size::Size;
    use crate::types::Type;

    #[test]
    fn literals_and_arith() {
        let syms = SymTable::new();
        let e = Expr::f32(1.0).add(Expr::f32(2.0));
        assert_eq!(
            infer_scalar_type(&e, &syms),
            Ok(ScalarType::Prim(DType::F32))
        );
    }

    #[test]
    fn comparison_is_bool() {
        let syms = SymTable::new();
        let e = Expr::int(1).lt(Expr::int(2));
        assert_eq!(
            infer_scalar_type(&e, &syms),
            Ok(ScalarType::Prim(DType::Bool))
        );
    }

    #[test]
    fn mixed_int_float_promotes() {
        let syms = SymTable::new();
        let e = Expr::int(1).mul(Expr::f32(2.0));
        assert_eq!(
            infer_scalar_type(&e, &syms),
            Ok(ScalarType::Prim(DType::F32))
        );
    }

    #[test]
    fn tuple_and_field() {
        let syms = SymTable::new();
        let e = Expr::Tuple(vec![Expr::f32(0.0), Expr::int(1)]);
        assert_eq!(
            infer_scalar_type(&e, &syms),
            Ok(ScalarType::Tuple(vec![DType::F32, DType::I32]))
        );
        let f = e.field(1);
        assert_eq!(
            infer_scalar_type(&f, &syms),
            Ok(ScalarType::Prim(DType::I32))
        );
    }

    #[test]
    fn read_elem_type() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::tensor(DType::F32, vec![Size::var("n")]));
        let e = Expr::read(x, vec![Expr::int(0)]);
        assert_eq!(
            infer_scalar_type(&e, &syms),
            Ok(ScalarType::Prim(DType::F32))
        );
    }

    #[test]
    fn read_non_tensor_errors() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::f32());
        let e = Expr::read(x, vec![Expr::int(0)]);
        assert!(infer_scalar_type(&e, &syms).is_err());
    }

    #[test]
    fn located_error_carries_path() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::f32());
        let e = Expr::read(x, vec![Expr::int(0)]);
        let path = crate::path::IrPath::root("prog").child("out[0]");
        let err = infer_scalar_type_at(&e, &syms, &path).unwrap_err();
        assert_eq!(err.path, "prog/out[0]");
        assert!(err.to_string().starts_with("prog/out[0]: "));
    }

    #[test]
    fn select_mismatch_errors() {
        let syms = SymTable::new();
        let e = Expr::select(
            Expr::Lit(Lit::Bool(true)),
            Expr::int(1),
            Expr::Lit(Lit::Bool(false)),
        );
        assert!(infer_scalar_type(&e, &syms).is_err());
    }
}
