//! Memory access pattern analysis.
//!
//! Classifies each tensor index expression as *affine* in a set of control
//! symbols (enclosing pattern indices), affine with a *dynamic* offset, or
//! *non-affine* (data-dependent). The paper uses this distinction in two
//! places: strip mining only introduces tile copies for statically
//! predictable accesses (§4), and hardware generation infers caches/CAMs
//! for non-affine accesses while banking buffers for affine ones (§5).

use std::collections::{BTreeMap, BTreeSet};

use crate::block::{Block, Op};
use crate::expr::{BinOp, Expr, Lit};
use crate::size::Size;
use crate::types::Sym;

/// Classification of a single index expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexClass {
    /// Affine in the control symbols with a statically known offset:
    /// `sum(coeff_i * sym_i) + offset`.
    Affine {
        /// Per-control-symbol coefficients (only nonzero entries).
        terms: BTreeMap<Sym, Size>,
        /// Constant/offset part.
        offset: Size,
    },
    /// Affine in the control symbols but offset by a value only known at
    /// run time (e.g. a computed cluster index): `sum(coeff*sym) + dyn`.
    AffineDynamic {
        /// Per-control-symbol coefficients.
        terms: BTreeMap<Sym, Size>,
    },
    /// Not expressible as an affine function of the control symbols.
    NonAffine,
}

impl IndexClass {
    /// Returns the coefficient of `sym`, if the index is (dynamic-)affine.
    pub fn coeff(&self, sym: Sym) -> Option<Size> {
        match self {
            IndexClass::Affine { terms, .. } | IndexClass::AffineDynamic { terms } => {
                Some(terms.get(&sym).cloned().unwrap_or(Size::Const(0)))
            }
            IndexClass::NonAffine => None,
        }
    }

    /// Returns `true` for fully static affine accesses.
    pub fn is_static_affine(&self) -> bool {
        matches!(self, IndexClass::Affine { .. })
    }

    /// Returns `true` if the access location depends on run-time data.
    pub fn is_data_dependent(&self) -> bool {
        matches!(
            self,
            IndexClass::AffineDynamic { .. } | IndexClass::NonAffine
        )
    }
}

struct LinForm {
    terms: BTreeMap<Sym, Size>,
    offset: Size,
    dynamic: bool,
}

impl LinForm {
    fn constant(s: Size) -> LinForm {
        LinForm {
            terms: BTreeMap::new(),
            offset: s,
            dynamic: false,
        }
    }
}

fn linearize(e: &Expr, control: &BTreeSet<Sym>) -> Option<LinForm> {
    match e {
        Expr::Lit(Lit::I32(v)) => Some(LinForm::constant(Size::Const(*v))),
        Expr::SizeOf(s) => Some(LinForm::constant(s.clone())),
        Expr::Var(s) => {
            if control.contains(s) {
                let mut terms = BTreeMap::new();
                terms.insert(*s, Size::Const(1));
                Some(LinForm {
                    terms,
                    offset: Size::Const(0),
                    dynamic: false,
                })
            } else {
                // A scalar bound outside the control set: its value is only
                // known at run time.
                Some(LinForm {
                    terms: BTreeMap::new(),
                    offset: Size::Const(0),
                    dynamic: true,
                })
            }
        }
        Expr::Bin(BinOp::Add, a, b) | Expr::Bin(BinOp::Sub, a, b) => {
            let negate = matches!(e, Expr::Bin(BinOp::Sub, _, _));
            let la = linearize(a, control)?;
            let lb = linearize(b, control)?;
            let mut terms = la.terms;
            for (s, c) in lb.terms {
                let c = if negate { Size::Const(0) - c } else { c };
                let entry = terms.entry(s).or_insert(Size::Const(0));
                *entry = entry.clone() + c;
            }
            let offset = if negate {
                la.offset - lb.offset
            } else {
                la.offset + lb.offset
            };
            Some(LinForm {
                terms,
                offset,
                dynamic: la.dynamic || lb.dynamic,
            })
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            let la = linearize(a, control)?;
            let lb = linearize(b, control)?;
            // Exactly one side may carry control terms; the other must be a
            // static scale factor.
            let (scale, form) = if la.terms.is_empty() && !la.dynamic {
                (la.offset, lb)
            } else if lb.terms.is_empty() && !lb.dynamic {
                (lb.offset, la)
            } else {
                return None;
            };
            Some(LinForm {
                terms: form
                    .terms
                    .into_iter()
                    .map(|(s, c)| (s, c * scale.clone()))
                    .collect(),
                offset: form.offset * scale,
                dynamic: form.dynamic,
            })
        }
        _ => None,
    }
}

/// Classifies an index expression with respect to the control symbols.
pub fn classify_index(e: &Expr, control: &BTreeSet<Sym>) -> IndexClass {
    match linearize(e, control) {
        None => IndexClass::NonAffine,
        Some(form) => {
            let terms: BTreeMap<Sym, Size> = form
                .terms
                .into_iter()
                .map(|(s, c)| (s, c.simplified()))
                .filter(|(_, c)| c != &Size::Const(0))
                .collect();
            if form.dynamic {
                IndexClass::AffineDynamic { terms }
            } else {
                IndexClass::Affine {
                    terms,
                    offset: form.offset.simplified(),
                }
            }
        }
    }
}

/// One observed tensor access inside a block.
#[derive(Debug, Clone)]
pub struct TensorAccess {
    /// Tensor being read.
    pub tensor: Sym,
    /// Per-dimension index classification.
    pub dims: Vec<IndexClass>,
}

impl TensorAccess {
    /// Returns `true` if every dimension is statically affine.
    pub fn is_affine(&self) -> bool {
        self.dims.iter().all(|d| d.is_static_affine())
    }
}

/// Collects every element read of every tensor in `block` (recursively
/// through nested patterns), classifying each index against `control`
/// extended by the indices of the patterns traversed on the way down.
pub fn collect_accesses(block: &Block, control: &BTreeSet<Sym>) -> Vec<TensorAccess> {
    let mut out = Vec::new();
    collect_block(block, control, &mut out);
    out
}

fn collect_block(block: &Block, control: &BTreeSet<Sym>, out: &mut Vec<TensorAccess>) {
    for stmt in &block.stmts {
        match &stmt.op {
            Op::Expr(e) => collect_expr(e, control, out),
            Op::VarVec(items) => {
                for it in items {
                    if let Some(g) = &it.guard {
                        collect_expr(g, control, out);
                    }
                    collect_expr(&it.value, control, out);
                }
            }
            Op::Slice(_) | Op::Copy(_) => {}
            Op::Pattern(p) => {
                let mut inner = control.clone();
                inner.extend(p.param_syms());
                for b in p.child_blocks() {
                    collect_block(b, &inner, out);
                }
                // Update locations are accesses into the accumulator.
                if let crate::pattern::Pattern::MultiFold(mf) = p {
                    for u in &mf.updates {
                        for e in &u.loc {
                            collect_expr(e, &inner, out);
                        }
                    }
                }
            }
        }
    }
}

fn collect_expr(e: &Expr, control: &BTreeSet<Sym>, out: &mut Vec<TensorAccess>) {
    e.visit(&mut |sub| {
        if let Expr::Read { tensor, index } = sub {
            out.push(TensorAccess {
                tensor: *tensor,
                dims: index.iter().map(|i| classify_index(i, control)).collect(),
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    fn ctl(ids: &[u32]) -> BTreeSet<Sym> {
        ids.iter().map(|i| Sym(*i)).collect()
    }

    #[test]
    fn plain_index_is_affine() {
        let c = classify_index(&Expr::var(s(0)), &ctl(&[0]));
        match c {
            IndexClass::Affine { terms, offset } => {
                assert_eq!(terms.get(&s(0)), Some(&Size::Const(1)));
                assert_eq!(offset, Size::Const(0));
            }
            other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn scaled_index_with_size_coeff() {
        // ii * b  — tiled outer index
        let e = Expr::var(s(0)).mul(Expr::SizeOf(Size::var("b")));
        let c = classify_index(&e, &ctl(&[0]));
        assert_eq!(c.coeff(s(0)), Some(Size::var("b")));
    }

    #[test]
    fn sum_of_indices() {
        // i + j*4 + 2
        let e = Expr::var(s(0))
            .add(Expr::var(s(1)).mul(Expr::int(4)))
            .add(Expr::int(2));
        match classify_index(&e, &ctl(&[0, 1])) {
            IndexClass::Affine { terms, offset } => {
                assert_eq!(terms.get(&s(0)), Some(&Size::Const(1)));
                assert_eq!(terms.get(&s(1)), Some(&Size::Const(4)));
                assert_eq!(offset, Size::Const(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreign_scalar_is_dynamic() {
        // minIdx + i with minIdx not a control sym
        let e = Expr::var(s(7)).add(Expr::var(s(0)));
        match classify_index(&e, &ctl(&[0])) {
            IndexClass::AffineDynamic { terms } => {
                assert_eq!(terms.get(&s(0)), Some(&Size::Const(1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn product_of_indices_is_non_affine() {
        let e = Expr::var(s(0)).mul(Expr::var(s(1)));
        assert_eq!(classify_index(&e, &ctl(&[0, 1])), IndexClass::NonAffine);
    }

    #[test]
    fn read_based_index_is_non_affine() {
        let e = Expr::read(s(3), vec![Expr::var(s(0))]);
        assert_eq!(classify_index(&e, &ctl(&[0])), IndexClass::NonAffine);
    }

    #[test]
    fn data_dependence_predicate() {
        assert!(IndexClass::NonAffine.is_data_dependent());
        assert!(!IndexClass::Affine {
            terms: BTreeMap::new(),
            offset: Size::Const(0)
        }
        .is_data_dependent());
    }

    #[test]
    fn sub_negates_coefficient() {
        // i - j
        let e = Expr::var(s(0)).sub(Expr::var(s(1)));
        match classify_index(&e, &ctl(&[0, 1])) {
            IndexClass::Affine { terms, .. } => {
                assert_eq!(
                    terms.get(&s(1)).map(|c| c.simplified()),
                    Some(Size::Const(0) - Size::Const(1))
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
