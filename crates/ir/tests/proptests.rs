//! Property-based tests on core IR invariants, on the hermetic
//! `pphw-testkit` harness.
//!
//! Each property draws a fixed number of cases from a pinned seed, so CI is
//! reproducible; a failure prints a `PPHW_PROP_SEED` value that replays the
//! failing input exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_testkit::prop::{shrink, Check};
use pphw_testkit::{prop_assert, prop_assert_eq};

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::size::{Size, SizeEnv};
use pphw_ir::types::{DType, ScalarType};

/// Size arithmetic agrees with integer arithmetic under evaluation.
#[test]
fn size_arithmetic_matches_integers() {
    Check::new("size_arithmetic_matches_integers").run(
        |rng| {
            (
                rng.gen_range(1i64..1000),
                rng.gen_range(1i64..1000),
                rng.gen_range(1i64..100),
            )
        },
        |&(a, b, c)| {
            let env = SizeEnv::new();
            let sa = Size::from(a);
            let sb = Size::from(b);
            prop_assert_eq!((sa.clone() + sb.clone()).eval(&env).unwrap(), a + b);
            prop_assert_eq!((sa.clone() * sb.clone()).eval(&env).unwrap(), a * b);
            let prod = Size::from(a * c);
            prop_assert_eq!((prod / Size::from(c)).eval(&env).unwrap(), a);
            prop_assert_eq!(sb.eval(&env).unwrap(), b);
            Ok(())
        },
    );
}

/// Simplification never changes the value of a size expression.
#[test]
fn size_simplify_preserves_value() {
    Check::new("size_simplify_preserves_value").run(
        |rng| {
            (
                rng.gen_range(1i64..512),
                *rng.choose(&[1i64, 2, 4, 8, 16]),
                rng.gen_range(0i64..64),
            )
        },
        |&(n, b, k)| {
            let env = Size::env(&[("n", n * b), ("k", k)]);
            let e = (Size::var("n") / Size::from(b)) * Size::from(b) + Size::var("k");
            prop_assert_eq!(e.eval(&env).unwrap(), e.simplified().eval(&env).unwrap());
            Ok(())
        },
    );
}

/// map over a vector equals the element-wise golden computation.
#[test]
fn interp_map_matches_golden() {
    Check::new("interp_map_matches_golden").run_shrink(
        |rng| {
            let n = rng.gen_range(1usize..64);
            rng.f32_vec(n, -100.0, 100.0)
        },
        |data| shrink::vec(data, 1),
        |data| {
            let mut b = ProgramBuilder::new("affine");
            let d = b.size("d");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.map(vec![d], |c, i| {
                c.add(c.mul(c.f32(3.0), c.read(x, vec![c.var(i[0])])), c.f32(1.0))
            });
            let prog = b.finish(vec![out]);
            let n = data.len();
            let r = Interpreter::new(&prog, &[("d", n as i64)])
                .run(vec![Value::tensor_f32(&[n], data.clone())])
                .unwrap();
            let expect: Vec<f32> = data.iter().map(|v| 3.0 * v + 1.0).collect();
            prop_assert_eq!(r[0].as_f32_slice(), expect);
            Ok(())
        },
    );
}

/// A scalar sum fold equals the golden sum (within f32 tolerance).
#[test]
fn interp_fold_matches_golden() {
    Check::new("interp_fold_matches_golden").run_shrink(
        |rng| {
            let n = rng.gen_range(1usize..128);
            rng.f32_vec(n, -10.0, 10.0)
        },
        |data| shrink::vec(data, 1),
        |data| {
            let mut b = ProgramBuilder::new("sum");
            let d = b.size("d");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.fold(
                "sum",
                vec![d],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            );
            let prog = b.finish(vec![out]);
            let n = data.len();
            let r = Interpreter::new(&prog, &[("d", n as i64)])
                .run(vec![Value::tensor_f32(&[n], data.clone())])
                .unwrap();
            let expect: f32 = data.iter().sum();
            let got = r[0].as_f32_slice()[0];
            prop_assert!(
                (got - expect).abs() <= 1e-3 * expect.abs().max(1.0),
                "sum diverged: got {got}, want {expect}"
            );
            Ok(())
        },
    );
}

/// Filter preserves exactly the elements satisfying the predicate, in
/// order.
#[test]
fn interp_filter_matches_golden() {
    Check::new("interp_filter_matches_golden").run_shrink(
        |rng| {
            let n = rng.gen_range(1usize..100);
            (rng.f32_vec(n, -50.0, 50.0), rng.gen_range(-20.0f32..20.0))
        },
        |(data, threshold)| {
            shrink::vec(data, 1)
                .into_iter()
                .map(|d| (d, *threshold))
                .collect()
        },
        |(data, threshold)| {
            let threshold = *threshold;
            let mut b = ProgramBuilder::new("filter");
            let d = b.size("d");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.filter("keep", d, |c, i| {
                let v = c.read(x, vec![c.var(i)]);
                (c.lt(c.f32(threshold), v.clone()), v)
            });
            let prog = b.finish(vec![out]);
            let n = data.len();
            let r = Interpreter::new(&prog, &[("d", n as i64)])
                .run(vec![Value::tensor_f32(&[n], data.clone())])
                .unwrap();
            let expect: Vec<f32> = data.iter().copied().filter(|v| *v > threshold).collect();
            prop_assert_eq!(r[0].as_f32_slice(), expect);
            Ok(())
        },
    );
}

/// Histogram bucket counts sum to the input length and match a BTreeMap
/// golden.
#[test]
fn interp_histogram_matches_golden() {
    Check::new("interp_histogram_matches_golden").run_shrink(
        |rng| {
            let n = rng.gen_range(1usize..100);
            rng.i64_vec(n, 0, 100)
        },
        |data| shrink::vec(data, 1),
        |data| {
            let mut b = ProgramBuilder::new("hist");
            let d = b.size("d");
            let x = b.input("x", DType::I32, vec![d.clone()]);
            let out = b.group_by_fold(
                "hist",
                d,
                ScalarType::Prim(DType::I32),
                Init::zero_i32(),
                |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
                |a, b| a.add(b),
            );
            let prog = b.finish(vec![out]);
            let n = data.len();
            let r = Interpreter::new(&prog, &[("d", n as i64)])
                .run(vec![Value::tensor_i32(&[n], data.clone())])
                .unwrap();
            let mut expect = std::collections::BTreeMap::new();
            for v in data {
                *expect.entry(v / 10).or_insert(0i64) += 1;
            }
            match &r[0] {
                Value::Dict(d) => {
                    prop_assert_eq!(d.len(), expect.len());
                    let mut total = 0i64;
                    for (k, v) in d {
                        let key = match k {
                            pphw_ir::interp::ScalarVal::I(i) => *i,
                            other => return Err(format!("bad key {other:?}")),
                        };
                        let count = match v {
                            Value::Scalar(pphw_ir::interp::ScalarVal::I(c)) => *c,
                            other => return Err(format!("bad val {other:?}")),
                        };
                        prop_assert_eq!(Some(&count), expect.get(&key));
                        total += count;
                    }
                    prop_assert_eq!(total, n as i64);
                }
                other => return Err(format!("expected dict, got {other:?}")),
            }
            Ok(())
        },
    );
}

/// classify_index is stable under adding a constant: coefficients are
/// unchanged, only the offset moves.
#[test]
fn affine_classification_offset_invariant() {
    Check::new("affine_classification_offset_invariant").run(
        |rng| (rng.gen_range(0i64..100), rng.gen_range(0i64..100)),
        |&(c1, c2)| {
            use pphw_ir::access::{classify_index, IndexClass};
            use pphw_ir::expr::Expr;
            use pphw_ir::types::Sym;
            let idx: std::collections::BTreeSet<Sym> = [Sym(0)].into_iter().collect();
            let base = Expr::var(Sym(0)).mul(Expr::int(4));
            let e1 = base.clone().add(Expr::int(c1));
            let e2 = base.add(Expr::int(c2));
            match (classify_index(&e1, &idx), classify_index(&e2, &idx)) {
                (IndexClass::Affine { terms: t1, .. }, IndexClass::Affine { terms: t2, .. }) => {
                    prop_assert_eq!(t1, t2);
                }
                other => return Err(format!("{other:?}")),
            }
            Ok(())
        },
    );
}
