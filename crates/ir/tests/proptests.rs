//! Property-based tests on core IR invariants.

use proptest::prelude::*;

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::size::{Size, SizeEnv};
use pphw_ir::types::{DType, ScalarType};

proptest! {
    /// Size arithmetic agrees with integer arithmetic under evaluation.
    #[test]
    fn size_arithmetic_matches_integers(a in 1i64..1000, b in 1i64..1000, c in 1i64..100) {
        let env = SizeEnv::new();
        let sa = Size::from(a);
        let sb = Size::from(b);
        prop_assert_eq!((sa.clone() + sb.clone()).eval(&env).unwrap(), a + b);
        prop_assert_eq!((sa.clone() * sb.clone()).eval(&env).unwrap(), a * b);
        let prod = Size::from(a * c);
        prop_assert_eq!((prod / Size::from(c)).eval(&env).unwrap(), a);
        prop_assert_eq!(sb.eval(&env).unwrap(), b);
    }

    /// Simplification never changes the value of a size expression.
    #[test]
    fn size_simplify_preserves_value(
        n in 1i64..512,
        b in prop::sample::select(vec![1i64, 2, 4, 8, 16]),
        k in 0i64..64,
    ) {
        let env = Size::env(&[("n", n * b), ("k", k)]);
        let e = (Size::var("n") / Size::from(b)) * Size::from(b) + Size::var("k");
        prop_assert_eq!(e.eval(&env).unwrap(), e.simplified().eval(&env).unwrap());
    }

    /// map over a vector equals the element-wise golden computation.
    #[test]
    fn interp_map_matches_golden(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let mut b = ProgramBuilder::new("affine");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, i| {
            c.add(c.mul(c.f32(3.0), c.read(x, vec![c.var(i[0])])), c.f32(1.0))
        });
        let prog = b.finish(vec![out]);
        let n = data.len();
        let r = Interpreter::new(&prog, &[("d", n as i64)])
            .run(vec![Value::tensor_f32(&[n], data.clone())])
            .unwrap();
        let expect: Vec<f32> = data.iter().map(|v| 3.0 * v + 1.0).collect();
        prop_assert_eq!(r[0].as_f32_slice(), expect);
    }

    /// A scalar sum fold equals the golden sum (within f32 tolerance).
    #[test]
    fn interp_fold_matches_golden(data in prop::collection::vec(-10.0f32..10.0, 1..128)) {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum", vec![d], vec![], ScalarType::Prim(DType::F32), Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);
        let n = data.len();
        let r = Interpreter::new(&prog, &[("d", n as i64)])
            .run(vec![Value::tensor_f32(&[n], data.clone())])
            .unwrap();
        let expect: f32 = data.iter().sum();
        let got = r[0].as_f32_slice()[0];
        prop_assert!((got - expect).abs() <= 1e-3 * expect.abs().max(1.0));
    }

    /// Filter preserves exactly the elements satisfying the predicate, in
    /// order.
    #[test]
    fn interp_filter_matches_golden(
        data in prop::collection::vec(-50.0f32..50.0, 1..100),
        threshold in -20.0f32..20.0,
    ) {
        let mut b = ProgramBuilder::new("filter");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.filter("keep", d, |c, i| {
            let v = c.read(x, vec![c.var(i)]);
            (c.lt(c.f32(threshold), v.clone()), v)
        });
        let prog = b.finish(vec![out]);
        let n = data.len();
        let r = Interpreter::new(&prog, &[("d", n as i64)])
            .run(vec![Value::tensor_f32(&[n], data.clone())])
            .unwrap();
        let expect: Vec<f32> = data.into_iter().filter(|v| *v > threshold).collect();
        prop_assert_eq!(r[0].as_f32_slice(), expect);
    }

    /// Histogram bucket counts sum to the input length and match a HashMap
    /// golden.
    #[test]
    fn interp_histogram_matches_golden(data in prop::collection::vec(0i64..100, 1..100)) {
        let mut b = ProgramBuilder::new("hist");
        let d = b.size("d");
        let x = b.input("x", DType::I32, vec![d.clone()]);
        let out = b.group_by_fold(
            "hist", d, ScalarType::Prim(DType::I32), Init::zero_i32(),
            |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
            |a, b| a.add(b),
        );
        let prog = b.finish(vec![out]);
        let n = data.len();
        let r = Interpreter::new(&prog, &[("d", n as i64)])
            .run(vec![Value::tensor_i32(&[n], data.clone())])
            .unwrap();
        let mut expect = std::collections::BTreeMap::new();
        for v in &data {
            *expect.entry(v / 10).or_insert(0i64) += 1;
        }
        match &r[0] {
            Value::Dict(d) => {
                prop_assert_eq!(d.len(), expect.len());
                let mut total = 0i64;
                for (k, v) in d {
                    let key = match k {
                        pphw_ir::interp::ScalarVal::I(i) => *i,
                        other => return Err(TestCaseError::fail(format!("bad key {other:?}"))),
                    };
                    let count = match v {
                        Value::Scalar(pphw_ir::interp::ScalarVal::I(c)) => *c,
                        other => return Err(TestCaseError::fail(format!("bad val {other:?}"))),
                    };
                    prop_assert_eq!(Some(&count), expect.get(&key));
                    total += count;
                }
                prop_assert_eq!(total, n as i64);
            }
            other => return Err(TestCaseError::fail(format!("expected dict, got {other:?}"))),
        }
    }

    /// classify_index is stable under adding a constant: coefficients are
    /// unchanged, only the offset moves.
    #[test]
    fn affine_classification_offset_invariant(c1 in 0i64..100, c2 in 0i64..100) {
        use pphw_ir::access::{classify_index, IndexClass};
        use pphw_ir::expr::Expr;
        use pphw_ir::types::Sym;
        let idx: std::collections::BTreeSet<Sym> = [Sym(0)].into_iter().collect();
        let base = Expr::var(Sym(0)).mul(Expr::int(4));
        let e1 = base.clone().add(Expr::int(c1));
        let e2 = base.add(Expr::int(c2));
        match (classify_index(&e1, &idx), classify_index(&e2, &idx)) {
            (IndexClass::Affine { terms: t1, .. }, IndexClass::Affine { terms: t2, .. }) => {
                prop_assert_eq!(t1, t2);
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }
}
