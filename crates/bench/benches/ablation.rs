//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * metapipelining on/off on the same tiled design (per benchmark);
//! * tile-size sweep for gemm and k-means (locality vs. buffer area);
//! * interchange on/off for k-means (the Figure 5a vs 5b traffic);
//! * accumulator elision on/off for the k-means tile merge;
//! * parallelism-factor sweep for gda's outer-product stage.
//!
//! Each ablation prints its table once; the `pphw-testkit` timer tracks
//! the simulate/compile call.

use pphw::{compile, CompileOptions, OptLevel};
use pphw_sim::SimConfig;
use pphw_testkit::bench::BenchGroup;
use pphw_transform::cost::analyze_cost;
use pphw_transform::{tile_program, tile_program_no_interchange, TileConfig};

fn cycles(compiled: &pphw::Compiled, sim: &SimConfig) -> u64 {
    compiled.simulate(sim).expect("simulates").cycles
}

fn ablation_metapipeline(group: &mut BenchGroup) {
    let sim = SimConfig::default();
    println!("\n=== ablation: metapipelining on/off (same tiled IR) ===");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let base = CompileOptions::new(&(spec.sizes)())
            .tiles(&(spec.tiles)())
            .inner_par(spec.inner_par);
        let seq = compile(&prog, &base.clone().opt(OptLevel::Tiled)).expect("seq");
        let meta = compile(&prog, &base.clone().opt(OptLevel::Metapipelined)).expect("meta");
        let (cs, cm) = (cycles(&seq, &sim), cycles(&meta, &sim));
        println!(
            "  {:<10} sequential {:>12} cyc   metapipelined {:>12} cyc   gain {:>5.2}x",
            spec.name,
            cs,
            cm,
            cs as f64 / cm as f64
        );
    }
    let spec = pphw_apps::all_benchmarks()
        .into_iter()
        .find(|s| s.name == "gemm")
        .expect("gemm");
    let prog = (spec.program)();
    let opts = CompileOptions::new(&(spec.sizes)())
        .tiles(&(spec.tiles)())
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).expect("compiles");
    group.bench("metapipeline_gemm", || {
        std::hint::black_box(cycles(&compiled, &sim))
    });
}

fn ablation_tile_size(group: &mut BenchGroup) {
    let sim = SimConfig::default();
    println!("\n=== ablation: gemm tile size (cycles vs on-chip bytes) ===");
    let prog = pphw_apps::simple::gemm_program();
    let sizes = [("m", 256), ("n", 256), ("p", 256)];
    for b in [16i64, 32, 64, 128] {
        let opts = CompileOptions::new(&sizes)
            .tiles(&[("m", b), ("n", b), ("p", b)])
            .opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).expect("compiles");
        let report = compiled.simulate(&sim).expect("simulates");
        println!(
            "  tile {b:>4}: {:>12} cyc  {:>12} DRAM words  {:>10} on-chip bytes",
            report.cycles,
            report.dram_words,
            compiled.design.on_chip_bytes()
        );
    }
    group.bench("tile_sweep_compile", || {
        let opts = CompileOptions::new(&sizes)
            .tiles(&[("m", 64), ("n", 64), ("p", 64)])
            .opt(OptLevel::Metapipelined);
        std::hint::black_box(compile(&prog, &opts).expect("compiles"))
    });
}

fn ablation_interchange(group: &mut BenchGroup) {
    println!("\n=== ablation: k-means interchange on/off (Figure 5 traffic) ===");
    let prog = pphw_apps::kmeans::kmeans_program();
    let sizes = [("n", 16384), ("k", 16), ("d", 32)];
    let env = pphw_ir::Size::env(&sizes);
    let cfg = TileConfig::new(&[("n", 512), ("k", 8)], &sizes);
    let strip = tile_program_no_interchange(&prog, &cfg).expect("strip");
    let inter = tile_program(&prog, &cfg).expect("tile");
    let rs = analyze_cost(&strip).total_reads(&env).expect("reads");
    let ri = analyze_cost(&inter).total_reads(&env).expect("reads");
    println!(
        "  strip-mined DRAM reads {rs:>12}   interchanged {ri:>12}   reduction {:.1}x",
        rs as f64 / ri as f64
    );
    assert!(ri < rs, "interchange must reduce traffic");
    group.bench("kmeans_interchange", || {
        std::hint::black_box(tile_program(&prog, &cfg).expect("tile"))
    });
}

fn ablation_elision(group: &mut BenchGroup) {
    let sim = SimConfig::default();
    // gemm's tiled update is real compute (the interchanged map-of-fold),
    // so elision correctly never fires there; k-means' outer tile merge is
    // a pure elementwise merge and is the paper's motivating case.
    println!("\n=== ablation: accumulator elision on/off (kmeans tile merge) ===");
    let prog = pphw_apps::kmeans::kmeans_program();
    let sizes = [("n", 16384), ("k", 16), ("d", 32)];
    let cfg = TileConfig::new(&[("n", 512), ("k", 8)], &sizes);
    let tiled = tile_program(&prog, &cfg).expect("tiles");
    let env = pphw_ir::Size::env(&sizes);
    for elide in [true, false] {
        let hw = pphw_hw::HwConfig {
            elide_accumulators: elide,
            ..pphw_hw::HwConfig::default()
        };
        let design = pphw_hw::generate(&tiled, &env, &hw, pphw_hw::DesignStyle::Metapipelined)
            .expect("generates");
        let report = pphw_sim::simulate(&design, &sim).expect("simulates");
        let area = pphw_hw::design_area(&design);
        println!(
            "  elide={elide:<5} {:>12} cyc  {:>8.0} mem blocks  {} buffers",
            report.cycles,
            area.mem,
            design.buffers.len()
        );
    }
    group.bench("kmeans_generate", || {
        let hw = pphw_hw::HwConfig::default();
        std::hint::black_box(
            pphw_hw::generate(&tiled, &env, &hw, pphw_hw::DesignStyle::Metapipelined)
                .expect("generates"),
        )
    });
}

fn ablation_gda_parallelism(group: &mut BenchGroup) {
    let sim = SimConfig::default();
    println!("\n=== ablation: gda outer-product parallelism sweep ===");
    let prog = pphw_apps::gda::gda_program();
    let sizes = [("n", 4096), ("d", 32)];
    for par in [64u32, 128, 256, 512] {
        let opts = CompileOptions::new(&sizes)
            .tiles(&[("n", 256)])
            .inner_par(128)
            .meta_inner_par(par)
            .opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).expect("compiles");
        let report = compiled.simulate(&sim).expect("simulates");
        let area = compiled.area();
        println!(
            "  par {par:>4}: {:>10} cyc  logic {:>9.0}",
            report.cycles, area.logic
        );
    }
    let opts = CompileOptions::new(&sizes)
        .tiles(&[("n", 256)])
        .inner_par(128)
        .meta_inner_par(512)
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).expect("compiles");
    group.bench("gda_par_512", || {
        std::hint::black_box(compiled.simulate(&sim).expect("simulates").cycles)
    });
}

fn main() {
    let mut group = BenchGroup::new("ablation");
    ablation_metapipeline(&mut group);
    ablation_tile_size(&mut group);
    ablation_interchange(&mut group);
    ablation_elision(&mut group);
    ablation_gda_parallelism(&mut group);
    let _ = group.finish();
}
