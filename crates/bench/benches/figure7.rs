//! Benchmark regenerating Figure 7: for every benchmark of Table 5,
//! measures the simulated design at all three optimization levels and
//! reports the speedups alongside the paper's numbers.
//!
//! The *measured quantity* here is the simulated cycle count of each
//! design (the paper's y-axis); the wall-clock numbers measure the
//! compile+simulate pipeline itself. Runs under `cargo bench` via the
//! `pphw-testkit` timer (set `PPHW_BENCH_QUICK=1` for a smoke pass).

use pphw::{compile, OptLevel};
use pphw_bench::{evaluate_benchmark, format_fig7, format_fig7_area, options_for, paper_speedups};
use pphw_sim::SimConfig;
use pphw_testkit::bench::BenchGroup;

fn main() {
    let sim = SimConfig::default();

    // Print the Figure 7 tables once, up front, so `cargo bench` output
    // contains the paper-vs-measured comparison.
    let rows = pphw_bench::figure7(&sim);
    println!("\n{}", format_fig7(&rows));
    println!("{}", format_fig7_area(&rows));

    let mut group = BenchGroup::new("figure7");
    for spec in pphw_apps::all_benchmarks() {
        for level in OptLevel::all() {
            let prog = (spec.program)();
            let opts = options_for(&spec).opt(level);
            let compiled = compile(&prog, &opts).expect("compiles");
            group.bench(&format!("{}/{level}", spec.name), || {
                let report = compiled.simulate(&sim).expect("simulates");
                std::hint::black_box(report.cycles)
            });
        }
    }
    let _ = group.finish();

    // Sanity: the headline relationships of Figure 7 hold.
    for spec in pphw_apps::all_benchmarks() {
        let eval = evaluate_benchmark(&spec, &sim);
        let tiled = eval.row(OptLevel::Tiled).speedup;
        let meta = eval.row(OptLevel::Metapipelined).speedup;
        let (pt, pm) = paper_speedups(spec.name).expect("paper row");
        println!(
            "{:<10} tiled {tiled:>6.1}x (paper {pt}), meta {meta:>6.1}x (paper {pm})",
            spec.name
        );
        assert!(
            meta >= tiled * 0.95,
            "{}: metapipelining should not lose to tiling",
            spec.name
        );
    }
}
