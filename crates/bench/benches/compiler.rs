//! Compiler-throughput benchmarks: how fast the reproduction's own passes
//! run (strip mining, interchange, copy insertion, hardware generation,
//! and the reference interpreter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pphw_ir::interp::Interpreter;
use pphw_transform::{tile_program, TileConfig};

fn bench_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/tile_program");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let cfg = TileConfig::new(&(spec.tiles)(), &(spec.sizes)());
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &prog, |b, prog| {
            b.iter(|| std::hint::black_box(tile_program(prog, &cfg).expect("tiles")))
        });
    }
    group.finish();
}

fn bench_hwgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/generate");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let cfg = TileConfig::new(&(spec.tiles)(), &(spec.sizes)());
        let tiled = tile_program(&prog, &cfg).expect("tiles");
        let env = spec.env();
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &tiled, |b, tiled| {
            b.iter(|| {
                std::hint::black_box(
                    pphw_hw::generate(
                        tiled,
                        &env,
                        &pphw_hw::HwConfig::default(),
                        pphw_hw::DesignStyle::Metapipelined,
                    )
                    .expect("generates"),
                )
            })
        });
    }
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    // Interpreter throughput on a modest gemm (the functional oracle used
    // in all correctness tests).
    let prog = pphw_apps::simple::gemm_program();
    let sizes = [("m", 16), ("n", 16), ("p", 16)];
    let env = pphw_ir::Size::env(&sizes);
    let inputs = pphw_apps::simple::gemm_inputs(&env, 5);
    c.bench_function("interp/gemm_16", |b| {
        b.iter(|| {
            let interp = Interpreter::new(&prog, &sizes);
            std::hint::black_box(interp.run(inputs.clone()).expect("runs"))
        })
    });
}

criterion_group!(benches, bench_tiling, bench_hwgen, bench_interpreter);
criterion_main!(benches);
