//! Compiler-throughput benchmarks: how fast the reproduction's own passes
//! run (strip mining, interchange, copy insertion, hardware generation,
//! and the reference interpreter). Runs under `cargo bench` via the
//! `pphw-testkit` timer.

use pphw_ir::interp::Interpreter;
use pphw_testkit::bench::BenchGroup;
use pphw_transform::{tile_program, TileConfig};

fn bench_tiling() {
    let mut group = BenchGroup::new("compile/tile_program");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let cfg = TileConfig::new(&(spec.tiles)(), &(spec.sizes)());
        group.bench(spec.name, || {
            std::hint::black_box(tile_program(&prog, &cfg).expect("tiles"))
        });
    }
    let _ = group.finish();
}

fn bench_hwgen() {
    let mut group = BenchGroup::new("compile/generate");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let cfg = TileConfig::new(&(spec.tiles)(), &(spec.sizes)());
        let tiled = tile_program(&prog, &cfg).expect("tiles");
        let env = spec.env();
        group.bench(spec.name, || {
            std::hint::black_box(
                pphw_hw::generate(
                    &tiled,
                    &env,
                    &pphw_hw::HwConfig::default(),
                    pphw_hw::DesignStyle::Metapipelined,
                )
                .expect("generates"),
            )
        });
    }
    let _ = group.finish();
}

fn bench_interpreter() {
    // Interpreter throughput on a modest gemm (the functional oracle used
    // in all correctness tests).
    let prog = pphw_apps::simple::gemm_program();
    let sizes = [("m", 16), ("n", 16), ("p", 16)];
    let env = pphw_ir::Size::env(&sizes);
    let inputs = pphw_apps::simple::gemm_inputs(&env, 5);
    let mut group = BenchGroup::new("interp");
    group.bench("gemm_16", || {
        let interp = Interpreter::new(&prog, &sizes);
        std::hint::black_box(interp.run(inputs.clone()).expect("runs"))
    });
    let _ = group.finish();
}

fn main() {
    bench_tiling();
    bench_hwgen();
    bench_interpreter();
}
