//! Shared search-space construction for the `dse` and `perf` binaries,
//! so the sweep they time is the sweep the driver exposes.

use pphw::CompileOptions;
use pphw_apps::BenchSpec;
use pphw_dse::SearchSpace;
use pphw_sim::SimConfig;

/// Power-of-two dividing tile candidates around the benchmark's default
/// tile size: `[default/4, default*2]` clamped to the dimension, largest
/// first. Keeps the per-benchmark space small while still bracketing the
/// paper's hand-picked tile from both sides. In quick mode only the two
/// smallest candidates survive: they are the ones guaranteed to fit the
/// budget, so a smoke run always finds a feasible point.
pub fn tile_candidates_around(n: i64, default_tile: i64, quick: bool) -> Vec<i64> {
    let lo = (default_tile / 4).max(4);
    let hi = (default_tile * 2).min(n);
    let mut out = Vec::new();
    let mut b = 4i64;
    while b <= n {
        if n % b == 0 && b >= lo && b <= hi {
            out.push(b);
        }
        b *= 2;
    }
    out.reverse();
    if quick {
        let keep = out.len().saturating_sub(2);
        out.drain(..keep);
    }
    out
}

/// Substrate variants swept: the default substrate only in quick mode,
/// every named variant otherwise.
pub fn sweep_sim_variants(quick: bool) -> Vec<(String, SimConfig)> {
    if quick {
        vec![("max4".to_string(), SimConfig::default())]
    } else {
        SimConfig::named_variants()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }
}

/// The joint tile × parallelism × substrate space the `dse` driver sweeps
/// for one benchmark.
///
/// # Panics
///
/// Panics if a tuned tile dimension has no declared size — benchmark
/// specs are expected to be internally consistent.
pub fn sweep_space(
    spec: &BenchSpec,
    quick: bool,
    sim_variants: &[(String, SimConfig)],
) -> SearchSpace {
    let sizes = (spec.sizes)();
    let mut space = SearchSpace::new(&sizes);
    for (dim, t) in (spec.tiles)() {
        let n = sizes
            .iter()
            .find(|(k, _)| *k == dim)
            .map(|(_, v)| *v)
            .expect("tile dim has a size");
        space = space.with_tile_candidates(dim, &tile_candidates_around(n, t, quick));
    }
    let pars: Vec<u32> = if quick {
        vec![spec.inner_par]
    } else {
        vec![32, 64]
    };
    let variants: Vec<(&str, SimConfig)> = sim_variants
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    space.with_inner_pars(&pars).with_sim_variants(&variants)
}

/// Dense DRAM-substrate grid for the guided-vs-exhaustive rows: the
/// cross product of clock, bandwidth, latency, burst size, and
/// synchronization gap — every knob the analytic cost model claims to
/// understand. Full mode enumerates 4^4 x 4 = 1024 variants; quick mode
/// a representative 16. Labels are canonical (`c150g38l64b64s8`) so
/// cache keys and reports stay stable.
pub fn big_sim_grid(quick: bool) -> Vec<(String, SimConfig)> {
    struct Grid {
        clocks: Vec<f64>,
        gbps: Vec<f64>,
        lats: Vec<u64>,
        bursts: Vec<u64>,
        gaps: Vec<u64>,
    }
    let Grid {
        clocks,
        gbps,
        lats,
        bursts,
        gaps,
    } = if quick {
        Grid {
            clocks: vec![150.0, 250.0],
            gbps: vec![38.4, 153.6],
            lats: vec![64, 256],
            bursts: vec![64],
            gaps: vec![0, 8],
        }
    } else {
        Grid {
            clocks: vec![100.0, 150.0, 200.0, 250.0],
            gbps: vec![19.2, 38.4, 76.8, 153.6],
            lats: vec![32, 64, 128, 256],
            bursts: vec![32, 64, 128, 256],
            gaps: vec![0, 4, 8, 16],
        }
    };
    let mut out = Vec::new();
    for &c in &clocks {
        for &g in &gbps {
            for &l in &lats {
                for &b in &bursts {
                    for &s in &gaps {
                        let mut cfg = SimConfig::default()
                            .with_clock_mhz(c)
                            .with_dram_gbps(g)
                            .with_dram_latency(l)
                            .with_burst_bytes(b);
                        cfg.sync_gap = s;
                        out.push((format!("c{c:.0}g{g:.0}l{l}b{b}s{s}"), cfg));
                    }
                }
            }
        }
    }
    out
}

/// A dense synthetic space for the guided-vs-exhaustive benchmark rows:
/// the smallest power-of-two tiles per tuned dimension (so the on-chip
/// prefilter keeps essentially everything and the exhaustive sweep
/// really pays for the whole space) x a wide parallelism ladder x the
/// [`big_sim_grid`]. On `sumrows` this enumerates 16 x 8 x 1024 =
/// 131072 candidates in full mode and a few hundred in quick mode.
///
/// # Panics
///
/// Panics if a tuned tile dimension has no declared size.
pub fn big_space(spec: &BenchSpec, quick: bool) -> SearchSpace {
    let sizes = (spec.sizes)();
    let mut space = SearchSpace::new(&sizes);
    let per_dim = if quick { 3 } else { 4 };
    for (dim, _) in (spec.tiles)() {
        let n = sizes
            .iter()
            .find(|(k, _)| *k == dim)
            .map(|(_, v)| *v)
            .expect("tile dim has a size");
        let mut cands = pphw_dse::pow2_divisors(n);
        let keep = cands.len().saturating_sub(per_dim);
        cands.drain(..keep);
        space = space.with_tile_candidates(dim, &cands);
    }
    let pars: Vec<u32> = if quick {
        vec![16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };
    let grid = big_sim_grid(quick);
    let variants: Vec<(&str, SimConfig)> =
        grid.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    space.with_inner_pars(&pars).with_sim_variants(&variants)
}

/// Base compile options for a swept benchmark under an explicit on-chip
/// budget.
pub fn sweep_base_options(spec: &BenchSpec, budget: u64) -> CompileOptions {
    let mut base = CompileOptions::new(&(spec.sizes)()).inner_par(spec.inner_par);
    base.on_chip_budget_bytes = budget;
    base
}
