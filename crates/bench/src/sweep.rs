//! Shared search-space construction for the `dse` and `perf` binaries,
//! so the sweep they time is the sweep the driver exposes.

use pphw::CompileOptions;
use pphw_apps::BenchSpec;
use pphw_dse::SearchSpace;
use pphw_sim::SimConfig;

/// Power-of-two dividing tile candidates around the benchmark's default
/// tile size: `[default/4, default*2]` clamped to the dimension, largest
/// first. Keeps the per-benchmark space small while still bracketing the
/// paper's hand-picked tile from both sides. In quick mode only the two
/// smallest candidates survive: they are the ones guaranteed to fit the
/// budget, so a smoke run always finds a feasible point.
pub fn tile_candidates_around(n: i64, default_tile: i64, quick: bool) -> Vec<i64> {
    let lo = (default_tile / 4).max(4);
    let hi = (default_tile * 2).min(n);
    let mut out = Vec::new();
    let mut b = 4i64;
    while b <= n {
        if n % b == 0 && b >= lo && b <= hi {
            out.push(b);
        }
        b *= 2;
    }
    out.reverse();
    if quick {
        let keep = out.len().saturating_sub(2);
        out.drain(..keep);
    }
    out
}

/// Substrate variants swept: the default substrate only in quick mode,
/// every named variant otherwise.
pub fn sweep_sim_variants(quick: bool) -> Vec<(String, SimConfig)> {
    if quick {
        vec![("max4".to_string(), SimConfig::default())]
    } else {
        SimConfig::named_variants()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }
}

/// The joint tile × parallelism × substrate space the `dse` driver sweeps
/// for one benchmark.
///
/// # Panics
///
/// Panics if a tuned tile dimension has no declared size — benchmark
/// specs are expected to be internally consistent.
pub fn sweep_space(
    spec: &BenchSpec,
    quick: bool,
    sim_variants: &[(String, SimConfig)],
) -> SearchSpace {
    let sizes = (spec.sizes)();
    let mut space = SearchSpace::new(&sizes);
    for (dim, t) in (spec.tiles)() {
        let n = sizes
            .iter()
            .find(|(k, _)| *k == dim)
            .map(|(_, v)| *v)
            .expect("tile dim has a size");
        space = space.with_tile_candidates(dim, &tile_candidates_around(n, t, quick));
    }
    let pars: Vec<u32> = if quick {
        vec![spec.inner_par]
    } else {
        vec![32, 64]
    };
    let variants: Vec<(&str, SimConfig)> = sim_variants
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    space.with_inner_pars(&pars).with_sim_variants(&variants)
}

/// Base compile options for a swept benchmark under an explicit on-chip
/// budget.
pub fn sweep_base_options(spec: &BenchSpec, budget: u64) -> CompileOptions {
    let mut base = CompileOptions::new(&(spec.sizes)()).inner_par(spec.inner_par);
    base.on_chip_budget_bytes = budget;
    base
}
