//! Times a fixed design-space-exploration sweep under the two-level
//! evaluation cache, and checks that every cached variant reproduces the
//! uncached reports bit-for-bit.
//!
//! Four timed configurations of the same sweep:
//!
//! 1. `cold_t1`       — fresh caches, one worker thread
//! 2. `warm_mem_t1`   — same in-memory caches again (every eval hits)
//! 3. `cold_tN`       — fresh caches, N worker threads (N defaults to
//!    `max(2, cores)` so the row is genuinely multi-threaded even on a
//!    single-core box; the JSON records the width that actually ran, and
//!    every counter must match `cold_t1` exactly)
//! 4. `persistent_t1` — evaluation cache loaded from `--cache` (cold on
//!    the first invocation, warm on the next), then saved back
//!
//! Plus one guided-vs-exhaustive comparison over the dense synthetic
//! space ([`pphw_bench::sweep::big_space`], >= 10^5 candidates in full
//! mode): both strategies run on fresh caches, must agree on the winner,
//! and the guided run must simulate <= 10% of the space (30% on the tiny
//! quick space) and finish >= 5x faster in full mode.
//!
//! Results go to `--out` as JSON (default `BENCH_dse.json`), including
//! hit/build counters CI asserts on: a second `--quick` invocation must
//! show a warm persistent cache (no eval misses) that skips every
//! recompile (no design builds).
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin perf [--quick] [--threads N]
//!  [--cache PATH] [--out PATH]`

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use pphw::dse::explore_with_caches;
use pphw_apps::all_benchmarks;
use pphw_bench::sweep::{big_space, sweep_base_options, sweep_sim_variants, sweep_space};
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::{DseConfig, DseReport, GuidedConfig, Strategy};
use pphw_hw::AreaBudget;

/// The driver's default on-chip budget (256 KiB): tight enough that the
/// prefilter has bite, so the timed sweep exercises the pruning path too.
const BUDGET: u64 = 256 * 1024;

struct Args {
    quick: bool,
    threads: Option<usize>,
    cache: String,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: None,
        cache: "target/perf-eval-cache.pphwc".to_string(),
        out: "BENCH_dse.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--threads" => args.threads = Some(val("--threads").parse().expect("--threads N")),
            "--cache" => args.cache = val("--cache"),
            "--out" => args.out = val("--out"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

/// Pool width for the multi-threaded row. On a single-core box
/// `available_parallelism` is 1, which would silently turn `cold_tN`
/// into a second copy of `cold_t1` — so the default is floored at 2 and
/// whatever width actually ran is what the JSON records.
fn multi_thread_width(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map_or(2, |n| n.get())
            .max(2)
    })
}

/// Counters and wall-clock for one timed sweep configuration.
struct Run {
    name: &'static str,
    threads: usize,
    secs: f64,
    eval_hits: u64,
    eval_misses: u64,
    design_builds: u64,
    design_reuses: u64,
    preloaded: usize,
}

impl Run {
    fn to_json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \
             \"eval_hits\": {}, \"eval_misses\": {}, \"design_builds\": {}, \
             \"design_reuses\": {}, \"preloaded\": {}}}",
            self.name,
            self.threads,
            self.secs,
            self.eval_hits,
            self.eval_misses,
            self.design_builds,
            self.design_reuses,
            self.preloaded
        )
    }
}

/// Report JSON with the cache-state counters masked: hit/miss tallies
/// legitimately differ between cold and warm runs, every other byte of
/// the report must not.
fn mask_cache_counters(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find("\"cache_hits\":") {
        out.push_str(&rest[..i]);
        out.push_str("\"cache_hits\":0,\"cache_misses\":0");
        match rest[i..].find('}') {
            Some(j) => rest = &rest[i + j..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Runs the full six-benchmark sweep once against the given caches and
/// returns (wall seconds, concatenated cache-masked report JSON).
fn run_sweep(
    quick: bool,
    threads: usize,
    eval_cache: &EvalCache,
    designs: &Arc<DesignCache<pphw::dse::DesignArtifact>>,
) -> (f64, String) {
    let sim_variants = sweep_sim_variants(quick);
    let mut reports = String::new();
    let t0 = Instant::now();
    for spec in &all_benchmarks() {
        let base = sweep_base_options(spec, BUDGET);
        let space = sweep_space(spec, quick, &sim_variants);
        let cfg = DseConfig {
            threads,
            on_chip_budget_bytes: BUDGET,
            area_budget: AreaBudget::device_fraction(1.0),
            ..DseConfig::default()
        };
        let report = explore_with_caches(
            &(spec.program)(),
            &base,
            &space,
            &cfg,
            eval_cache,
            Arc::clone(designs),
        )
        .unwrap_or_else(|e| panic!("{}: search failed: {e}", spec.name));
        reports.push_str(&mask_cache_counters(&report.to_json()));
        reports.push('\n');
    }
    (t0.elapsed().as_secs_f64(), reports)
}

/// Times one strategy over the dense synthetic [`big_space`] on fresh
/// caches (so neither row inherits the other's measurements) and returns
/// (wall seconds, report).
fn run_big(quick: bool, threads: usize, strategy: Strategy) -> (f64, DseReport) {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == "sumrows")
        .unwrap_or_else(|| panic!("sumrows benchmark exists"));
    let base = sweep_base_options(&spec, BUDGET);
    let space = big_space(&spec, quick);
    let cfg = DseConfig {
        threads,
        on_chip_budget_bytes: BUDGET,
        area_budget: AreaBudget::device_fraction(1.0),
        strategy,
        ..DseConfig::default()
    };
    let eval_cache = EvalCache::new();
    let designs: Arc<DesignCache<pphw::dse::DesignArtifact>> = Arc::new(DesignCache::new());
    let t0 = Instant::now();
    let report = explore_with_caches(
        &(spec.program)(),
        &base,
        &space,
        &cfg,
        &eval_cache,
        Arc::clone(&designs),
    )
    .unwrap_or_else(|e| panic!("big-space search failed: {e}"));
    (t0.elapsed().as_secs_f64(), report)
}

fn main() {
    let args = parse_args();
    let threads_n = multi_thread_width(args.threads);
    let mut runs: Vec<Run> = Vec::new();

    // 1 + 2: cold then in-memory warm, single-threaded, shared caches.
    let eval_mem = EvalCache::new();
    let designs_mem: Arc<DesignCache<pphw::dse::DesignArtifact>> = Arc::new(DesignCache::new());
    let (cold_secs, cold_reports) = run_sweep(args.quick, 1, &eval_mem, &designs_mem);
    runs.push(Run {
        name: "cold_t1",
        threads: 1,
        secs: cold_secs,
        eval_hits: eval_mem.hits(),
        eval_misses: eval_mem.misses(),
        design_builds: designs_mem.builds(),
        design_reuses: designs_mem.hits(),
        preloaded: 0,
    });
    let (h0, m0, b0, r0) = (
        eval_mem.hits(),
        eval_mem.misses(),
        designs_mem.builds(),
        designs_mem.hits(),
    );
    let (warm_secs, warm_reports) = run_sweep(args.quick, 1, &eval_mem, &designs_mem);
    runs.push(Run {
        name: "warm_mem_t1",
        threads: 1,
        secs: warm_secs,
        eval_hits: eval_mem.hits() - h0,
        eval_misses: eval_mem.misses() - m0,
        design_builds: designs_mem.builds() - b0,
        design_reuses: designs_mem.hits() - r0,
        preloaded: eval_mem.len(),
    });

    // 3: cold, N threads, fresh caches. Same sweep, same cold caches —
    // so every counter must land exactly where the single-threaded cold
    // run put it; only the wall-clock may differ.
    let eval_mt = EvalCache::new();
    let designs_mt = Arc::new(DesignCache::new());
    let (mt_secs, mt_reports) = run_sweep(args.quick, threads_n, &eval_mt, &designs_mt);
    assert_eq!(
        (
            eval_mt.hits(),
            eval_mt.misses(),
            designs_mt.builds(),
            designs_mt.hits()
        ),
        (h0, m0, b0, r0),
        "cold_tN counters diverged from cold_t1"
    );
    runs.push(Run {
        name: "cold_tN",
        threads: threads_n,
        secs: mt_secs,
        eval_hits: eval_mt.hits(),
        eval_misses: eval_mt.misses(),
        design_builds: designs_mt.builds(),
        design_reuses: designs_mt.hits(),
        preloaded: 0,
    });

    // 4: persistent cache — cold on the first invocation, warm after.
    let cache_path = Path::new(&args.cache);
    let eval_disk = EvalCache::load_or_cold(cache_path);
    let preloaded = eval_disk.len();
    let designs_disk = Arc::new(DesignCache::new());
    let (disk_secs, disk_reports) = run_sweep(args.quick, 1, &eval_disk, &designs_disk);
    runs.push(Run {
        name: "persistent_t1",
        threads: 1,
        secs: disk_secs,
        eval_hits: eval_disk.hits(),
        eval_misses: eval_disk.misses(),
        design_builds: designs_disk.builds(),
        design_reuses: designs_disk.hits(),
        preloaded,
    });
    if let Some(dir) = cache_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir:?}: {e}"));
        }
    }
    eval_disk
        .save(cache_path)
        .unwrap_or_else(|e| panic!("saving {}: {e}", args.cache));

    // Every variant must reproduce the cold reports bit-for-bit.
    let identical =
        cold_reports == warm_reports && cold_reports == mt_reports && cold_reports == disk_reports;
    assert!(
        identical,
        "cached/threaded sweep reports diverged from cold run"
    );

    // 5 + 6: guided vs exhaustive over the dense synthetic space, fresh
    // caches per row so the wall-clocks are honest. The guided run must
    // agree with exhaustive on the winner while simulating a sliver of
    // the space; in full mode (>= 10^5 candidates) it must also be at
    // least 5x faster end to end.
    let guided = if args.quick {
        GuidedConfig {
            sample: 12,
            top_k: 12,
            explore: 4,
            ..GuidedConfig::default()
        }
    } else {
        GuidedConfig {
            sample: 64,
            top_k: 192,
            explore: 16,
            ..GuidedConfig::default()
        }
    };
    let (ex_secs, ex_report) = run_big(args.quick, 1, Strategy::Exhaustive);
    let (g_secs, g_report) = run_big(args.quick, 1, Strategy::Guided(guided));
    let space_points = ex_report.stats.exhaustive.max(1);
    #[allow(clippy::cast_precision_loss)]
    let simulated_frac = g_report.stats.simulated as f64 / space_points as f64;
    let big_speedup = ex_secs / g_secs.max(1e-9);
    let winners_agree = ex_report.best.label == g_report.best.label
        && ex_report.best.cycles == g_report.best.cycles;
    assert!(
        winners_agree,
        "guided winner {} ({} cycles) != exhaustive winner {} ({} cycles)",
        g_report.best.label, g_report.best.cycles, ex_report.best.label, ex_report.best.cycles
    );
    let frac_cap = if args.quick { 0.30 } else { 0.10 };
    assert!(
        simulated_frac <= frac_cap,
        "guided simulated {:.1}% of the {space_points}-point space (cap {:.0}%)",
        simulated_frac * 100.0,
        frac_cap * 100.0
    );
    if !args.quick {
        assert!(
            big_speedup >= 5.0,
            "guided was only {big_speedup:.1}x faster than exhaustive \
             ({g_secs:.2}s vs {ex_secs:.2}s)"
        );
    }

    let warm_speedup = cold_secs / warm_secs.max(1e-9);
    let persistent_speedup = cold_secs / disk_secs.max(1e-9);
    let run_lines: Vec<String> = runs.iter().map(Run::to_json).collect();
    let json = format!(
        "{{\n  \"quick\": {},\n  \"threads\": {},\n  \"cache_file\": \"{}\",\n  \
         \"runs\": [\n{}\n  ],\n  \"warm_mem_speedup\": {:.2},\n  \
         \"persistent_speedup\": {:.2},\n  \"reports_bit_identical\": {},\n  \
         \"guided_vs_exhaustive\": {{\"bench\": \"sumrows\", \"space\": {}, \
         \"exhaustive_secs\": {:.6}, \"exhaustive_simulated\": {}, \
         \"guided_secs\": {:.6}, \"guided_simulated\": {}, \"guided_sampled\": {}, \
         \"simulated_frac\": {:.6}, \"speedup\": {:.2}, \
         \"winner\": \"{}\", \"winners_agree\": {}}}\n}}\n",
        args.quick,
        threads_n,
        args.cache,
        run_lines.join(",\n"),
        warm_speedup,
        persistent_speedup,
        identical,
        space_points,
        ex_secs,
        ex_report.stats.simulated,
        g_secs,
        g_report.stats.simulated,
        g_report.stats.sampled,
        simulated_frac,
        big_speedup,
        g_report.best.label,
        winners_agree
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "run", "threads", "secs", "ev-hit", "ev-miss", "compiles", "reuses"
    );
    for r in &runs {
        println!(
            "{:<14} {:>8} {:>10.3} {:>10} {:>10} {:>10} {:>10}",
            r.name, r.threads, r.secs, r.eval_hits, r.eval_misses, r.design_builds, r.design_reuses
        );
    }
    println!(
        "warm in-memory speedup: {warm_speedup:.1}x; persistent-cache run: \
         {persistent_speedup:.1}x vs cold ({preloaded} entries preloaded)"
    );
    println!(
        "guided vs exhaustive on {space_points} candidates: {g_secs:.2}s vs {ex_secs:.2}s \
         ({big_speedup:.1}x), simulated {:.2}% of the space, winner `{}` agrees",
        simulated_frac * 100.0,
        g_report.best.label
    );
    println!("wrote {}", args.out);
}
