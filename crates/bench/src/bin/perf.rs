//! Times a fixed design-space-exploration sweep under the two-level
//! evaluation cache, and checks that every cached variant reproduces the
//! uncached reports bit-for-bit.
//!
//! Four timed configurations of the same sweep:
//!
//! 1. `cold_t1`       — fresh caches, one worker thread
//! 2. `warm_mem_t1`   — same in-memory caches again (every eval hits)
//! 3. `cold_tN`       — fresh caches, N worker threads
//! 4. `persistent_t1` — evaluation cache loaded from `--cache` (cold on
//!    the first invocation, warm on the next), then saved back
//!
//! Results go to `--out` as JSON (default `BENCH_dse.json`), including
//! hit/build counters CI asserts on: a second `--quick` invocation must
//! show a warm persistent cache (no eval misses) that skips every
//! recompile (no design builds).
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin perf [--quick] [--threads N]
//!  [--cache PATH] [--out PATH]`

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use pphw::dse::explore_with_caches;
use pphw_apps::all_benchmarks;
use pphw_bench::sweep::{sweep_base_options, sweep_sim_variants, sweep_space};
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::DseConfig;
use pphw_hw::AreaBudget;

/// The driver's default on-chip budget (256 KiB): tight enough that the
/// prefilter has bite, so the timed sweep exercises the pruning path too.
const BUDGET: u64 = 256 * 1024;

struct Args {
    quick: bool,
    threads: usize,
    cache: String,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        cache: "target/perf-eval-cache.pphwc".to_string(),
        out: "BENCH_dse.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--threads" => args.threads = val("--threads").parse().expect("--threads N"),
            "--cache" => args.cache = val("--cache"),
            "--out" => args.out = val("--out"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

/// Counters and wall-clock for one timed sweep configuration.
struct Run {
    name: &'static str,
    threads: usize,
    secs: f64,
    eval_hits: u64,
    eval_misses: u64,
    design_builds: u64,
    design_reuses: u64,
    preloaded: usize,
}

impl Run {
    fn to_json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \
             \"eval_hits\": {}, \"eval_misses\": {}, \"design_builds\": {}, \
             \"design_reuses\": {}, \"preloaded\": {}}}",
            self.name,
            self.threads,
            self.secs,
            self.eval_hits,
            self.eval_misses,
            self.design_builds,
            self.design_reuses,
            self.preloaded
        )
    }
}

/// Report JSON with the cache-state counters masked: hit/miss tallies
/// legitimately differ between cold and warm runs, every other byte of
/// the report must not.
fn mask_cache_counters(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find("\"cache_hits\":") {
        out.push_str(&rest[..i]);
        out.push_str("\"cache_hits\":0,\"cache_misses\":0");
        match rest[i..].find('}') {
            Some(j) => rest = &rest[i + j..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Runs the full six-benchmark sweep once against the given caches and
/// returns (wall seconds, concatenated cache-masked report JSON).
fn run_sweep(
    quick: bool,
    threads: usize,
    eval_cache: &EvalCache,
    designs: &Arc<DesignCache<pphw::dse::DesignArtifact>>,
) -> (f64, String) {
    let sim_variants = sweep_sim_variants(quick);
    let mut reports = String::new();
    let t0 = Instant::now();
    for spec in &all_benchmarks() {
        let base = sweep_base_options(spec, BUDGET);
        let space = sweep_space(spec, quick, &sim_variants);
        let cfg = DseConfig {
            threads,
            on_chip_budget_bytes: BUDGET,
            area_budget: AreaBudget::device_fraction(1.0),
            ..DseConfig::default()
        };
        let report = explore_with_caches(
            &(spec.program)(),
            &base,
            &space,
            &cfg,
            eval_cache,
            Arc::clone(designs),
        )
        .unwrap_or_else(|e| panic!("{}: search failed: {e}", spec.name));
        reports.push_str(&mask_cache_counters(&report.to_json()));
        reports.push('\n');
    }
    (t0.elapsed().as_secs_f64(), reports)
}

fn main() {
    let args = parse_args();
    let mut runs: Vec<Run> = Vec::new();

    // 1 + 2: cold then in-memory warm, single-threaded, shared caches.
    let eval_mem = EvalCache::new();
    let designs_mem: Arc<DesignCache<pphw::dse::DesignArtifact>> = Arc::new(DesignCache::new());
    let (cold_secs, cold_reports) = run_sweep(args.quick, 1, &eval_mem, &designs_mem);
    runs.push(Run {
        name: "cold_t1",
        threads: 1,
        secs: cold_secs,
        eval_hits: eval_mem.hits(),
        eval_misses: eval_mem.misses(),
        design_builds: designs_mem.builds(),
        design_reuses: designs_mem.hits(),
        preloaded: 0,
    });
    let (h0, m0, b0, r0) = (
        eval_mem.hits(),
        eval_mem.misses(),
        designs_mem.builds(),
        designs_mem.hits(),
    );
    let (warm_secs, warm_reports) = run_sweep(args.quick, 1, &eval_mem, &designs_mem);
    runs.push(Run {
        name: "warm_mem_t1",
        threads: 1,
        secs: warm_secs,
        eval_hits: eval_mem.hits() - h0,
        eval_misses: eval_mem.misses() - m0,
        design_builds: designs_mem.builds() - b0,
        design_reuses: designs_mem.hits() - r0,
        preloaded: eval_mem.len(),
    });

    // 3: cold, N threads, fresh caches.
    let eval_mt = EvalCache::new();
    let designs_mt = Arc::new(DesignCache::new());
    let (mt_secs, mt_reports) = run_sweep(args.quick, args.threads, &eval_mt, &designs_mt);
    runs.push(Run {
        name: "cold_tN",
        threads: args.threads,
        secs: mt_secs,
        eval_hits: eval_mt.hits(),
        eval_misses: eval_mt.misses(),
        design_builds: designs_mt.builds(),
        design_reuses: designs_mt.hits(),
        preloaded: 0,
    });

    // 4: persistent cache — cold on the first invocation, warm after.
    let cache_path = Path::new(&args.cache);
    let eval_disk = EvalCache::load_or_cold(cache_path);
    let preloaded = eval_disk.len();
    let designs_disk = Arc::new(DesignCache::new());
    let (disk_secs, disk_reports) = run_sweep(args.quick, 1, &eval_disk, &designs_disk);
    runs.push(Run {
        name: "persistent_t1",
        threads: 1,
        secs: disk_secs,
        eval_hits: eval_disk.hits(),
        eval_misses: eval_disk.misses(),
        design_builds: designs_disk.builds(),
        design_reuses: designs_disk.hits(),
        preloaded,
    });
    if let Some(dir) = cache_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir:?}: {e}"));
        }
    }
    eval_disk
        .save(cache_path)
        .unwrap_or_else(|e| panic!("saving {}: {e}", args.cache));

    // Every variant must reproduce the cold reports bit-for-bit.
    let identical =
        cold_reports == warm_reports && cold_reports == mt_reports && cold_reports == disk_reports;
    assert!(
        identical,
        "cached/threaded sweep reports diverged from cold run"
    );

    let warm_speedup = cold_secs / warm_secs.max(1e-9);
    let persistent_speedup = cold_secs / disk_secs.max(1e-9);
    let run_lines: Vec<String> = runs.iter().map(Run::to_json).collect();
    let json = format!(
        "{{\n  \"quick\": {},\n  \"threads\": {},\n  \"cache_file\": \"{}\",\n  \
         \"runs\": [\n{}\n  ],\n  \"warm_mem_speedup\": {:.2},\n  \
         \"persistent_speedup\": {:.2},\n  \"reports_bit_identical\": {}\n}}\n",
        args.quick,
        args.threads,
        args.cache,
        run_lines.join(",\n"),
        warm_speedup,
        persistent_speedup,
        identical
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "run", "threads", "secs", "ev-hit", "ev-miss", "compiles", "reuses"
    );
    for r in &runs {
        println!(
            "{:<14} {:>8} {:>10.3} {:>10} {:>10} {:>10} {:>10}",
            r.name, r.threads, r.secs, r.eval_hits, r.eval_misses, r.design_builds, r.design_reuses
        );
    }
    println!(
        "warm in-memory speedup: {warm_speedup:.1}x; persistent-cache run: \
         {persistent_speedup:.1}x vs cold ({preloaded} entries preloaded)"
    );
    println!("wrote {}", args.out);
}
