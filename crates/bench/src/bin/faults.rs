//! Deterministic fault-injection sweep over the Table 5 benchmarks:
//! simulates every metapipelined design under increasing DRAM burst
//! failure rates (plus fixed latency jitter and a periodic bandwidth
//! degradation window) and reports cycles, slowdown, and retry counts.
//! Regenerates the "Fault injection" table of EXPERIMENTS.md.
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin faults [--seed N] [--rates R,R,..]`
//!
//! Every run is deterministic: the fault stream is a pure function of
//! the seed, so the table reproduces bit-for-bit. A zero-fault
//! configuration must — and is checked to — reproduce the fault-free
//! simulation exactly.

use pphw::{compile, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_bench::options_for;
use pphw_sim::{FaultConfig, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0xFA17u64;
    let mut rates = vec![0.01f64, 0.05, 0.10];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a u64");
            }
            "--rates" => {
                i += 1;
                rates = args[i]
                    .split(',')
                    .map(|r| r.parse().expect("--rates takes f64,f64,.."))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let sim = SimConfig::default();
    let faults_at = |rate: f64| {
        FaultConfig::none()
            .with_seed(seed)
            .with_latency_jitter(16)
            .with_degradation(4096, 512, 1.5)
            .with_burst_fail_rate(rate)
            .with_retry(4, 16)
    };

    println!(
        "fault injection sweep (metapipelined designs, seed {seed:#x}, \
         jitter<=16 cyc, degrade 512/4096 cyc @1.5x)\n"
    );
    print!("{:<10} {:>14}", "benchmark", "clean cycles");
    for r in &rates {
        print!(
            " | {:>11} {:>8} {:>8}",
            format!("cyc@{r}"),
            "slowdown",
            "retries"
        );
    }
    println!();

    for spec in all_benchmarks() {
        let prog = (spec.program)();
        let opts = options_for(&spec).opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).expect("benchmark compiles");
        let clean = compiled.simulate(&sim).expect("simulates");

        // A zero-fault config must take the identical code path.
        let zero = compiled
            .simulate_with_faults(&sim, &FaultConfig::none().with_seed(seed))
            .expect("simulates");
        assert_eq!(
            (zero.cycles, zero.dram_words, zero.dram_bytes),
            (clean.cycles, clean.dram_words, clean.dram_bytes),
            "{}: zero-fault run must be bit-identical",
            spec.name
        );

        print!("{:<10} {:>14}", spec.name, clean.cycles);
        for &rate in &rates {
            let faulted = compiled
                .simulate_with_faults(&sim, &faults_at(rate))
                .expect("simulates");
            let again = compiled
                .simulate_with_faults(&sim, &faults_at(rate))
                .expect("simulates");
            assert_eq!(
                faulted.cycles, again.cycles,
                "{}: fault injection must be deterministic",
                spec.name
            );
            assert!(
                faulted.cycles >= clean.cycles,
                "{}: faults cannot speed a design up",
                spec.name
            );
            print!(
                " | {:>11} {:>7.3}x {:>8}",
                faulted.cycles,
                faulted.cycles as f64 / clean.cycles as f64,
                faulted.faults.retries
            );
        }
        println!();
    }
    println!(
        "\nall zero-fault runs bit-identical to the fault-free simulator; all sweeps deterministic"
    );
}
