//! Parses a textual PPL program, verifies it, and optionally simulates it
//! end-to-end — the `.ppl` twin of the builder pipeline.
//!
//! Usage:
//!   cargo run -p pphw-bench --bin parse -- <file.ppl> [--json] [--simulate]
//!       [--sizes k=v,...] [--seed N]
//!   cargo run -p pphw-bench --bin parse -- --emit <bench>
//!
//! `<file.ppl>` may be `-` to read the program from stdin (diagnostics
//! then cite `<stdin>`), so the tool composes in pipelines:
//! `parse --emit gemm | parse - --json`.
//!
//! `--emit` prints the canonical text of a named builder benchmark (the
//! exact form `examples/*.ppl` is generated from). Otherwise the file is
//! parsed; parse diagnostics render as `file:line:col` caret snippets (or
//! a JSON array with `span` objects under `--json`) and exit 1. A program
//! that parses is linted with the static verifier — spans attached from
//! the parse's source map — and error diagnostics also exit 1. With
//! `--simulate`, seeded random inputs are generated from the declared
//! input types (`--sizes` binds size variables; unbound ones default to 8)
//! and the program runs on the reference interpreter.

use pphw_apps::all_benchmarks;
use pphw_frontend::parse_program;
use pphw_ir::interp::{Interpreter, ScalarVal, Value};
use pphw_ir::pretty::emit_program;
use pphw_ir::span::line_col;
use pphw_ir::types::{DType, ScalarType, Type};
use pphw_verify::{verify_program, VerifyConfig};

/// Parsed command line.
struct Args {
    file: Option<String>,
    emit: Option<String>,
    json: bool,
    simulate: bool,
    sizes: Vec<(String, i64)>,
    seed: u64,
    inner_par: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: parse <file.ppl> [--json] [--simulate] [--sizes k=v,...] [--seed N] [--inner-par N]\n       parse --emit <bench>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: None,
        emit: None,
        json: false,
        simulate: false,
        sizes: Vec::new(),
        seed: 0xC0FFEE,
        inner_par: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--simulate" => args.simulate = true,
            "--emit" => match it.next() {
                Some(name) => args.emit = Some(name),
                None => usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => args.seed = v,
                None => usage(),
            },
            "--inner-par" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => args.inner_par = v,
                None => usage(),
            },
            "--sizes" => {
                let Some(spec) = it.next() else { usage() };
                for pair in spec.split(',').filter(|p| !p.is_empty()) {
                    let Some((k, v)) = pair.split_once('=') else {
                        usage()
                    };
                    let Ok(v) = v.parse::<i64>() else { usage() };
                    args.sizes.push((k.to_string(), v));
                }
            }
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ if args.file.is_none() => args.file = Some(a),
            _ => usage(),
        }
    }
    args
}

/// JSON-escapes a string (same minimal escaping the verify report uses).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A seeded random input value matching a declared input type. Returns an
/// error for types the generator cannot fabricate (dicts, dynamic
/// vectors).
fn random_input(
    ty: &Type,
    env: &pphw_ir::size::SizeEnv,
    rng: &mut pphw_testkit::rng::Rng,
) -> Result<Value, String> {
    let scalar_dtype = |s: &ScalarType| match s {
        ScalarType::Prim(d) => Ok(*d),
        ScalarType::Tuple(_) => Err("tuple-typed inputs are not supported".to_string()),
    };
    match ty {
        Type::Scalar(s) => match scalar_dtype(s)? {
            DType::F32 => Ok(Value::scalar_f32(rng.next_f32() * 2.0 - 1.0)),
            DType::I32 => Ok(Value::Scalar(ScalarVal::I(rng.gen_range(0i64..8)))),
            DType::Bool => Ok(Value::Scalar(ScalarVal::B(rng.gen_bool(0.5)))),
        },
        Type::Tensor { elem, shape } => {
            let dims: Vec<usize> = shape
                .iter()
                .map(|s| {
                    s.eval(env)
                        .map(|v| v as usize)
                        .map_err(|e| format!("cannot size input: {e}"))
                })
                .collect::<Result<_, String>>()?;
            let n: usize = dims.iter().product();
            match scalar_dtype(elem)? {
                DType::F32 => Ok(Value::tensor_f32(&dims, rng.f32_vec(n, -1.0, 1.0))),
                DType::I32 => Ok(Value::tensor_i32(&dims, rng.i64_vec(n, 0, 8))),
                DType::Bool => Err("boolean tensor inputs are not supported".to_string()),
            }
        }
        Type::DynVec { .. } | Type::Dict { .. } => {
            Err(format!("cannot generate an input of type {ty:?}"))
        }
    }
}

/// One-line rendering of an output value.
fn value_summary(v: &Value) -> String {
    if let Value::Dict(d) = v {
        return format!("dict[{} key(s)]", d.len());
    }
    let flat = v.as_f32_slice();
    let head: Vec<String> = flat.iter().take(8).map(|x| format!("{x:.4}")).collect();
    let ellipsis = if flat.len() > 8 { ", …" } else { "" };
    let shape = match v {
        Value::Tensor(t) => format!("tensor{:?}", t.shape),
        Value::Scalar(_) => "scalar".to_string(),
        Value::DynVec(d) => format!("dynvec[{}]", d.len()),
        Value::Dict(_) => unreachable!(),
    };
    format!("{shape} [{}{ellipsis}]", head.join(", "))
}

fn main() {
    let args = parse_args();

    // --emit <bench>: print the canonical text of a builder benchmark.
    if let Some(name) = &args.emit {
        let Some(spec) = all_benchmarks().into_iter().find(|s| s.name == name) else {
            let known: Vec<&str> = all_benchmarks().iter().map(|s| s.name).collect();
            eprintln!("unknown benchmark `{name}`; known: {}", known.join(", "));
            std::process::exit(2);
        };
        print!("{}", emit_program(&(spec.program)()));
        return;
    }

    let Some(file) = &args.file else { usage() };
    // `-` reads the program from stdin; diagnostics cite `<stdin>`.
    let (file, src) = if file == "-" {
        let mut src = String::new();
        if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut src) {
            eprintln!("parse: cannot read stdin: {e}");
            std::process::exit(2);
        }
        ("<stdin>", src)
    } else {
        match std::fs::read_to_string(file) {
            Ok(s) => (file.as_str(), s),
            Err(e) => {
                eprintln!("parse: cannot read {file}: {e}");
                std::process::exit(2);
            }
        }
    };

    // Parse. Errors render with carets (text) or spans (JSON) and exit 1.
    let out = match parse_program(&src, file) {
        Ok(out) => out,
        Err(errs) => {
            if args.json {
                let body = errs
                    .iter()
                    .map(|e| {
                        let (line, col) = line_col(&src, e.span.start);
                        format!(
                            "{{\"code\":{},\"message\":{},\"file\":{},\"span\":{{\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}}}}}",
                            json_str(e.code),
                            json_str(&e.message),
                            json_str(file),
                            e.span.start,
                            e.span.end
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                println!(
                    "{{\"file\":{},\"error_count\":{},\"parse_errors\":[{body}]}}",
                    json_str(file),
                    errs.len()
                );
            } else {
                for e in &errs {
                    eprintln!("{}", e.render(&src, file));
                }
                eprintln!("parse: {} error(s) in {file}", errs.len());
            }
            std::process::exit(1);
        }
    };

    // Verify, with spans attached from the parse's source map.
    let cfg = VerifyConfig {
        inner_par: args.inner_par,
        ..VerifyConfig::default()
    };
    let mut report = verify_program(&out.program, &cfg);
    report.attach_spans(&out.source_map, &src);
    let errors = report.error_count();
    if args.json {
        println!(
            "{{\"file\":{},\"error_count\":{errors},\"report\":{}}}",
            json_str(file),
            report.to_json()
        );
    } else {
        println!(
            "{file}: parsed `{}` ({} statement(s), {} output(s))",
            out.program.name,
            out.program.body.stmts.len(),
            out.program.outputs().len()
        );
        let text = report.to_text();
        if !text.is_empty() {
            println!("{text}");
        }
        if report.is_clean() {
            println!("verify: clean");
        } else {
            println!("verify: {errors} error(s)");
        }
    }
    if errors > 0 {
        std::process::exit(1);
    }

    // --simulate: seeded random inputs, reference interpreter.
    if args.simulate {
        let mut env = pphw_ir::size::SizeEnv::new();
        for (k, v) in &args.sizes {
            env.insert(k.clone(), *v);
        }
        for sv in &out.program.size_vars {
            env.entry(sv.clone()).or_insert(8);
        }
        let mut rng = pphw_testkit::rng::Rng::seed_from_u64(args.seed);
        let mut inputs = Vec::new();
        for &sym in &out.program.inputs {
            let ty = out.program.ty(sym).clone();
            match random_input(&ty, &env, &mut rng) {
                Ok(v) => inputs.push(v),
                Err(e) => {
                    eprintln!("simulate: input `{}`: {e}", out.program.syms.name(sym));
                    std::process::exit(2);
                }
            }
        }
        let interp = Interpreter::with_env(&out.program, env);
        match interp.run(inputs) {
            Ok(outputs) => {
                let names = out.program.outputs();
                for (sym, v) in names.iter().zip(&outputs) {
                    println!(
                        "simulate: {} = {}",
                        out.program.syms.name(*sym),
                        value_summary(v)
                    );
                }
            }
            Err(e) => {
                eprintln!("simulate: evaluation failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
