//! Regenerates Figure 7: speedups and relative resource usage of the
//! tiled and metapipelined designs over the HLS-style baseline, for all
//! six benchmarks of Table 5.
//!
//! Usage: `cargo run --release -p pphw-bench --bin figure7 [--detail]`

use pphw_bench::{figure7, format_fig7, format_fig7_area};
use pphw_sim::SimConfig;

fn main() {
    let detail = std::env::args().any(|a| a == "--detail");
    let sim = SimConfig::default();
    let rows = figure7(&sim);
    println!("{}", format_fig7(&rows));
    println!("{}", format_fig7_area(&rows));
    if detail {
        for r in &rows {
            println!("{}", r.eval.to_table());
        }
    }
}
