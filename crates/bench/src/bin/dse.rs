//! Design-space exploration over the Table 5 benchmarks: jointly sweeps
//! tile sizes, innermost parallelism, and DRAM substrate variants, with
//! the analytic prefilter rejecting infeasible points before they reach
//! the compiler. Reports the cycles-vs-area Pareto frontier, the single
//! best point, and how many compiles the prefilter saved.
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin dse [--bench NAME] [--threads N]
//!  [--quick] [--budget BYTES] [--area-frac F] [--json PATH] [--csv PATH]`
//!
//! - `--bench NAME`   restrict to one benchmark (default: all six)
//! - `--threads N`    worker threads (0 = one per core; results are
//!   identical for every value)
//! - `--quick`        tiny space for CI smoke runs: 2 tile candidates per
//!   dimension, one parallelism factor, default substrate only
//! - `--budget BYTES` on-chip memory budget (default 256 KiB — a
//!   single-kernel scratchpad slice, deliberately tighter than the Max4's
//!   6 MB so the analytic prune has bite; the paper's full budget would
//!   keep every candidate)
//! - `--area-frac F`  fraction of the device the design may use (default 1.0)
//! - `--json PATH` / `--csv PATH`  export reports (`-` = stdout; with
//!   multiple benchmarks the name is inserted before the extension)
//! - `--cache PATH`   persistent evaluation cache: load it (cold if the
//!   file is missing or damaged) before the sweep, save it after, and
//!   report hit rates. Reports are bit-identical with or without it.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use pphw::dse::explore_with_caches;
use pphw_apps::all_benchmarks;
use pphw_bench::sweep::{sweep_base_options, sweep_sim_variants, sweep_space};
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::{DseConfig, DseReport};
use pphw_hw::AreaBudget;

struct Args {
    bench: Option<String>,
    threads: usize,
    quick: bool,
    budget: u64,
    area_frac: f64,
    json: Option<String>,
    csv: Option<String>,
    cache: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: None,
        threads: 0,
        quick: false,
        budget: 256 * 1024,
        area_frac: 1.0,
        json: None,
        csv: None,
        cache: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--bench" => args.bench = Some(val("--bench")),
            "--threads" => args.threads = val("--threads").parse().expect("--threads N"),
            "--quick" => args.quick = true,
            "--budget" => args.budget = val("--budget").parse().expect("--budget BYTES"),
            "--area-frac" => args.area_frac = val("--area-frac").parse().expect("--area-frac F"),
            "--json" => args.json = Some(val("--json")),
            "--csv" => args.csv = Some(val("--csv")),
            "--cache" => args.cache = Some(val("--cache")),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn export(path: &str, name: &str, multi: bool, contents: &str) {
    if path == "-" {
        println!("{contents}");
        return;
    }
    let target = if multi {
        match path.rsplit_once('.') {
            Some((stem, ext)) => format!("{stem}-{name}.{ext}"),
            None => format!("{path}-{name}"),
        }
    } else {
        path.to_string()
    };
    std::fs::write(&target, contents).unwrap_or_else(|e| panic!("writing {target}: {e}"));
    println!("  wrote {target}");
}

fn main() {
    let args = parse_args();
    let specs: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|s| args.bench.as_deref().is_none_or(|b| b == s.name))
        .collect();
    assert!(!specs.is_empty(), "no benchmark named {:?}", args.bench);
    let multi = specs.len() > 1;

    let sim_variants = sweep_sim_variants(args.quick);

    // One evaluation cache and one compile-artifact cache span the whole
    // run; keys include the benchmark name, so sharing across benchmarks
    // is safe and lets `--bench` runs reuse an all-benchmark cache file.
    // Journaled when backed by a file: every evaluation is appended
    // crash-safely as it lands, so an interrupted sweep resumes from
    // everything it measured, not just the last clean save.
    let eval_cache = match &args.cache {
        Some(p) => EvalCache::open_journaled(Path::new(p)).unwrap_or_else(|e| {
            eprintln!("cache: journal open failed ({e}); running unjournaled");
            EvalCache::load_or_cold(Path::new(p))
        }),
        None => EvalCache::new(),
    };
    let preloaded = eval_cache.len();
    let designs = Arc::new(DesignCache::new());

    let mut table: Vec<(String, DseReport, f64)> = Vec::new();
    for spec in &specs {
        let base = sweep_base_options(spec, args.budget);
        let space = sweep_space(spec, args.quick, &sim_variants);

        let cfg = DseConfig {
            threads: args.threads,
            on_chip_budget_bytes: args.budget,
            area_budget: AreaBudget::device_fraction(args.area_frac),
            ..DseConfig::default()
        };
        let t0 = Instant::now();
        let report = explore_with_caches(
            &(spec.program)(),
            &base,
            &space,
            &cfg,
            &eval_cache,
            Arc::clone(&designs),
        )
        .unwrap_or_else(|e| panic!("{}: search failed: {e}", spec.name));
        let secs = t0.elapsed().as_secs_f64();

        print!("{}", report.summary());
        println!("  search wall-clock: {secs:.2}s (threads={})", args.threads);
        if let Some(p) = &args.json {
            export(p, spec.name, multi, &report.to_json());
        }
        if let Some(p) = &args.csv {
            export(p, spec.name, multi, &report.to_csv());
        }
        println!();
        table.push((spec.name.to_string(), report, secs));
    }

    println!(
        "{:<12} {:<34} {:>12} {:>8} {:>14} {:>8}",
        "benchmark", "best config", "cycles", "area", "evals/points", "wall"
    );
    for (name, r, secs) in &table {
        println!(
            "{:<12} {:<34} {:>12} {:>8.4} {:>7}/{:<6} {:>7.2}s",
            name,
            r.best.label,
            r.best.cycles,
            r.best.area_score,
            r.stats.evaluated,
            r.stats.exhaustive,
            secs
        );
    }

    println!(
        "cache: {} eval hits / {} misses, {} designs compiled / {} reused",
        eval_cache.hits(),
        eval_cache.misses(),
        designs.builds(),
        designs.hits()
    );
    if let Some(p) = &args.cache {
        let result = if eval_cache.is_journaled() {
            eval_cache.checkpoint().map_err(|e| e.to_string())
        } else {
            eval_cache.save(Path::new(p)).map_err(|e| e.to_string())
        };
        match result {
            Ok(()) => println!(
                "cache: saved {} entries to {p} ({preloaded} preloaded)",
                eval_cache.len()
            ),
            Err(e) => eprintln!("cache: could not save {p}: {e}"),
        }
    }
}
