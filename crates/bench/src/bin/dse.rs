//! Design-space exploration over the Table 5 benchmarks: jointly sweeps
//! tile sizes, innermost parallelism, and DRAM substrate variants, with
//! the analytic prefilter rejecting infeasible points before they reach
//! the compiler. Reports the cycles-vs-area Pareto frontier, the single
//! best point, and how many compiles the prefilter saved.
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin dse [--bench NAME] [--threads N]
//!  [--quick] [--budget BYTES] [--area-frac F] [--json PATH] [--csv PATH]
//!  [--cache PATH] [--strategy exhaustive|guided] [--sample N] [--top-k N]
//!  [--explore N] [--seed N] [--objective min-cycles|cycles-area|area-cap]
//!  [--area-cap F] [--shard I/N] [--max-simulated-frac F]
//!  [--cap-permilles N,N,...] [--capacity-mode as-generated|inferred]
//!  [--merge-cache SRC...]`
//!
//! - `--bench NAME`   restrict to one benchmark (default: all six)
//! - `--threads N`    worker threads (0 = one per core; results are
//!   identical for every value)
//! - `--quick`        tiny space for CI smoke runs: 2 tile candidates per
//!   dimension, one parallelism factor, default substrate only
//! - `--budget BYTES` on-chip memory budget (default 256 KiB — a
//!   single-kernel scratchpad slice, deliberately tighter than the Max4's
//!   6 MB so the analytic prune has bite; the paper's full budget would
//!   keep every candidate)
//! - `--area-frac F`  fraction of the device the design may use (default 1.0)
//! - `--json PATH` / `--csv PATH`  export reports (`-` = stdout; with
//!   multiple benchmarks the name is inserted before the extension)
//! - `--cache PATH`   persistent evaluation cache: load it (cold if the
//!   file is missing or damaged) before the sweep, save it after, and
//!   report hit rates. Reports are bit-identical with or without it.
//! - `--strategy guided` fit the analytic cost model to a seeded
//!   calibration sample and simulate only the model's top slice plus an
//!   exploration band (`--sample`, `--top-k`, `--explore`, `--seed`
//!   tune it; defaults are [`pphw_dse::GuidedConfig::default`])
//! - `--objective`    what "best" means: `min-cycles`, `cycles-area`
//!   (the default lexicographic order), or `area-cap` (fastest design
//!   with `area_score <= --area-cap F`)
//! - `--shard I/N`    measure only the survivors shard `I` of `N` owns
//!   (by stable candidate fingerprint); run all `N` shards with separate
//!   `--cache` files, then `--merge-cache` them — a rerun over the
//!   merged cache is bit-identical to an unsharded run
//! - `--max-simulated-frac F` assert the sweep simulated at most this
//!   fraction of the enumerated space (CI teeth for guided runs)
//! - `--cap-permilles N,N,...` additionally sweep channel-capacity
//!   scales (permille of the generated depth; `1000` = as generated).
//!   Scales below 500 statically deadlock every exact-token channel and
//!   are rejected by the flow prefilter before any compile — the run
//!   reports them as `pruned_flow`
//! - `--capacity-mode inferred` rewrite every channel to the flow
//!   analyzer's minimal safe depth before measuring (default
//!   `as-generated` keeps the generator's depths)
//! - `--merge-cache SRC...` merge mode: no sweep runs; every following
//!   path is loaded (journal included) and merged into the `--cache`
//!   target, which is then saved. Identical keys must compare equal
//!   byte-for-byte; a divergent entry aborts the merge and leaves the
//!   target untouched.

use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use pphw::dse::explore_with_caches;
use pphw_apps::all_benchmarks;
use pphw_bench::sweep::{sweep_base_options, sweep_sim_variants, sweep_space};
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::{
    CapacityMode, DseConfig, DseError, DseReport, GuidedConfig, Objective, Shard, Strategy,
};
use pphw_hw::AreaBudget;

struct Args {
    bench: Option<String>,
    threads: usize,
    quick: bool,
    budget: u64,
    area_frac: f64,
    json: Option<String>,
    csv: Option<String>,
    cache: Option<String>,
    guided: bool,
    sample: Option<usize>,
    top_k: Option<usize>,
    explore: Option<usize>,
    seed: Option<u64>,
    objective: Option<String>,
    area_cap: Option<f64>,
    shard: Option<Shard>,
    max_simulated_frac: Option<f64>,
    cap_permilles: Option<Vec<u32>>,
    capacity_mode: CapacityMode,
    merge_sources: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: None,
        threads: 0,
        quick: false,
        budget: 256 * 1024,
        area_frac: 1.0,
        json: None,
        csv: None,
        cache: None,
        guided: false,
        sample: None,
        top_k: None,
        explore: None,
        seed: None,
        objective: None,
        area_cap: None,
        shard: None,
        max_simulated_frac: None,
        cap_permilles: None,
        capacity_mode: CapacityMode::AsGenerated,
        merge_sources: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let val = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--bench" => args.bench = Some(val(&argv, &mut i, "--bench")),
            "--threads" => {
                args.threads = val(&argv, &mut i, "--threads")
                    .parse()
                    .expect("--threads N");
            }
            "--quick" => args.quick = true,
            "--budget" => {
                args.budget = val(&argv, &mut i, "--budget")
                    .parse()
                    .expect("--budget BYTES");
            }
            "--area-frac" => {
                args.area_frac = val(&argv, &mut i, "--area-frac")
                    .parse()
                    .expect("--area-frac F");
            }
            "--json" => args.json = Some(val(&argv, &mut i, "--json")),
            "--csv" => args.csv = Some(val(&argv, &mut i, "--csv")),
            "--cache" => args.cache = Some(val(&argv, &mut i, "--cache")),
            "--strategy" => match val(&argv, &mut i, "--strategy").as_str() {
                "exhaustive" => args.guided = false,
                "guided" => args.guided = true,
                other => panic!("--strategy must be `exhaustive` or `guided`, got `{other}`"),
            },
            "--sample" => {
                args.sample = Some(val(&argv, &mut i, "--sample").parse().expect("--sample N"));
            }
            "--top-k" => {
                args.top_k = Some(val(&argv, &mut i, "--top-k").parse().expect("--top-k N"));
            }
            "--explore" => {
                args.explore = Some(
                    val(&argv, &mut i, "--explore")
                        .parse()
                        .expect("--explore N"),
                );
            }
            "--seed" => args.seed = Some(val(&argv, &mut i, "--seed").parse().expect("--seed N")),
            "--objective" => args.objective = Some(val(&argv, &mut i, "--objective")),
            "--area-cap" => {
                args.area_cap = Some(
                    val(&argv, &mut i, "--area-cap")
                        .parse()
                        .expect("--area-cap F"),
                );
            }
            "--shard" => {
                let spec = val(&argv, &mut i, "--shard");
                args.shard = Some(
                    Shard::parse(&spec).unwrap_or_else(|| panic!("--shard I/N, got `{spec}`")),
                );
            }
            "--max-simulated-frac" => {
                args.max_simulated_frac = Some(
                    val(&argv, &mut i, "--max-simulated-frac")
                        .parse()
                        .expect("--max-simulated-frac F"),
                );
            }
            "--cap-permilles" => {
                let list = val(&argv, &mut i, "--cap-permilles");
                args.cap_permilles = Some(
                    list.split(',')
                        .map(|p| {
                            p.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("--cap-permilles N,N,... got `{p}`"))
                        })
                        .collect(),
                );
            }
            "--capacity-mode" => match val(&argv, &mut i, "--capacity-mode").as_str() {
                "as-generated" => args.capacity_mode = CapacityMode::AsGenerated,
                "inferred" => args.capacity_mode = CapacityMode::InferredMinimal,
                other => {
                    panic!("--capacity-mode must be `as-generated` or `inferred`, got `{other}`")
                }
            },
            "--merge-cache" => {
                // Greedy: every following non-flag argument is a source.
                while i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    i += 1;
                    args.merge_sources.push(argv[i].clone());
                }
                assert!(
                    !args.merge_sources.is_empty(),
                    "--merge-cache needs at least one source path"
                );
            }
            other => panic!("unknown flag {other} (see the module docs)"),
        }
        i += 1;
    }
    args
}

/// The ranking objective the flags describe. `--area-cap F` alone
/// implies `--objective area-cap`.
fn objective_from(args: &Args) -> Objective {
    match args.objective.as_deref() {
        Some("min-cycles") => Objective::MinCycles,
        Some("cycles-area") | None if args.area_cap.is_none() => Objective::CyclesThenArea,
        Some("cycles-area") => {
            panic!("--area-cap only makes sense with --objective area-cap")
        }
        Some("area-cap") | None => Objective::FastestUnderAreaCap {
            area_cap: args
                .area_cap
                .unwrap_or_else(|| panic!("--objective area-cap needs --area-cap F")),
        },
        Some(other) => {
            panic!("--objective must be `min-cycles`, `cycles-area`, or `area-cap`, got `{other}`")
        }
    }
}

/// Merge mode: union every source cache (journals included) into the
/// `--cache` target and save it. No sweep runs.
fn merge_caches(target_path: &str, sources: &[String]) {
    let target = EvalCache::load_or_cold(Path::new(target_path));
    let preloaded = target.len();
    for src in sources {
        let other = EvalCache::load_including_journal(Path::new(src));
        match target.merge_from(&other) {
            Ok(stats) => println!(
                "merge: {src}: {} inserted, {} identical, {} failed skipped",
                stats.inserted, stats.identical, stats.failed_skipped
            ),
            Err(e) => {
                eprintln!("merge: {src}: {e}; target left untouched");
                exit(1);
            }
        }
    }
    target
        .save(Path::new(target_path))
        .unwrap_or_else(|e| panic!("saving {target_path}: {e}"));
    println!(
        "merge: saved {} entries to {target_path} ({preloaded} preloaded)",
        target.len()
    );
}

fn export(path: &str, name: &str, multi: bool, contents: &str) {
    if path == "-" {
        println!("{contents}");
        return;
    }
    let target = if multi {
        match path.rsplit_once('.') {
            Some((stem, ext)) => format!("{stem}-{name}.{ext}"),
            None => format!("{path}-{name}"),
        }
    } else {
        path.to_string()
    };
    std::fs::write(&target, contents).unwrap_or_else(|e| panic!("writing {target}: {e}"));
    println!("  wrote {target}");
}

fn main() {
    let args = parse_args();
    if !args.merge_sources.is_empty() {
        let target = args
            .cache
            .as_deref()
            .unwrap_or_else(|| panic!("--merge-cache needs --cache TARGET"));
        merge_caches(target, &args.merge_sources);
        return;
    }
    let specs: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|s| args.bench.as_deref().is_none_or(|b| b == s.name))
        .collect();
    assert!(!specs.is_empty(), "no benchmark named {:?}", args.bench);
    let multi = specs.len() > 1;

    let strategy = if args.guided {
        let d = GuidedConfig::default();
        Strategy::Guided(GuidedConfig {
            sample: args.sample.unwrap_or(d.sample),
            top_k: args.top_k.unwrap_or(d.top_k),
            explore: args.explore.unwrap_or(d.explore),
            seed: args.seed.unwrap_or(d.seed),
        })
    } else {
        Strategy::Exhaustive
    };
    let objective = objective_from(&args);

    let sim_variants = sweep_sim_variants(args.quick);

    // One evaluation cache and one compile-artifact cache span the whole
    // run; keys include the benchmark name, so sharing across benchmarks
    // is safe and lets `--bench` runs reuse an all-benchmark cache file.
    // Journaled when backed by a file: every evaluation is appended
    // crash-safely as it lands, so an interrupted sweep resumes from
    // everything it measured, not just the last clean save.
    let eval_cache = match &args.cache {
        Some(p) => EvalCache::open_journaled(Path::new(p)).unwrap_or_else(|e| {
            eprintln!("cache: journal open failed ({e}); running unjournaled");
            EvalCache::load_or_cold(Path::new(p))
        }),
        None => EvalCache::new(),
    };
    let preloaded = eval_cache.len();
    let designs = Arc::new(DesignCache::new());

    let mut table: Vec<(String, DseReport, f64)> = Vec::new();
    for spec in &specs {
        let base = sweep_base_options(spec, args.budget);
        let mut space = sweep_space(spec, args.quick, &sim_variants);
        if let Some(caps) = &args.cap_permilles {
            space = space.with_cap_permilles(caps);
        }

        let cfg = DseConfig {
            threads: args.threads,
            on_chip_budget_bytes: args.budget,
            area_budget: AreaBudget::device_fraction(args.area_frac),
            strategy,
            capacity_mode: args.capacity_mode,
            objective,
            shard: args.shard,
            ..DseConfig::default()
        };
        let t0 = Instant::now();
        let report = match explore_with_caches(
            &(spec.program)(),
            &base,
            &space,
            &cfg,
            &eval_cache,
            Arc::clone(&designs),
        ) {
            Ok(r) => r,
            // A shard can legitimately own no feasible survivor of a tiny
            // space; its measurements are already in the cache, which is
            // the artifact a sharded run exists to produce.
            Err(DseError::NoFeasibleConfig) if args.shard.is_some() => {
                println!(
                    "{}: shard {} owns no feasible survivors (cache still updated)\n",
                    spec.name,
                    args.shard.map(|s| s.to_string()).unwrap_or_default()
                );
                continue;
            }
            Err(e) => panic!("{}: search failed: {e}", spec.name),
        };
        let secs = t0.elapsed().as_secs_f64();

        if let Some(cap) = args.max_simulated_frac {
            #[allow(clippy::cast_precision_loss)]
            let frac = report.stats.simulated as f64 / report.stats.exhaustive.max(1) as f64;
            assert!(
                frac <= cap,
                "{}: simulated {:.1}% of the {}-point space (cap {:.0}%)",
                spec.name,
                frac * 100.0,
                report.stats.exhaustive,
                cap * 100.0
            );
        }

        print!("{}", report.summary());
        println!("  search wall-clock: {secs:.2}s (threads={})", args.threads);
        if let Some(p) = &args.json {
            export(p, spec.name, multi, &report.to_json());
        }
        if let Some(p) = &args.csv {
            export(p, spec.name, multi, &report.to_csv());
        }
        println!();
        table.push((spec.name.to_string(), report, secs));
    }

    println!(
        "{:<12} {:<34} {:>12} {:>8} {:>14} {:>8}",
        "benchmark", "best config", "cycles", "area", "evals/points", "wall"
    );
    for (name, r, secs) in &table {
        println!(
            "{:<12} {:<34} {:>12} {:>8.4} {:>7}/{:<6} {:>7.2}s",
            name,
            r.best.label,
            r.best.cycles,
            r.best.area_score,
            r.stats.evaluated,
            r.stats.exhaustive,
            secs
        );
    }

    println!(
        "cache: {} eval hits / {} misses, {} designs compiled / {} reused",
        eval_cache.hits(),
        eval_cache.misses(),
        designs.builds(),
        designs.hits()
    );
    if let Some(p) = &args.cache {
        let result = if eval_cache.is_journaled() {
            eval_cache.checkpoint().map_err(|e| e.to_string())
        } else {
            eval_cache.save(Path::new(p)).map_err(|e| e.to_string())
        };
        match result {
            Ok(()) => println!(
                "cache: saved {} entries to {p} ({preloaded} preloaded)",
                eval_cache.len()
            ),
            Err(e) => eprintln!("cache: could not save {p}: {e}"),
        }
    }
}
