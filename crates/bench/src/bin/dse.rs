//! Design-space exploration over the Table 5 benchmarks: jointly sweeps
//! tile sizes, innermost parallelism, and DRAM substrate variants, with
//! the analytic prefilter rejecting infeasible points before they reach
//! the compiler. Reports the cycles-vs-area Pareto frontier, the single
//! best point, and how many compiles the prefilter saved.
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin dse [--bench NAME] [--threads N]
//!  [--quick] [--budget BYTES] [--area-frac F] [--json PATH] [--csv PATH]`
//!
//! - `--bench NAME`   restrict to one benchmark (default: all six)
//! - `--threads N`    worker threads (0 = one per core; results are
//!   identical for every value)
//! - `--quick`        tiny space for CI smoke runs: 2 tile candidates per
//!   dimension, one parallelism factor, default substrate only
//! - `--budget BYTES` on-chip memory budget (default 256 KiB — a
//!   single-kernel scratchpad slice, deliberately tighter than the Max4's
//!   6 MB so the analytic prune has bite; the paper's full budget would
//!   keep every candidate)
//! - `--area-frac F`  fraction of the device the design may use (default 1.0)
//! - `--json PATH` / `--csv PATH`  export reports (`-` = stdout; with
//!   multiple benchmarks the name is inserted before the extension)

use std::time::Instant;

use pphw::dse::explore_program;
use pphw::CompileOptions;
use pphw_apps::all_benchmarks;
use pphw_dse::{DseConfig, DseReport, SearchSpace};
use pphw_hw::AreaBudget;
use pphw_sim::SimConfig;

struct Args {
    bench: Option<String>,
    threads: usize,
    quick: bool,
    budget: u64,
    area_frac: f64,
    json: Option<String>,
    csv: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: None,
        threads: 0,
        quick: false,
        budget: 256 * 1024,
        area_frac: 1.0,
        json: None,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--bench" => args.bench = Some(val("--bench")),
            "--threads" => args.threads = val("--threads").parse().expect("--threads N"),
            "--quick" => args.quick = true,
            "--budget" => args.budget = val("--budget").parse().expect("--budget BYTES"),
            "--area-frac" => args.area_frac = val("--area-frac").parse().expect("--area-frac F"),
            "--json" => args.json = Some(val("--json")),
            "--csv" => args.csv = Some(val("--csv")),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

/// Power-of-two dividing tile candidates around the benchmark's default
/// tile size: `[default/4, default*2]` clamped to the dimension, largest
/// first. Keeps the per-benchmark space small while still bracketing the
/// paper's hand-picked tile from both sides.
fn tile_candidates_around(n: i64, default_tile: i64, quick: bool) -> Vec<i64> {
    let lo = (default_tile / 4).max(4);
    let hi = (default_tile * 2).min(n);
    let mut out = Vec::new();
    let mut b = 4i64;
    while b <= n {
        if n % b == 0 && b >= lo && b <= hi {
            out.push(b);
        }
        b *= 2;
    }
    out.reverse();
    if quick {
        // Keep the two smallest candidates: they are the ones guaranteed
        // to fit the budget, so the smoke run always finds a feasible point.
        let keep = out.len().saturating_sub(2);
        out.drain(..keep);
    }
    out
}

fn export(path: &str, name: &str, multi: bool, contents: &str) {
    if path == "-" {
        println!("{contents}");
        return;
    }
    let target = if multi {
        match path.rsplit_once('.') {
            Some((stem, ext)) => format!("{stem}-{name}.{ext}"),
            None => format!("{path}-{name}"),
        }
    } else {
        path.to_string()
    };
    std::fs::write(&target, contents).unwrap_or_else(|e| panic!("writing {target}: {e}"));
    println!("  wrote {target}");
}

fn main() {
    let args = parse_args();
    let specs: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|s| args.bench.as_deref().is_none_or(|b| b == s.name))
        .collect();
    assert!(!specs.is_empty(), "no benchmark named {:?}", args.bench);
    let multi = specs.len() > 1;

    let sim_variants: Vec<(String, SimConfig)> = if args.quick {
        vec![("max4".to_string(), SimConfig::default())]
    } else {
        SimConfig::named_variants()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    };

    let mut table: Vec<(String, DseReport, f64)> = Vec::new();
    for spec in &specs {
        let sizes = (spec.sizes)();
        let mut base = CompileOptions::new(&sizes).inner_par(spec.inner_par);
        base.on_chip_budget_bytes = args.budget;

        let mut space = SearchSpace::new(&sizes);
        for (dim, t) in (spec.tiles)() {
            let n = sizes
                .iter()
                .find(|(k, _)| *k == dim)
                .map(|(_, v)| *v)
                .expect("tile dim has a size");
            space = space.with_tile_candidates(dim, &tile_candidates_around(n, t, args.quick));
        }
        let pars: Vec<u32> = if args.quick {
            vec![spec.inner_par]
        } else {
            vec![32, 64]
        };
        let variants: Vec<(&str, SimConfig)> = sim_variants
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        space = space.with_inner_pars(&pars).with_sim_variants(&variants);

        let cfg = DseConfig {
            threads: args.threads,
            on_chip_budget_bytes: args.budget,
            area_budget: AreaBudget::device_fraction(args.area_frac),
            ..DseConfig::default()
        };
        let t0 = Instant::now();
        let report = explore_program(&(spec.program)(), &base, &space, &cfg)
            .unwrap_or_else(|e| panic!("{}: search failed: {e}", spec.name));
        let secs = t0.elapsed().as_secs_f64();

        print!("{}", report.summary());
        println!("  search wall-clock: {secs:.2}s (threads={})", args.threads);
        if let Some(p) = &args.json {
            export(p, spec.name, multi, &report.to_json());
        }
        if let Some(p) = &args.csv {
            export(p, spec.name, multi, &report.to_csv());
        }
        println!();
        table.push((spec.name.to_string(), report, secs));
    }

    println!(
        "{:<12} {:<34} {:>12} {:>8} {:>14} {:>8}",
        "benchmark", "best config", "cycles", "area", "evals/points", "wall"
    );
    for (name, r, secs) in &table {
        println!(
            "{:<12} {:<34} {:>12} {:>8.4} {:>7}/{:<6} {:>7.2}s",
            name,
            r.best.label,
            r.best.cycles,
            r.best.area_score,
            r.stats.evaluated,
            r.stats.exhaustive,
            secs
        );
    }
}
