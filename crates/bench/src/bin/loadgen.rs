//! Load harness for the compilation-as-a-service daemon: fires a mixed
//! workload (ping / compile / verify / simulate / source programs /
//! duplicate hot requests / a small DSE) from concurrent clients and
//! reports throughput, latency percentiles, and the daemon's cache and
//! deduplication counters.
//!
//! Usage:
//! `cargo run --release -p pphw-bench --bin loadgen [--addr HOST:PORT]
//!  [--clients N] [--requests N] [--quick] [--out PATH]
//!  [--chaos] [--chaos-seed N] [--warm-check] [--shutdown]`
//!
//! - `--addr HOST:PORT`  target a running daemon; without it, an
//!   in-process daemon is spun up on an ephemeral port (and shut down —
//!   with its final counters harvested — when the run ends)
//! - `--clients N`       concurrent client connections (default 4)
//! - `--requests N`      requests per client per phase (default 40)
//! - `--quick`           CI-sized run: 2 clients × 20 requests
//! - `--out PATH`        report path (default `BENCH_serve.json`;
//!   `BENCH_chaos.json` / `BENCH_chaos_recovery.json` in chaos modes)
//! - `--chaos`           drive the population through a seeded
//!   fault-injecting proxy with retrying clients, and assert every
//!   logical request ends in exactly one typed outcome
//! - `--chaos-seed N`    fault-schedule seed (default 42)
//! - `--warm-check`      replay the chaos population directly (requires
//!   `--addr`) and assert zero eval-cache misses and zero design builds —
//!   the post-crash journal-recovery gate
//! - `--shutdown`        send a clean `shutdown` at the end even when
//!   targeting an external daemon
//!
//! The default workload runs twice: a **cold** phase against empty caches
//! and a **warm** phase repeating the same request population. The warm
//! phase must compile *nothing* (`warm.design_builds == 0`) — that delta
//! is the whole point of a serving daemon — and the duplicate hot
//! requests must show up in the dedup counter. Both are asserted, so a
//! cache regression fails the bench rather than quietly inflating
//! latency.
//!
//! The chaos workload (`--chaos`) uses a deterministic population of
//! ping / simulate / verify requests so the recovery gate can be exact:
//! after the chaos phase, a direct **settle** pass (no proxy) replays the
//! clean population, guaranteeing every key is evaluated and journaled
//! before the harness returns. A later `--warm-check` run — typically
//! against a daemon restarted after `kill -9` — then proves the journal
//! recovered everything: zero eval misses, and design builds only for
//! the verify requests' design-level flow analysis.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pphw_apps::all_benchmarks;
use pphw_dse::cache::EvalCache;
use pphw_ir::pretty::emit_program;
use pphw_server::json::{escape, parse_json, Json};
use pphw_server::{CallOutcome, Client, Limits, RetryClient, RetryConfig, Server, Service};
use pphw_testkit::chaos::{ChaosConfig, ChaosProxy};

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    quick: bool,
    out: Option<String>,
    chaos: bool,
    chaos_seed: u64,
    warm_check: bool,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        clients: 4,
        requests: 40,
        quick: false,
        out: None,
        chaos: false,
        chaos_seed: 42,
        warm_check: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--clients" => args.clients = val("--clients").parse().expect("--clients N"),
            "--requests" => args.requests = val("--requests").parse().expect("--requests N"),
            "--quick" => args.quick = true,
            "--out" => args.out = Some(val("--out")),
            "--chaos" => args.chaos = true,
            "--chaos-seed" => {
                args.chaos_seed = val("--chaos-seed").parse().expect("--chaos-seed N")
            }
            "--warm-check" => args.warm_check = true,
            "--shutdown" => args.shutdown = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    if args.quick {
        args.clients = args.clients.min(2);
        args.requests = args.requests.min(20);
    }
    args
}

impl Args {
    fn out_path(&self) -> &str {
        self.out.as_deref().unwrap_or(if self.warm_check {
            "BENCH_chaos_recovery.json"
        } else if self.chaos {
            "BENCH_chaos.json"
        } else {
            "BENCH_serve.json"
        })
    }
}

/// The request population: one line per (client, index) pair, identical
/// across phases so the warm phase replays exactly the cold population.
fn request_line(client: usize, i: usize, sources: &[(String, String)]) -> String {
    let id = client * 10_000 + i;
    let benches = ["sumrows", "outerprod", "gemm"];
    let bench = benches[(client + i) % benches.len()];
    // Two size variants per benchmark keep the design population small
    // enough that the warm phase provably re-visits every config.
    let scale = if i.is_multiple_of(2) { 8 } else { 16 };
    match i % 10 {
        0 => format!("{{\"id\":{id},\"method\":\"ping\"}}"),
        1 | 2 => format!(
            "{{\"id\":{id},\"method\":\"simulate\",\"bench\":{},\"sizes\":{{\"m\":{scale},\"n\":{scale},\"p\":{scale}}},\"tiles\":{{\"m\":4,\"n\":4}},\"inner_par\":4}}",
            escape(bench)
        ),
        3 => format!(
            "{{\"id\":{id},\"method\":\"compile\",\"bench\":{},\"sizes\":{{\"m\":{scale},\"n\":{scale},\"p\":{scale}}},\"tiles\":{{\"m\":4,\"n\":4}},\"inner_par\":4}}",
            escape(bench)
        ),
        4 => format!(
            "{{\"id\":{id},\"method\":\"verify\",\"bench\":{}}}",
            escape(bench)
        ),
        5 => {
            let (_, src) = &sources[(client + i) % sources.len()];
            format!("{{\"id\":{id},\"method\":\"verify\",\"source\":{}}}", escape(src))
        }
        6 => {
            let (_, src) = &sources[(client + i) % sources.len()];
            format!(
                "{{\"id\":{id},\"method\":\"simulate\",\"source\":{},\"sizes\":{{\"m\":8,\"n\":8}},\"inner_par\":4}}",
                escape(src)
            )
        }
        7 => format!(
            "{{\"id\":{id},\"method\":\"simulate\",\"bench\":\"tpchq6\",\"sizes\":{{\"n\":{}}},\"tiles\":{{\"n\":16}},\"inner_par\":4}}",
            scale * 4
        ),
        // The hot request: identical for every client and index, so
        // concurrent arrivals pile onto one evaluation (the dedup
        // counter must see these).
        8 => format!(
            "{{\"id\":{id},\"method\":\"simulate\",\"bench\":\"sumrows\",\"sizes\":{{\"m\":8,\"n\":8}},\"inner_par\":2}}"
        ),
        _ => format!(
            "{{\"id\":{id},\"method\":\"dse\",\"bench\":\"sumrows\",\"sizes\":{{\"m\":16,\"n\":16}},\
             \"tile_candidates\":{{\"m\":[4,8]}},\"inner_pars\":[4]}}"
        ),
    }
}

/// The chaos population: deterministic ping / simulate / verify lines.
/// Restricted to methods whose replay is exactly reproducible from the
/// eval-cache journal (simulate short-circuits on a cache hit *before*
/// touching the design cache; ping builds nothing; verify compiles only
/// its design-level analysis target, once per distinct design), so the
/// post-crash `--warm-check` can assert zero misses and a design-build
/// count bounded by [`chaos_verify_designs`].
fn chaos_request_line(client: usize, i: usize) -> String {
    let id = client * 10_000 + i;
    let benches = ["sumrows", "outerprod", "gemm"];
    let bench = benches[(client + i) % benches.len()];
    let scale = if i.is_multiple_of(2) { 8 } else { 16 };
    match i % 4 {
        0 => format!("{{\"id\":{id},\"method\":\"ping\"}}"),
        1 | 2 => format!(
            "{{\"id\":{id},\"method\":\"simulate\",\"bench\":{},\"sizes\":{{\"m\":{scale},\"n\":{scale},\"p\":{scale}}},\"tiles\":{{\"m\":4,\"n\":4}},\"inner_par\":4}}",
            escape(bench)
        ),
        _ => format!(
            "{{\"id\":{id},\"method\":\"verify\",\"bench\":{}}}",
            escape(bench)
        ),
    }
}

/// One phase: every client replays its slice of the population over its
/// own connection, lock-step, timing each request. Returns all latencies
/// in microseconds plus the phase wall time in seconds.
fn run_phase(
    addr: &std::net::SocketAddr,
    clients: usize,
    requests: usize,
    sources: &[(String, String)],
) -> (Vec<u64>, f64) {
    let t0 = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
                    let mut lats = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let line = request_line(c, i, sources);
                        let t = Instant::now();
                        let resp = client
                            .call(&line)
                            .unwrap_or_else(|e| panic!("client {c} request {i}: {e}"));
                        let micros = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                        lats.push(micros);
                        let v = parse_json(&resp)
                            .unwrap_or_else(|e| panic!("client {c} bad response: {e}"));
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {c} request {i} failed: {resp}"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    (
        latencies.into_iter().flatten().collect(),
        t0.elapsed().as_secs_f64(),
    )
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Daemon counters relevant to the report, fetched via `stats`.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    requests: u64,
    dedup_hits: u64,
    dedup_builds: u64,
    design_builds: u64,
    design_reuses: u64,
    eval_hits: u64,
    eval_misses: u64,
}

fn fetch_counters(addr: &std::net::SocketAddr) -> Counters {
    let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    let resp = client
        .call("{\"id\":\"stats\",\"method\":\"stats\"}")
        .unwrap_or_else(|e| panic!("stats: {e}"));
    let v = parse_json(&resp).unwrap_or_else(|e| panic!("stats response: {e}"));
    let field = |name: &str| {
        v.get("result")
            .and_then(|r| r.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats missing {name}: {resp}"))
    };
    Counters {
        requests: field("requests"),
        dedup_hits: field("dedup_hits"),
        dedup_builds: field("dedup_builds"),
        design_builds: field("design_builds"),
        design_reuses: field("design_reuses"),
        eval_hits: field("eval_hits"),
        eval_misses: field("eval_misses"),
    }
}

struct Phase {
    name: &'static str,
    secs: f64,
    lats: Vec<u64>,
    delta: Counters,
}

impl Phase {
    fn to_json(&self, requests: usize) -> String {
        let mut sorted = self.lats.clone();
        sorted.sort_unstable();
        let throughput = requests as f64 / self.secs.max(1e-9);
        format!(
            "    {{\"phase\":\"{}\",\"requests\":{requests},\"secs\":{:.4},\
             \"throughput_rps\":{throughput:.1},\"latency_us\":{{\"p50\":{},\"p95\":{},\
             \"p99\":{},\"max\":{}}},\"dedup_hits\":{},\"dedup_builds\":{},\
             \"design_builds\":{},\"design_reuses\":{},\"eval_hits\":{},\"eval_misses\":{}}}",
            self.name,
            self.secs,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.95),
            percentile(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0),
            self.delta.dedup_hits,
            self.delta.dedup_builds,
            self.delta.design_builds,
            self.delta.design_reuses,
            self.delta.eval_hits,
            self.delta.eval_misses,
        )
    }
}

fn delta(after: Counters, before: Counters) -> Counters {
    Counters {
        requests: after.requests - before.requests,
        dedup_hits: after.dedup_hits - before.dedup_hits,
        dedup_builds: after.dedup_builds - before.dedup_builds,
        design_builds: after.design_builds - before.design_builds,
        design_reuses: after.design_reuses - before.design_reuses,
        eval_hits: after.eval_hits - before.eval_hits,
        eval_misses: after.eval_misses - before.eval_misses,
    }
}

/// Outcome tallies for one chaos client.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosTally {
    ok: u64,
    typed_err: u64,
    exhausted: u64,
    attempts: u64,
    reconnects: u64,
    retried_overload: u64,
    retried_transport: u64,
}

/// The `--chaos` mode: the population flows through a seeded
/// fault-injecting proxy, each client retries through faults, and the
/// gate is **exactly one typed outcome per logical request** — zero
/// exhausted retries, zero untyped failures. A direct settle pass then
/// journals the whole clean population (see the module docs).
fn run_chaos(args: &Args) {
    let (addr, in_process) = target_daemon(args);
    let proxy = ChaosProxy::spawn(
        addr,
        ChaosConfig {
            seed: args.chaos_seed,
            ..ChaosConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("chaos proxy: {e}"));
    let paddr = proxy.addr();

    let t0 = Instant::now();
    let tallies: Vec<ChaosTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                scope.spawn(move || {
                    let cfg = RetryConfig {
                        jitter_seed: args
                            .chaos_seed
                            .wrapping_add((c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        read_timeout: Duration::from_secs(2),
                        ..RetryConfig::default()
                    };
                    let mut rc = RetryClient::new(paddr, cfg);
                    let mut t = ChaosTally::default();
                    for i in 0..args.requests {
                        let line = chaos_request_line(c, i);
                        match rc.call(&line) {
                            CallOutcome::Typed(resp) => {
                                let v = parse_json(&resp).unwrap_or_else(|e| {
                                    panic!("client {c} final outcome is not JSON: {e}")
                                });
                                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                                    t.ok += 1;
                                } else {
                                    // A corrupted-but-parseable request can
                                    // end in a typed error; that is still
                                    // exactly one typed outcome, but it must
                                    // carry a code.
                                    assert!(
                                        v.get("error").and_then(|e| e.get("code")).is_some(),
                                        "client {c} request {i}: untyped failure: {resp}"
                                    );
                                    t.typed_err += 1;
                                }
                            }
                            CallOutcome::Exhausted { attempts, last } => {
                                eprintln!(
                                    "chaos: client {c} request {i} exhausted after \
                                     {attempts} attempts: {last}"
                                );
                                t.exhausted += 1;
                            }
                        }
                    }
                    let s = rc.stats();
                    t.attempts = s.attempts;
                    t.reconnects = s.reconnects;
                    t.retried_overload = s.retried_overload;
                    t.retried_transport = s.retried_transport;
                    t
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let faults = proxy.stop();

    let mut sum = ChaosTally::default();
    for t in &tallies {
        sum.ok += t.ok;
        sum.typed_err += t.typed_err;
        sum.exhausted += t.exhausted;
        sum.attempts += t.attempts;
        sum.reconnects += t.reconnects;
        sum.retried_overload += t.retried_overload;
        sum.retried_transport += t.retried_transport;
    }
    let total = (args.clients * args.requests) as u64;
    assert_eq!(
        sum.ok + sum.typed_err + sum.exhausted,
        total,
        "chaos accounting bug: outcomes do not cover the population"
    );
    assert_eq!(
        sum.exhausted, 0,
        "chaos gate: {} logical request(s) never reached a typed outcome",
        sum.exhausted
    );
    assert!(
        faults.chunks > 0,
        "chaos proxy forwarded nothing — the run did not go through the proxy"
    );
    let injected = faults.disconnects
        + faults.corruptions
        + faults.duplicates
        + faults.trickles
        + faults.delays;
    assert!(
        injected > 0,
        "chaos run injected zero faults — the schedule never fired, nothing was exercised"
    );

    // Settle pass: replay the clean population straight at the daemon so
    // every key is evaluated and journaled regardless of which chaos
    // requests ended in typed errors. This is the baseline the
    // `--warm-check` recovery gate measures against.
    let mut settle = Client::connect(&addr).unwrap_or_else(|e| panic!("settle connect: {e}"));
    for c in 0..args.clients {
        for i in 0..args.requests {
            let line = chaos_request_line(c, i);
            let resp = settle
                .call(&line)
                .unwrap_or_else(|e| panic!("settle {c}/{i}: {e}"));
            let v = parse_json(&resp).unwrap_or_else(|e| panic!("settle {c}/{i}: {e}"));
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "settle {c}/{i} failed: {resp}"
            );
        }
    }
    drop(settle);

    shutdown_daemon(&addr, in_process, args.shutdown);

    let json = format!(
        "{{\n  \"mode\": \"chaos\",\n  \"seed\": {},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"secs\": {secs:.4},\n  \
         \"outcomes\": {{\"ok\": {}, \"typed_error\": {}, \"exhausted\": {}}},\n  \
         \"retry\": {{\"attempts\": {}, \"reconnects\": {}, \"retried_overload\": {}, \
         \"retried_transport\": {}}},\n  \
         \"faults\": {{\"connections\": {}, \"chunks\": {}, \"disconnects\": {}, \
         \"corruptions\": {}, \"duplicates\": {}, \"trickles\": {}, \"delays\": {}}},\n  \
         \"settled\": {total}\n}}",
        args.chaos_seed,
        args.clients,
        args.requests,
        sum.ok,
        sum.typed_err,
        sum.exhausted,
        sum.attempts,
        sum.reconnects,
        sum.retried_overload,
        sum.retried_transport,
        faults.connections,
        faults.chunks,
        faults.disconnects,
        faults.corruptions,
        faults.duplicates,
        faults.trickles,
        faults.delays,
    );
    let out = args.out_path();
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    println!("wrote {out}");
}

/// Distinct designs the chaos population's `verify` requests reference:
/// each compiles once per daemon life for design-level flow analysis
/// (the design cache is in-memory, so a restarted daemon rebuilds them),
/// bounding the recovery gate's design-build budget.
fn chaos_verify_designs(clients: usize, requests: usize) -> usize {
    let mut benches = std::collections::BTreeSet::new();
    for c in 0..clients {
        for i in (0..requests).filter(|i| i % 4 == 3) {
            benches.insert((c + i) % 3);
        }
    }
    benches.len()
}

/// The `--warm-check` mode: replay the chaos population directly against
/// a (typically freshly restarted) daemon and assert the eval-cache
/// journal recovered everything — zero eval misses, and design builds
/// only for the verify requests' design-level analysis.
fn run_warm_check(args: &Args) {
    let addr: std::net::SocketAddr = args
        .addr
        .as_deref()
        .expect("--warm-check requires --addr (a daemon restarted over a recovered cache)")
        .parse()
        .unwrap_or_else(|e| panic!("--addr: {e}"));
    let base = fetch_counters(&addr);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..args.clients {
            scope.spawn(move || {
                let mut client = Client::connect(&addr).unwrap_or_else(|e| panic!("connect: {e}"));
                for i in 0..args.requests {
                    let line = chaos_request_line(c, i);
                    let resp = client
                        .call(&line)
                        .unwrap_or_else(|e| panic!("warm-check {c}/{i}: {e}"));
                    let v = parse_json(&resp).unwrap_or_else(|e| panic!("warm-check {c}/{i}: {e}"));
                    assert_eq!(
                        v.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "warm-check {c}/{i} failed: {resp}"
                    );
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let end = fetch_counters(&addr);
    let d = delta(end, base);
    assert_eq!(
        d.eval_misses, 0,
        "recovery gate: warm replay re-evaluated {} key(s) the journal should have recovered",
        d.eval_misses
    );
    let verify_budget = chaos_verify_designs(args.clients, args.requests) as u64;
    assert!(
        d.design_builds <= verify_budget,
        "recovery gate: warm replay rebuilt {} design(s), more than the {} the \
         verify requests' design-level analysis accounts for — eval-cache hits \
         must short-circuit simulate before the design cache",
        d.design_builds,
        verify_budget
    );

    shutdown_daemon(&addr, None, args.shutdown);

    let json = format!(
        "{{\n  \"mode\": \"warm_check\",\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"secs\": {secs:.4},\n  \
         \"eval_hits\": {},\n  \"eval_misses\": {},\n  \"design_builds\": {}\n}}",
        args.clients, args.requests, d.eval_hits, d.eval_misses, d.design_builds,
    );
    let out = args.out_path();
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    println!("wrote {out}");
}

/// Resolves the target daemon: an external one (`--addr`) or an
/// in-process one on an ephemeral port.
fn target_daemon(
    args: &Args,
) -> (
    std::net::SocketAddr,
    Option<std::thread::JoinHandle<pphw_server::ServiceStats>>,
) {
    match &args.addr {
        Some(a) => (
            a.parse().unwrap_or_else(|e| panic!("--addr {a}: {e}")),
            None,
        ),
        None => {
            let service = Arc::new(Service::new(Limits::default(), 2, EvalCache::new()));
            let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 4)
                .unwrap_or_else(|e| panic!("bind: {e}"));
            let addr = server.local_addr().expect("local_addr");
            let handle = std::thread::spawn(move || server.run().expect("serve"));
            (addr, Some(handle))
        }
    }
}

/// Cleanly shuts the daemon down when it is in-process (always) or when
/// `--shutdown` asked for it (external daemons).
fn shutdown_daemon(
    addr: &std::net::SocketAddr,
    in_process: Option<std::thread::JoinHandle<pphw_server::ServiceStats>>,
    forced: bool,
) {
    if in_process.is_none() && !forced {
        return;
    }
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client
        .call("{\"id\":\"bye\",\"method\":\"shutdown\"}")
        .expect("shutdown");
    if let Some(handle) = in_process {
        handle.join().expect("server thread");
    }
}

fn main() {
    let args = parse_args();
    if args.warm_check {
        run_warm_check(&args);
        return;
    }
    if args.chaos {
        run_chaos(&args);
        return;
    }

    // Source-program payloads: the canonical text of two builder
    // benchmarks, exercising the frontend path under load.
    let sources: Vec<(String, String)> = all_benchmarks()
        .into_iter()
        .filter(|s| matches!(s.name, "sumrows" | "outerprod"))
        .map(|s| (s.name.to_string(), emit_program(&(s.program)())))
        .collect();

    // Target: an external daemon (`--addr`) or an in-process one.
    let (addr, in_process) = target_daemon(&args);

    let per_phase = args.clients * args.requests;
    let base = fetch_counters(&addr);
    let (cold_lats, cold_secs) = run_phase(&addr, args.clients, args.requests, &sources);
    let mid = fetch_counters(&addr);
    let (warm_lats, warm_secs) = run_phase(&addr, args.clients, args.requests, &sources);
    let end = fetch_counters(&addr);

    let cold = Phase {
        name: "cold",
        secs: cold_secs,
        lats: cold_lats,
        delta: delta(mid, base),
    };
    let warm = Phase {
        name: "warm",
        secs: warm_secs,
        lats: warm_lats,
        delta: delta(end, mid),
    };

    // The two guarantees the daemon exists for, asserted.
    assert_eq!(
        warm.delta.design_builds, 0,
        "warm phase recompiled designs: every config was already served in the cold phase"
    );
    assert!(
        end.dedup_hits > 0,
        "no request was ever answered from the response memo — dedup is broken"
    );

    shutdown_daemon(&addr, in_process, args.shutdown);

    let json = format!(
        "{{\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"quick\": {},\n  \
         \"target\": \"{}\",\n  \"phases\": [\n{},\n{}\n  ],\n  \
         \"total_requests\": {},\n  \"dedup_hits\": {},\n  \
         \"warm_design_builds\": {},\n  \"warm_speedup\": {:.2}\n}}",
        args.clients,
        args.requests,
        args.quick,
        args.addr.as_deref().unwrap_or("in-process"),
        cold.to_json(per_phase),
        warm.to_json(per_phase),
        end.requests,
        end.dedup_hits,
        warm.delta.design_builds,
        cold_secs / warm_secs.max(1e-9),
    );
    let out = args.out_path();
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    println!("wrote {out}");
}
