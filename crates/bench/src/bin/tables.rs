//! Regenerates the paper's non-headline tables and figures:
//!
//! * `--table1`  strip-mining rules demonstrated on each pattern kind
//! * `--table2`  strip-mining examples (map, sumrows, filter, histogram)
//! * `--table3`  interchange on matrix multiplication
//! * `--table4`  hardware template inventory with per-benchmark counts
//! * `--table5`  benchmark suite
//! * `--fig5`    k-means strip-mined vs interchanged IR
//! * `--fig5c`   k-means memory traffic / on-chip storage table
//! * `--fig6`    k-means hardware block diagram (textual)
//!
//! With no arguments, prints everything.

use pphw::{compile, CompileOptions, OptLevel};
use pphw_ir::pretty::print_program;
use pphw_ir::size::Size;
use pphw_transform::cost::analyze_cost;
use pphw_transform::{strip_mine_program, tile_program, tile_program_no_interchange, TileConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    if want("--table1") {
        table1();
    }
    if want("--table2") {
        table2();
    }
    if want("--table3") {
        table3();
    }
    if want("--table4") {
        table4();
    }
    if want("--table5") {
        table5();
    }
    if want("--fig5") {
        fig5();
    }
    if want("--fig5c") {
        fig5c();
    }
    if want("--fig6") {
        fig6();
    }
}

fn header(title: &str) {
    println!("\n======================================================");
    println!("{title}");
    println!("======================================================");
}

/// Table 1: the strip-mining rule firing on each pattern kind.
fn table1() {
    header("Table 1 — strip mining rules (before => after)");

    // Map
    let prog = pphw_apps::simple::outerprod_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16)], &[("m", 64), ("n", 64)]);
    println!(
        "\n--- T[ Map(d)(m) ] => MultiFold(d/b)(d)(zeros){{ ii => (ii*b, acc => Map(b)) }}(_)"
    );
    println!("before:\n{}", print_program(&prog));
    println!(
        "after:\n{}",
        print_program(&strip_mine_program(&prog, &cfg).unwrap())
    );

    // MultiFold (fold special case)
    let prog = pphw_apps::tpchq6::tpchq6_program();
    let cfg = TileConfig::new(&[("n", 64)], &[("n", 1024)]);
    println!(
        "\n--- T[ MultiFold(d)(r)(z)(f)(c) ] => MultiFold(d/b){{ acc => c(acc, MultiFold(b)) }}(c)"
    );
    println!(
        "after:\n{}",
        print_program(&strip_mine_program(&prog, &cfg).unwrap())
    );

    // FlatMap
    let prog = pphw_apps::tpchq6::tpchq6_filter_program();
    let cfg = TileConfig::new(&[("n", 64)], &[("n", 1024)]);
    println!("\n--- T[ FlatMap(d)(f) ] => FlatMap(d/b){{ FlatMap(b) }}");
    println!(
        "after:\n{}",
        print_program(&strip_mine_program(&prog, &cfg).unwrap())
    );

    // GroupByFold
    let prog = histogram_program();
    let cfg = TileConfig::new(&[("n", 64)], &[("n", 1024)]);
    println!("\n--- T[ GroupByFold(d)(z)(h)(c) ] => GroupByFold(d/b){{ merge GroupByFold(b) }}(c)");
    println!(
        "after:\n{}",
        print_program(&strip_mine_program(&prog, &cfg).unwrap())
    );
}

fn histogram_program() -> pphw_ir::Program {
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::pattern::Init;
    use pphw_ir::types::{DType, ScalarType};
    let mut b = ProgramBuilder::new("histogram");
    let n = b.size("n");
    let x = b.input("x", DType::I32, vec![n.clone()]);
    let out = b.group_by_fold(
        "hist",
        n,
        ScalarType::Prim(DType::I32),
        Init::zero_i32(),
        |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
        |a, b| a.add(b),
    );
    b.finish(vec![out])
}

/// Table 2: the four worked strip-mining examples.
fn table2() {
    header("Table 2 — strip mining examples (with tile copies)");
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, pphw_ir::Program, Vec<(&str, i64)>, Vec<(&str, i64)>)> = vec![
        (
            "element-wise map",
            doubling_program(),
            vec![("d", 64)],
            vec![("d", 1024)],
        ),
        (
            "sums along matrix rows",
            pphw_apps::simple::sumrows_fused_program(),
            vec![("m", 16), ("n", 32)],
            vec![("m", 64), ("n", 128)],
        ),
        (
            "simple filter",
            pphw_apps::tpchq6::tpchq6_filter_program(),
            vec![("n", 64)],
            vec![("n", 1024)],
        ),
        (
            "histogram calculation",
            histogram_program(),
            vec![("n", 64)],
            vec![("n", 1024)],
        ),
    ];
    for (name, prog, tiles, sizes) in cases {
        let cfg = TileConfig::new(&tiles, &sizes);
        let tiled = tile_program_no_interchange(&prog, &cfg).unwrap();
        println!("\n--- {name}\n{}", print_program(&tiled));
    }
}

fn doubling_program() -> pphw_ir::Program {
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;
    let mut b = ProgramBuilder::new("double");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, i| {
        c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])]))
    });
    b.finish(vec![out])
}

/// Table 3: interchange on matrix multiplication.
fn table3() {
    header("Table 3 — pattern interchange on matrix multiplication");
    let prog = pphw_apps::simple::gemm_program();
    let sizes = [("m", 64), ("n", 64), ("p", 64)];
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes);
    let strip = tile_program_no_interchange(&prog, &cfg).unwrap();
    let inter = tile_program(&prog, &cfg).unwrap();
    println!("\n--- strip mined\n{}", print_program(&strip));
    println!("\n--- interchanged\n{}", print_program(&inter));
}

/// Table 4: template inventory, plus instance counts per benchmark design.
fn table4() {
    header("Table 4 — hardware templates");
    println!(
        "{:<16} {:<28} {:<48} IR construct",
        "template", "category", "description"
    );
    for row in pphw_hw::design::table4() {
        println!(
            "{:<16} {:<28} {:<48} {}",
            row.template, row.category, row.description, row.ir_construct
        );
    }
    println!("\nTemplate instances per metapipelined benchmark design:");
    for spec in pphw_apps::all_benchmarks() {
        let prog = (spec.program)();
        let opts = CompileOptions::new(&(spec.sizes)())
            .tiles(&(spec.tiles)())
            .opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).expect("compiles");
        let counts: Vec<String> = compiled
            .design
            .template_counts()
            .into_iter()
            .map(|(k, v)| format!("{k} x{v}"))
            .collect();
        println!("  {:<10} {}", spec.name, counts.join(", "));
    }
}

/// Table 5: the benchmark suite.
fn table5() {
    header("Table 5 — evaluation benchmarks");
    println!("{:<12} {:<40} collections ops", "benchmark", "description");
    for spec in pphw_apps::all_benchmarks() {
        println!(
            "{:<12} {:<40} {}",
            spec.name, spec.description, spec.collections_ops
        );
    }
}

fn kmeans_cfg() -> (pphw_ir::Program, Vec<(&'static str, i64)>, TileConfig) {
    let prog = pphw_apps::kmeans::kmeans_program();
    let sizes = vec![("n", 1024), ("k", 32), ("d", 16)];
    let cfg = TileConfig::new(&[("n", 64), ("k", 8)], &sizes);
    (prog, sizes, cfg)
}

/// Figure 5a/5b: strip-mined vs interchanged k-means.
fn fig5() {
    header("Figure 5 — tiling k-means clustering");
    let (prog, _, cfg) = kmeans_cfg();
    let strip = tile_program_no_interchange(&prog, &cfg).unwrap();
    let inter = tile_program(&prog, &cfg).unwrap();
    println!("\n--- (a) strip mined\n{}", print_program(&strip));
    println!("\n--- (b) split + interchanged\n{}", print_program(&inter));
}

/// Figure 5c: DRAM reads and on-chip storage per structure per variant.
fn fig5c() {
    header("Figure 5c — k-means memory traffic per IR transformation");
    let (prog, sizes, cfg) = kmeans_cfg();
    let env = Size::env(&sizes);
    let fused = analyze_cost(&prog);
    let strip = analyze_cost(&tile_program_no_interchange(&prog, &cfg).unwrap());
    let inter = analyze_cost(&tile_program(&prog, &cfg).unwrap());
    println!("\n--- fused\n{}", fused.to_table(&env));
    println!("--- strip mined\n{}", strip.to_table(&env));
    println!("--- interchanged\n{}", inter.to_table(&env));
}

/// Figure 6: the k-means hardware block diagram plus MaxJ.
fn fig6() {
    header("Figure 6 — k-means hardware (textual block diagram)");
    let (prog, sizes, _) = kmeans_cfg();
    let opts = CompileOptions::new(&sizes)
        .tiles(&[("n", 64)])
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).expect("kmeans compiles");
    println!("{}", compiled.design.to_diagram());
    println!("--- emitted MaxJ ---\n{}", compiled.emit_hgl());
}
