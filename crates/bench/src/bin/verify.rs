//! Lints all six benchmarks with the `pphw-verify` static analyzer: the
//! untiled source program, then the transformed program and generated
//! design at every optimization level. Exits nonzero if any benchmark
//! produces a gating diagnostic, so CI can gate on it.
//!
//! Usage: `cargo run --release -p pphw-bench --bin verify
//!   [--json] [--flow] [--warn-ok] [--max-severity LEVEL]`
//!
//! - `--json`  machine-readable report
//! - `--flow`  per-design dataflow view: every metapipeline channel with
//!   its token grain and slot count, the statically predicted bottleneck
//!   stage, and the depth diff `pphw_verify::flow::infer_capacities`
//!   would apply (empty when the generator already sized minimally)
//! - `--max-severity LEVEL` the highest severity tolerated without a
//!   nonzero exit: `none` (any diagnostic gates), `warning` (warnings
//!   pass, errors gate — the default), `error` (report only, never gate)
//! - `--warn-ok`  alias for `--max-severity warning`: warning-level
//!   diagnostics (e.g. `PPHW044` over-provisioned channels) never force
//!   a nonzero exit

use pphw::{compile, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_bench::options_for;
use pphw_hw::channel::{channels, Channel};
use pphw_verify::flow::{infer_capacities, predict_bottleneck, CapacityChange, FlowTiming};
use pphw_verify::{verify_program, VerifyConfig, VerifyReport};

/// The highest severity the run tolerates without exiting nonzero.
#[derive(Clone, Copy, PartialEq)]
enum Gate {
    /// Any diagnostic gates (strictest: `--max-severity none`).
    None,
    /// Warnings pass, errors gate (default / `--warn-ok`).
    Warning,
    /// Report only, never gate (`--max-severity error`).
    Error,
}

/// The `--flow` view of one compiled design.
struct FlowInfo {
    channels: Vec<Channel>,
    bottleneck: Option<String>,
    inferred: Vec<CapacityChange>,
}

struct Row {
    bench: &'static str,
    stage: String,
    report: VerifyReport,
    flow: Option<FlowInfo>,
}

fn flow_json(f: &FlowInfo) -> String {
    let chans = f
        .channels
        .iter()
        .map(|c| {
            format!(
                "{{\"ctrl\":\"{}\",\"buffer\":\"{}\",\"producer\":\"{}\",\
                 \"consumer\":\"{}\",\"token_words\":{},\"capacity_words\":{},\
                 \"slots\":{},\"backward\":{}}}",
                c.ctrl,
                c.buf_name,
                c.producer_name,
                c.consumer_name,
                c.token_words,
                c.capacity_words,
                c.slots(),
                c.is_backward()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let inferred = f
        .inferred
        .iter()
        .map(|c| {
            format!(
                "{{\"buffer\":\"{}\",\"old_words\":{},\"new_words\":{}}}",
                c.name, c.old_words, c.new_words
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let bottleneck = match &f.bottleneck {
        Some(b) => format!("\"{b}\""),
        None => "null".to_string(),
    };
    format!("{{\"bottleneck\":{bottleneck},\"channels\":[{chans}],\"inferred\":[{inferred}]}}")
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let flow = argv.iter().any(|a| a == "--flow");
    let mut gate = Gate::Warning;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--warn-ok" => gate = Gate::Warning,
            "--max-severity" => {
                i += 1;
                gate = match argv.get(i).map(String::as_str) {
                    Some("none") => Gate::None,
                    Some("warning") => Gate::Warning,
                    Some("error") => Gate::Error,
                    other => {
                        eprintln!(
                            "verify: --max-severity must be none|warning|error, got {other:?}"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--json" | "--flow" => {}
            other => {
                eprintln!("verify: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut rows: Vec<Row> = Vec::new();
    for spec in all_benchmarks() {
        let base = options_for(&spec);
        let cfg = VerifyConfig {
            inner_par: spec.inner_par,
            on_chip_budget_bytes: Some(base.on_chip_budget_bytes),
            ..VerifyConfig::default()
        };
        rows.push(Row {
            bench: spec.name,
            stage: "source".into(),
            report: verify_program(&(spec.program)(), &cfg),
            flow: None,
        });
        for level in OptLevel::all() {
            let opts = base.clone().opt(level);
            match compile(&(spec.program)(), &opts) {
                Ok(compiled) => rows.push(Row {
                    bench: spec.name,
                    stage: level.to_string(),
                    flow: flow.then(|| {
                        let mut sized = compiled.design.clone();
                        FlowInfo {
                            channels: channels(&compiled.design),
                            bottleneck: predict_bottleneck(
                                &compiled.design,
                                &FlowTiming::default(),
                            ),
                            inferred: infer_capacities(&mut sized),
                        }
                    }),
                    report: compiled.verify(),
                }),
                Err(e) => {
                    // A benchmark that no longer compiles is as gating as
                    // a diagnostic; surface it and fail.
                    eprintln!("verify: {} [{level}] failed to compile: {e}", spec.name);
                    std::process::exit(2);
                }
            }
        }
    }

    let error_count: usize = rows.iter().map(|r| r.report.error_count()).sum();
    let warning_count: usize = rows.iter().map(|r| r.report.warning_count()).sum();
    if json {
        let body = rows
            .iter()
            .map(|r| {
                let flow = match &r.flow {
                    Some(f) => format!(",\"flow\":{}", flow_json(f)),
                    None => String::new(),
                };
                format!(
                    "{{\"bench\":\"{}\",\"stage\":\"{}\",\"report\":{}{flow}}}",
                    r.bench,
                    r.stage,
                    r.report.to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"error_count\":{error_count},\"warning_count\":{warning_count},\
             \"runs\":[{body}]}}"
        );
    } else {
        for r in &rows {
            let verdict = if r.report.is_clean() {
                "clean".to_string()
            } else {
                format!("{} error(s)", r.report.error_count())
            };
            println!("{:<12} {:<28} {verdict}", r.bench, r.stage);
            for d in &r.report.diagnostics {
                println!("    {d}");
            }
            if let Some(f) = &r.flow {
                for c in &f.channels {
                    println!(
                        "    flow {}/{}: {} -> {} token={}w cap={}w slots={}{}",
                        c.ctrl,
                        c.buf_name,
                        c.producer_name,
                        c.consumer_name,
                        c.token_words,
                        c.capacity_words,
                        c.slots(),
                        if c.is_backward() { " (backward)" } else { "" }
                    );
                }
                if let Some(b) = &f.bottleneck {
                    println!("    flow bottleneck: {b}");
                }
                if f.inferred.is_empty() {
                    if !f.channels.is_empty() {
                        println!("    flow inferred depths: as generated (already minimal)");
                    }
                } else {
                    for c in &f.inferred {
                        println!(
                            "    flow inferred depth: {} {}w -> {}w",
                            c.name, c.old_words, c.new_words
                        );
                    }
                }
            }
        }
        println!(
            "verify: {} runs, {error_count} error(s), {warning_count} warning(s) total",
            rows.len()
        );
    }
    let gating = match gate {
        Gate::None => error_count + warning_count,
        Gate::Warning => error_count,
        Gate::Error => 0,
    };
    if gating > 0 {
        std::process::exit(1);
    }
}
