//! Lints all six benchmarks with the `pphw-verify` static analyzer: the
//! untiled source program, then the transformed program and generated
//! design at every optimization level. Exits nonzero if any benchmark
//! produces an error-severity diagnostic, so CI can gate on it.
//!
//! Usage: `cargo run --release -p pphw-bench --bin verify [--json]`

use pphw::{compile, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_bench::options_for;
use pphw_verify::{verify_program, VerifyConfig, VerifyReport};

struct Row {
    bench: &'static str,
    stage: String,
    report: VerifyReport,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows: Vec<Row> = Vec::new();
    for spec in all_benchmarks() {
        let base = options_for(&spec);
        let cfg = VerifyConfig {
            inner_par: spec.inner_par,
            on_chip_budget_bytes: Some(base.on_chip_budget_bytes),
            ..VerifyConfig::default()
        };
        rows.push(Row {
            bench: spec.name,
            stage: "source".into(),
            report: verify_program(&(spec.program)(), &cfg),
        });
        for level in OptLevel::all() {
            let opts = base.clone().opt(level);
            match compile(&(spec.program)(), &opts) {
                Ok(compiled) => rows.push(Row {
                    bench: spec.name,
                    stage: level.to_string(),
                    report: compiled.verify(),
                }),
                Err(e) => {
                    // A benchmark that no longer compiles is as gating as
                    // a diagnostic; surface it and fail.
                    eprintln!("verify: {} [{level}] failed to compile: {e}", spec.name);
                    std::process::exit(2);
                }
            }
        }
    }

    let error_count: usize = rows.iter().map(|r| r.report.error_count()).sum();
    if json {
        let body = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"bench\":\"{}\",\"stage\":\"{}\",\"report\":{}}}",
                    r.bench,
                    r.stage,
                    r.report.to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!("{{\"error_count\":{error_count},\"runs\":[{body}]}}");
    } else {
        for r in &rows {
            let verdict = if r.report.is_clean() {
                "clean".to_string()
            } else {
                format!("{} error(s)", r.report.error_count())
            };
            println!("{:<12} {:<28} {verdict}", r.bench, r.stage);
            for d in &r.report.diagnostics {
                println!("    {d}");
            }
        }
        println!("verify: {} runs, {error_count} error(s) total", rows.len());
    }
    if error_count > 0 {
        std::process::exit(1);
    }
}
