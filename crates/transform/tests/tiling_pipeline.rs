//! End-to-end tiling pipeline tests: strip mine → split → interchange →
//! copy insertion → cleanups, checked for semantic equivalence and for the
//! structural/cost properties of Figure 5 and Table 3.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::pretty::print_program;
use pphw_ir::size::Size;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::cost::analyze_cost;
use pphw_transform::{tile_program, tile_program_no_interchange, TileConfig};

fn mat_f32(r: usize, c: usize, f: impl Fn(usize, usize) -> f32) -> Value {
    let mut data = Vec::with_capacity(r * c);
    for i in 0..r {
        for j in 0..c {
            data.push(f(i, j));
        }
    }
    Value::tensor_f32(&[r, c], data)
}

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

#[test]
fn gemm_full_pipeline_preserves_semantics() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 4), ("n", 4), ("p", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    tiled.validate().unwrap();

    let x = mat_f32(8, 16, |i, j| ((i + 2 * j) % 7) as f32);
    let y = mat_f32(16, 12, |i, j| ((3 * i + j) % 5) as f32);
    let base = Interpreter::new(&prog, &sizes)
        .run(vec![x.clone(), y.clone()])
        .unwrap();
    let out = Interpreter::new(&tiled, &sizes).run(vec![x, y]).unwrap();
    assert!(
        base[0].approx_eq(&out[0], 1e-5),
        "pipeline broke gemm:\n{}",
        print_program(&tiled)
    );
}

/// Table 3: tile copies of both inputs appear after the full pipeline.
#[test]
fn gemm_pipeline_inserts_tile_copies() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 4), ("n", 4), ("p", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let text = print_program(&tiled);
    assert!(text.contains("xTile"), "no x tile copy:\n{text}");
    assert!(text.contains("yTile"), "no y tile copy:\n{text}");
    assert!(text.contains(".copy("), "no copy ops:\n{text}");
}

fn kmeans_assign_program() -> Program {
    let mut b = ProgramBuilder::new("assign");
    let n = b.size("n");
    let k = b.size("k");
    let d = b.size("d");
    let points = b.input("points", DType::F32, vec![n.clone(), d.clone()]);
    let centroids = b.input("centroids", DType::F32, vec![k.clone(), d.clone()]);
    let out = b.with_ctx(|c| {
        let (k2, d2) = (k.clone(), d.clone());
        c.multi_fold(
            "counts",
            vec![n.clone()],
            vec![k.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            move |c, idx| {
                let i = idx[0];
                let best = c.fold(
                    "best",
                    vec![k2.clone()],
                    vec![],
                    ScalarType::Tuple(vec![DType::F32, DType::I32]),
                    Init::argmin(),
                    |c, j, acc| {
                        let j = j[0];
                        let dist = c.fold(
                            "dist",
                            vec![d2.clone()],
                            vec![],
                            ScalarType::Prim(DType::F32),
                            Init::zeros(),
                            |c, p, acc2| {
                                let diff = c.sq_diff(
                                    c.read(points, vec![c.var(i), c.var(p[0])]),
                                    c.read(centroids, vec![c.var(j), c.var(p[0])]),
                                );
                                c.add(c.var(acc2), diff)
                            },
                            |c, a, b2| c.add(c.var(a), c.var(b2)),
                        );
                        let cand = c.tuple(vec![c.var(dist), c.var(j)]);
                        c.select(c.lt(c.field(c.var(acc), 0), c.var(dist)), c.var(acc), cand)
                    },
                    |c, a, b2| {
                        c.select(
                            c.lt(c.field(c.var(a), 0), c.field(c.var(b2), 0)),
                            c.var(a),
                            c.var(b2),
                        )
                    },
                );
                let min_idx = c.scalar("minIdx", c.field(c.var(best), 1));
                (
                    vec![pphw_ir::expr::Expr::var(min_idx)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| {
                        c2.add(c2.var(acc), c2.f32(1.0))
                    }),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    b.finish(vec![out])
}

#[test]
fn kmeans_full_pipeline_preserves_semantics() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    tiled.validate().unwrap();

    let points = mat_f32(16, 4, |i, j| ((i * 13 + j * 5) % 31) as f32);
    let centroids = mat_f32(8, 4, |i, j| ((i * 17 + j * 3) % 29) as f32);
    let base = Interpreter::new(&prog, &sizes)
        .run(vec![points.clone(), centroids.clone()])
        .unwrap();
    let out = Interpreter::new(&tiled, &sizes)
        .run(vec![points, centroids])
        .unwrap();
    assert!(
        base[0].approx_eq(&out[0], 1e-5),
        "pipeline broke kmeans:\n{}",
        print_program(&tiled)
    );
}

/// Figure 5b structure: both points and centroids get tile copies, and the
/// centroid tile copy lands inside the interchanged strided fold (reused
/// across the point tile).
#[test]
fn kmeans_pipeline_copies_both_inputs() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let text = print_program(&tiled);
    assert!(text.contains("pointsTile"), "no points tile:\n{text}");
    assert!(text.contains("centroidsTile"), "no centroids tile:\n{text}");
}

/// Figure 5c, interchanged row: centroids main-memory reads drop from
/// n×k×d (strip-mined only) to (n/b0)×k×d after interchange.
#[test]
fn kmeans_cost_matches_figure_5c() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let env = Size::env(&sizes);
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);

    let strip = tile_program_no_interchange(&prog, &cfg).unwrap();
    let inter = tile_program(&prog, &cfg).unwrap();

    let cost_strip = analyze_cost(&strip);
    let cost_inter = analyze_cost(&inter);

    let (n, k, d, b0) = (16i64, 8, 4, 4);

    // Points are read exactly once in both variants.
    let pts_strip = cost_strip
        .get("points")
        .expect("points cost")
        .dram_reads
        .eval(&env)
        .unwrap();
    let pts_inter = cost_inter
        .get("points")
        .expect("points cost")
        .dram_reads
        .eval(&env)
        .unwrap();
    assert_eq!(pts_strip, n * d, "strip-mined points reads");
    assert_eq!(pts_inter, n * d, "interchanged points reads");

    // Centroids: n×k×d strip-mined, (n/b0)×k×d after interchange.
    let cen_strip = cost_strip
        .get("centroids")
        .expect("centroids")
        .dram_reads
        .eval(&env)
        .unwrap();
    let cen_inter = cost_inter
        .get("centroids")
        .expect("centroids")
        .dram_reads
        .eval(&env)
        .unwrap();
    assert_eq!(cen_strip, n * k * d, "strip-mined centroids reads");
    assert_eq!(cen_inter, (n / b0) * k * d, "interchanged centroids reads");
    assert!(
        cen_inter < cen_strip,
        "interchange must reduce centroid traffic by b0"
    );
}

/// The cost report renders a readable table with symbolic formulas.
#[test]
fn cost_report_table_renders() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let report = analyze_cost(&tiled);
    let table = report.to_table(&Size::env(&sizes));
    assert!(table.contains("points"), "{table}");
    assert!(table.contains("centroids"), "{table}");
}

/// Without tiling, the pipeline is the identity (modulo cleanups) and the
/// cost model charges full re-reads per use.
#[test]
fn untiled_gemm_cost_is_quadratic_in_reuse() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let env = Size::env(&sizes);
    let report = analyze_cost(&prog);
    let (m, n, p) = (8i64, 12, 16);
    // Untransformed gemm reads each input element once per (i,j,k).
    assert_eq!(
        report.get("x").unwrap().dram_reads.eval(&env).unwrap(),
        m * n * p
    );
    assert_eq!(
        report.get("y").unwrap().dram_reads.eval(&env).unwrap(),
        m * n * p
    );
}

/// Tiling reduces gemm's y traffic by the m-tile factor and x traffic by
/// the n-tile factor.
#[test]
fn tiled_gemm_cost_drops() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let env = Size::env(&sizes);
    let cfg = TileConfig::new(&[("m", 4), ("n", 4), ("p", 4)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let report = analyze_cost(&tiled);
    let untiled = analyze_cost(&prog);
    let before = untiled.total_reads(&env).unwrap();
    let after = report.total_reads(&env).unwrap();
    assert!(
        after * 2 < before,
        "tiling should cut gemm traffic at least 2x: {after} vs {before}"
    );
}
