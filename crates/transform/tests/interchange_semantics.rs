//! Semantic equivalence of pattern interchange (§4, Table 3, Figure 5) and
//! the split heuristic.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::pretty::print_program;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::interchange::{interchange_program, split_multifolds};
use pphw_transform::{strip_mine_program, TileConfig};

fn mat_f32(r: usize, c: usize, f: impl Fn(usize, usize) -> f32) -> Value {
    let mut data = Vec::with_capacity(r * c);
    for i in 0..r {
        for j in 0..c {
            data.push(f(i, j));
        }
    }
    Value::tensor_f32(&[r, c], data)
}

/// gemm in PPL: x.map{row => y-col map { dot-product fold } } expressed as
/// map(m,n){ fold(p) }.
fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

fn run_gemm(prog: &Program, sizes: &[(&str, i64)]) -> Vec<f32> {
    let (m, n, p) = (
        sizes[0].1 as usize,
        sizes[1].1 as usize,
        sizes[2].1 as usize,
    );
    let x = mat_f32(m, p, |i, j| ((i + 2 * j) % 7) as f32);
    let y = mat_f32(p, n, |i, j| ((3 * i + j) % 5) as f32);
    Interpreter::new(prog, sizes).run(vec![x, y]).unwrap()[0].as_f32_slice()
}

/// Table 3: tiling gemm then interchanging the strided reduction out of
/// the unstrided map keeps the result identical.
#[test]
fn gemm_strip_mine_then_interchange() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 4), ("n", 4), ("p", 4)], &sizes);

    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    tiled.validate().unwrap();
    let inter = interchange_program(&tiled, &cfg);
    inter.validate().unwrap();

    let base = run_gemm(&prog, &sizes);
    let after_tile = run_gemm(&tiled, &sizes);
    let after_inter = run_gemm(&inter, &sizes);
    assert_eq!(base, after_tile, "strip mining changed gemm");
    assert_eq!(
        base,
        after_inter,
        "interchange changed gemm:\n{}",
        print_program(&inter)
    );
}

/// Interchange actually fires on tiled gemm: the strided reduction domain
/// moves outside the tile-level map.
#[test]
fn gemm_interchange_restructures() {
    let prog = gemm_program();
    let sizes = [("m", 8), ("n", 12), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 4), ("n", 4), ("p", 4)], &sizes);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    let inter = interchange_program(&tiled, &cfg);
    let before = print_program(&tiled);
    let after = print_program(&inter);
    assert_ne!(before, after, "interchange did not fire");
    // The interchanged form has a p/4-strided multiFold carrying a (4,4)
    // tensor accumulator (the partial output tile).
    assert!(after.contains("multiFold(p/4)((4,4))"), "got:\n{after}");
}

/// Interchange without any strided pattern is the identity.
#[test]
fn interchange_noop_on_untiled() {
    let prog = gemm_program();
    let sizes = [("m", 4), ("n", 4), ("p", 4)];
    let cfg = TileConfig::new(&[], &sizes);
    let inter = interchange_program(&prog, &cfg);
    assert_eq!(print_program(&prog), print_program(&inter));
}

/// A k-means-shaped kernel: for each point, find the closest centroid
/// (strided argmin after tiling k), then count points per centroid.
/// Exercises split + interchange on an imperfect nest with a
/// data-dependent accumulator location.
fn kmeans_assign_program() -> Program {
    let mut b = ProgramBuilder::new("assign");
    let n = b.size("n");
    let k = b.size("k");
    let d = b.size("d");
    let points = b.input("points", DType::F32, vec![n.clone(), d.clone()]);
    let centroids = b.input("centroids", DType::F32, vec![k.clone(), d.clone()]);
    let out = b.with_ctx(|c| {
        let (k2, d2) = (k.clone(), d.clone());
        c.multi_fold(
            "counts",
            vec![n.clone()],
            vec![k.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            move |c, idx| {
                let i = idx[0];
                // argmin over centroids of squared distance
                let best = c.fold(
                    "best",
                    vec![k2.clone()],
                    vec![],
                    ScalarType::Tuple(vec![DType::F32, DType::I32]),
                    Init::argmin(),
                    |c, j, acc| {
                        let j = j[0];
                        let dist = c.fold(
                            "dist",
                            vec![d2.clone()],
                            vec![],
                            ScalarType::Prim(DType::F32),
                            Init::zeros(),
                            |c, p, acc2| {
                                let diff = c.sq_diff(
                                    c.read(points, vec![c.var(i), c.var(p[0])]),
                                    c.read(centroids, vec![c.var(j), c.var(p[0])]),
                                );
                                c.add(c.var(acc2), diff)
                            },
                            |c, a, b2| c.add(c.var(a), c.var(b2)),
                        );
                        let cand = c.tuple(vec![c.var(dist), c.var(j)]);
                        c.select(c.lt(c.field(c.var(acc), 0), c.var(dist)), c.var(acc), cand)
                    },
                    |c, a, b2| {
                        c.select(
                            c.lt(c.field(c.var(a), 0), c.field(c.var(b2), 0)),
                            c.var(a),
                            c.var(b2),
                        )
                    },
                );
                let min_idx = c.scalar("minIdx", c.field(c.var(best), 1));
                (
                    vec![pphw_ir::expr::Expr::var(min_idx)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| {
                        c2.add(c2.var(acc), c2.f32(1.0))
                    }),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    b.finish(vec![out])
}

fn run_assign(prog: &Program, sizes: &[(&str, i64)]) -> Vec<f32> {
    let (n, k, d) = (
        sizes[0].1 as usize,
        sizes[1].1 as usize,
        sizes[2].1 as usize,
    );
    let points = mat_f32(n, d, |i, j| ((i * 13 + j * 5) % 31) as f32);
    let centroids = mat_f32(k, d, |i, j| ((i * 17 + j * 3) % 29) as f32);
    Interpreter::new(prog, sizes)
        .run(vec![points, centroids])
        .unwrap()[0]
        .as_f32_slice()
}

/// Figure 5 pipeline on the k-means assignment: strip mine (n, k), split
/// the per-point argmin out of the count fold, interchange the strided
/// centroid loop out of the per-point map. Values must be preserved at
/// every step.
#[test]
fn kmeans_split_and_interchange_preserve_semantics() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);

    let base = run_assign(&prog, &sizes);

    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    tiled.validate().unwrap();
    assert_eq!(
        base,
        run_assign(&tiled, &sizes),
        "strip mining broke kmeans"
    );

    let split = split_multifolds(&tiled, &cfg);
    split.validate().unwrap();
    assert_eq!(
        base,
        run_assign(&split, &sizes),
        "split broke kmeans:\n{}",
        print_program(&split)
    );

    let inter = interchange_program(&split, &cfg);
    inter.validate().unwrap();
    assert_eq!(
        base,
        run_assign(&inter, &sizes),
        "interchange broke kmeans:\n{}",
        print_program(&inter)
    );
}

/// The split heuristic extracts the strided argmin into a map over the
/// point tile, and interchange then moves the strided centroid-tile loop
/// out of that map (Figure 5b's minDistWithInds structure).
#[test]
fn kmeans_split_extracts_intermediate() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    let split = split_multifolds(&tiled, &cfg);
    let text = print_program(&split);
    // A new map over the point tile domain (4) computing the per-point best
    // appears before the counting fold.
    assert!(text.contains("bests"), "split did not extract:\n{text}");
    let inter = interchange_program(&split, &cfg);
    let itext = print_program(&inter);
    assert!(
        itext.contains("multiFold(k/4)((4))"),
        "interchange did not produce the per-tile argmin vector:\n{itext}"
    );
}

/// The split heuristic refuses when the intermediate exceeds the budget.
#[test]
fn split_respects_budget() {
    let prog = kmeans_assign_program();
    let sizes = [("n", 16), ("k", 8), ("d", 4)];
    let cfg = TileConfig::new(&[("n", 4), ("k", 4)], &sizes).with_budget(4);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    let split = split_multifolds(&tiled, &cfg);
    assert_eq!(
        print_program(&tiled),
        print_program(&split),
        "split fired despite tiny budget"
    );
}

/// Rule 2: an unstrided fold whose update body is a strided write-once
/// `MultiFold` (a tiled map producing row tiles) merged elementwise into
/// the accumulator. Interchange moves the strided tile loop outermost,
/// turning the nest into a write-once `MultiFold` of scalar folds.
fn rule2_program() -> Program {
    use pphw_ir::expr::Expr;
    use pphw_ir::size::Size;
    let mut b = ProgramBuilder::new("rowacc");
    let n = b.size("n");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![n.clone(), d.clone()]);
    let (d2, tile) = (d.clone(), 4i64);
    let out = b.fold(
        "colsums",
        vec![n],
        vec![d.clone()],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        move |c, i, acc| {
            let i = i[0];
            // W: strided write-once MultiFold producing the scaled row in
            // d/4-sized tiles (the outer pattern of a tiled map).
            let dd = d2.clone();
            let strided = (d2.clone() / Size::Const(tile)).simplified();
            let w = c.multi_fold(
                "w",
                vec![strided],
                vec![d2.clone()],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                move |_c2, ii| {
                    let ii = ii[0];
                    (
                        vec![Expr::var(ii).mul(Expr::SizeOf(Size::Const(tile)))],
                        vec![Size::Const(tile)],
                        Box::new(move |uc: &mut pphw_ir::builder::Ctx<'_>, _reg| {
                            uc.map(vec![Size::Const(tile)], |mc, j| {
                                let col = mc.add(mc.mul(mc.var(ii), mc.int(tile)), mc.var(j[0]));
                                mc.mul(mc.f32(2.0), mc.read(x, vec![mc.var(i), col]))
                            })
                        }),
                    )
                },
                None::<
                    Box<
                        dyn FnOnce(
                            &mut pphw_ir::builder::Ctx<'_>,
                            pphw_ir::Sym,
                            pphw_ir::Sym,
                        ) -> Expr,
                    >,
                >,
            );
            // Elementwise merge of the accumulator with W's row.
            let dd2 = dd.clone();
            c.map(vec![dd2], move |mc, r| {
                mc.add(
                    mc.read(acc, vec![mc.var(r[0])]),
                    mc.read(w, vec![mc.var(r[0])]),
                )
            })
        },
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    b.finish(vec![out])
}

#[test]
fn rule2_strided_multifold_moves_out_of_fold() {
    let prog = rule2_program();
    let sizes = [("n", 8), ("d", 16)];
    let cfg = TileConfig::new(&[], &sizes);
    let inter = interchange_program(&prog, &cfg);
    inter.validate().unwrap();
    let before = print_program(&prog);
    let after = print_program(&inter);
    assert_ne!(before, after, "rule 2 did not fire:\n{before}");
    // The strided tile domain is now outermost (a d/4-strided multiFold
    // carrying 4-wide regions of scalar folds over n).
    assert!(
        after.contains("multiFold(d/4)"),
        "expected strided outer loop:\n{after}"
    );
}

#[test]
fn rule2_preserves_semantics() {
    let prog = rule2_program();
    let sizes = [("n", 8), ("d", 16)];
    let cfg = TileConfig::new(&[], &sizes);
    let inter = interchange_program(&prog, &cfg);
    let x = mat_f32(8, 16, |i, j| ((i * 5 + j * 3) % 11) as f32);
    let base = Interpreter::new(&prog, &sizes)
        .run(vec![x.clone()])
        .unwrap();
    let got = Interpreter::new(&inter, &sizes).run(vec![x]).unwrap();
    assert!(
        base[0].approx_eq(&got[0], 1e-4),
        "rule 2 broke semantics:\n{}",
        print_program(&inter)
    );
}
