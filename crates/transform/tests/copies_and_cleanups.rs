//! Focused tests for tile-copy insertion and the cleanup passes as they
//! compose in the full pipeline.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::pretty::print_program;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::{Block, Op, Program};
use pphw_transform::copies::insert_copies;
use pphw_transform::cse::cse_program;
use pphw_transform::dce::dce_program;
use pphw_transform::fusion::fuse_program;
use pphw_transform::motion::hoist_program;
use pphw_transform::{strip_mine_program, tile_program, TileConfig};

fn count_copies(prog: &Program) -> usize {
    fn walk(b: &Block, n: &mut usize) {
        for s in &b.stmts {
            match &s.op {
                Op::Copy(_) => *n += 1,
                Op::Pattern(p) => {
                    for cb in p.child_blocks() {
                        walk(cb, n);
                    }
                }
                _ => {}
            }
        }
    }
    let mut n = 0;
    walk(&prog.body, &mut n);
    n
}

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

fn doubling_program() -> Program {
    let mut b = ProgramBuilder::new("double");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, i| {
        c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])]))
    });
    b.finish(vec![out])
}

#[test]
fn copy_insertion_on_untiled_program_preloads_small_tensors() {
    // Without strided indices, the only copy the inserter may create is a
    // whole-tensor preload — and only when the tensor fits the budget.
    let prog = doubling_program();
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    assert_eq!(count_copies(&prog), 0);
    let preloaded = insert_copies(&prog, &cfg);
    assert_eq!(count_copies(&preloaded), 1, "{}", print_program(&preloaded));
    // With no budget, nothing is preloaded.
    let tight = TileConfig::new(&[("d", 16)], &[("d", 64)]).with_budget(4);
    let untouched = insert_copies(&prog, &tight);
    assert_eq!(count_copies(&untouched), 0);
}

#[test]
fn strip_mined_program_gets_window_copies() {
    let prog = doubling_program();
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    let strip = strip_mine_program(&prog, &cfg).unwrap();
    let with_copies = insert_copies(&strip, &cfg);
    assert_eq!(
        count_copies(&with_copies),
        1,
        "{}",
        print_program(&with_copies)
    );
    let text = print_program(&with_copies);
    assert!(
        text.contains(":+ 16"),
        "expected a 16-wide window:
{text}"
    );
}

#[test]
fn copy_insertion_preserves_semantics() {
    let prog = doubling_program();
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    let strip = strip_mine_program(&prog, &cfg).unwrap();
    let with_copies = insert_copies(&strip, &cfg);
    with_copies.validate().unwrap();
    let data = Value::tensor_f32(&[64], (0..64).map(|i| i as f32).collect());
    let a = Interpreter::new(&strip, &[("d", 64)])
        .run(vec![data.clone()])
        .unwrap();
    let b = Interpreter::new(&with_copies, &[("d", 64)])
        .run(vec![data])
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn copies_respect_budget() {
    let prog = doubling_program();
    // A budget too small for even one 16-element tile: no copies inserted.
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]).with_budget(16);
    let strip = strip_mine_program(&prog, &cfg).unwrap();
    let with_copies = insert_copies(&strip, &cfg);
    assert_eq!(count_copies(&with_copies), 0);
}

#[test]
fn small_resident_tensor_is_preloaded_at_top_level() {
    // A lookup table indexed only by local/static indices is preloaded
    // whole (the Figure 6 Pipe-0 pattern).
    let mut b = ProgramBuilder::new("scalelut");
    let n = b.size("n");
    let k = b.size("k");
    let lut = b.input("lut", DType::F32, vec![k.clone()]);
    let x = b.input("x", DType::F32, vec![n.clone(), k.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![n, k], |c, ij| {
            c.mul(
                c.read(x, vec![c.var(ij[0]), c.var(ij[1])]),
                c.read(lut, vec![c.var(ij[1])]),
            )
        })
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("n", 8)], &[("n", 32), ("k", 16)]);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let text = print_program(&tiled);
    assert!(text.contains("lutTile"), "lut should be preloaded:\n{text}");
    // Semantics preserved.
    let lut_v = Value::tensor_f32(&[16], (0..16).map(|i| i as f32).collect());
    let x_v = Value::tensor_f32(&[32, 16], (0..512).map(|i| (i % 7) as f32).collect());
    let base = Interpreter::new(&prog, &[("n", 32), ("k", 16)])
        .run(vec![lut_v.clone(), x_v.clone()])
        .unwrap();
    let got = Interpreter::new(&tiled, &[("n", 32), ("k", 16)])
        .run(vec![lut_v, x_v])
        .unwrap();
    assert!(base[0].approx_eq(&got[0], 1e-5));
}

#[test]
fn data_dependent_tensor_is_not_copied() {
    // A gather through a data-dependent index must not get a tile copy.
    let mut b = ProgramBuilder::new("gather");
    let n = b.size("n");
    let m = b.size("m");
    let idx = b.input("idx", DType::I32, vec![n.clone()]);
    let table = b.input("table", DType::F32, vec![m.clone()]);
    let out = b.map(vec![n], |c, i| {
        let j = c.read(idx, vec![c.var(i[0])]);
        c.read(table, vec![j])
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("n", 8)], &[("n", 64), ("m", 256)]);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let text = print_program(&tiled);
    assert!(
        text.contains("idxTile"),
        "the affine idx stream should be tiled:\n{text}"
    );
    assert!(
        !text.contains("tableTile"),
        "the gathered table must not be tiled:\n{text}"
    );
}

#[test]
fn cleanup_passes_are_idempotent() {
    let prog = gemm_program();
    let sizes = [("m", 16), ("n", 16), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 8), ("n", 8), ("p", 8)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let once = dce_program(&cse_program(&hoist_program(&tiled)));
    let twice = dce_program(&cse_program(&hoist_program(&once)));
    assert_eq!(print_program(&once), print_program(&twice));
}

#[test]
fn fusion_then_tiling_composes() {
    // An unfused two-stage program: scale then sum. Fusion inlines the
    // producer; tiling the result still matches the original semantics.
    let mut b = ProgramBuilder::new("scalesum");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let scaled = b.map(vec![d.clone()], |c, i| {
        c.mul(c.f32(0.5), c.read(x, vec![c.var(i[0])]))
    });
    let total = b.fold(
        "sum",
        vec![d],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| c.add(c.var(acc), c.read(scaled, vec![c.var(i[0])])),
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    let prog = b.finish(vec![total]);

    let fused = fuse_program(&prog);
    assert_eq!(fused.body.stmts.len(), 1, "producer map should be gone");

    let cfg = TileConfig::new(&[("d", 8)], &[("d", 64)]);
    let tiled = tile_program(&fused, &cfg).unwrap();
    let data = Value::tensor_f32(&[64], (0..64).map(|i| i as f32).collect());
    let base = Interpreter::new(&prog, &[("d", 64)])
        .run(vec![data.clone()])
        .unwrap();
    let got = Interpreter::new(&tiled, &[("d", 64)])
        .run(vec![data])
        .unwrap();
    assert!(base[0].approx_eq(&got[0], 1e-4));
}

#[test]
fn hoisting_enables_cse_of_duplicate_copies() {
    // Two sibling patterns both consume the same tile range; after the
    // pipeline the copies are deduplicated.
    let prog = gemm_program();
    let sizes = [("m", 16), ("n", 16), ("p", 16)];
    let cfg = TileConfig::new(&[("m", 8), ("n", 8), ("p", 8)], &sizes);
    let tiled = tile_program(&prog, &cfg).unwrap();
    // gemm has exactly two distinct tile copies (x and y) per loop level.
    let n = count_copies(&tiled);
    assert!(
        n <= 2,
        "duplicate copies survived: {n}\n{}",
        print_program(&tiled)
    );
}
