//! Property-based tests: the tiling pipeline preserves program semantics
//! for arbitrary workloads and (dividing) tile-size choices.

use proptest::prelude::*;

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::{tile_program, TileConfig};

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

/// A divisor of `v` drawn from the small powers of two.
fn divisor_of(v: i64) -> impl Strategy<Value = i64> {
    let divs: Vec<i64> = [1i64, 2, 4, 8].into_iter().filter(|d| v % d == 0).collect();
    prop::sample::select(divs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// gemm tiled with arbitrary dividing tile sizes computes the same
    /// matrix as the untiled program, for random inputs.
    #[test]
    fn tiled_gemm_equivalent(
        (m, bm) in (1i64..4).prop_map(|k| k * 8).prop_flat_map(|m| (Just(m), divisor_of(m))),
        (n, bn) in (1i64..4).prop_map(|k| k * 8).prop_flat_map(|n| (Just(n), divisor_of(n))),
        (p, bp) in (1i64..4).prop_map(|k| k * 8).prop_flat_map(|p| (Just(p), divisor_of(p))),
        seed in 0u64..1000,
    ) {
        let prog = gemm_program();
        let sizes = [("m", m), ("n", n), ("p", p)];
        // Tile sizes must divide; skip degenerate full-size tiles sometimes.
        let cfg = TileConfig::new(&[("m", bm.max(2)), ("n", bn.max(2)), ("p", bp.max(2))], &sizes);
        let tiled = match tile_program(&prog, &cfg) {
            Ok(t) => t,
            Err(e) => return Err(TestCaseError::fail(format!("tiling failed: {e}"))),
        };
        tiled.validate().unwrap();

        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xm: Vec<f32> = (0..m * p).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ym: Vec<f32> = (0..p * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let inputs = vec![
            Value::tensor_f32(&[m as usize, p as usize], xm),
            Value::tensor_f32(&[p as usize, n as usize], ym),
        ];
        let base = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let got = Interpreter::new(&tiled, &sizes).run(inputs).unwrap();
        prop_assert!(base[0].approx_eq(&got[0], 1e-3));
    }

    /// A predicated reduction (tpchq6 shape) survives tiling for any
    /// threshold and data.
    #[test]
    fn tiled_predicated_fold_equivalent(
        data in prop::collection::vec(0.0f32..100.0, 16..128),
        threshold in 0.0f32..100.0,
    ) {
        // Pad to a multiple of 8 so the tile divides.
        let mut data = data;
        while data.len() % 8 != 0 {
            data.push(0.0);
        }
        let n = data.len() as i64;

        let mut b = ProgramBuilder::new("predsum");
        let d = b.size("n");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "s", vec![d], vec![], ScalarType::Prim(DType::F32), Init::zeros(),
            |c, i, acc| {
                let v = c.read(x, vec![c.var(i[0])]);
                let contrib = c.select(c.lt(c.f32(threshold), v.clone()), v, c.f32(0.0));
                c.add(c.var(acc), contrib)
            },
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![out]);

        let sizes = [("n", n)];
        let cfg = TileConfig::new(&[("n", 8)], &sizes);
        let tiled = tile_program(&prog, &cfg).unwrap();
        let inputs = vec![Value::tensor_f32(&[n as usize], data.clone())];
        let base = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let got = Interpreter::new(&tiled, &sizes).run(inputs).unwrap();
        prop_assert!(base[0].approx_eq(&got[0], 1e-3));
    }

    /// Tiling never increases the modeled DRAM read traffic of gemm.
    #[test]
    fn tiling_never_increases_gemm_traffic(
        b in prop::sample::select(vec![2i64, 4, 8]),
    ) {
        let prog = gemm_program();
        let sizes = [("m", 16), ("n", 16), ("p", 16)];
        let env = pphw_ir::Size::env(&sizes);
        let cfg = TileConfig::new(&[("m", b), ("n", b), ("p", b)], &sizes);
        let tiled = tile_program(&prog, &cfg).unwrap();
        let before = pphw_transform::cost::analyze_cost(&prog)
            .total_reads(&env)
            .unwrap();
        let after = pphw_transform::cost::analyze_cost(&tiled)
            .total_reads(&env)
            .unwrap();
        prop_assert!(after <= before, "tiling increased traffic: {after} > {before}");
    }
}
