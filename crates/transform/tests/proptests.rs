//! Property-based tests: the tiling pipeline preserves program semantics
//! for arbitrary workloads and (dividing) tile-size choices — on the
//! hermetic `pphw-testkit` harness, with a pinned seed for reproducible CI
//! runs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_testkit::prop::{shrink, Check};
use pphw_testkit::{prop_assert, Rng};

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::{tile_program, TileConfig};

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

/// A dimension that is a multiple of 8 (up to 24), with a dividing tile
/// size drawn from the small powers of two.
fn dim_and_tile(rng: &mut Rng) -> (i64, i64) {
    let v = rng.gen_range(1i64..4) * 8;
    let divs: Vec<i64> = [1i64, 2, 4, 8].into_iter().filter(|d| v % d == 0).collect();
    (v, *rng.choose(&divs))
}

/// gemm tiled with arbitrary dividing tile sizes computes the same matrix
/// as the untiled program, for random inputs.
#[test]
fn tiled_gemm_equivalent() {
    Check::new("tiled_gemm_equivalent").cases(24).run(
        |rng| {
            (
                dim_and_tile(rng),
                dim_and_tile(rng),
                dim_and_tile(rng),
                rng.gen_range(0u64..1000),
            )
        },
        |&((m, bm), (n, bn), (p, bp), seed)| {
            let prog = gemm_program();
            let sizes = [("m", m), ("n", n), ("p", p)];
            // Tile sizes must divide; clamp away degenerate 1-wide tiles.
            let cfg = TileConfig::new(
                &[("m", bm.max(2)), ("n", bn.max(2)), ("p", bp.max(2))],
                &sizes,
            );
            let tiled = match tile_program(&prog, &cfg) {
                Ok(t) => t,
                Err(e) => return Err(format!("tiling failed: {e}")),
            };
            tiled.validate().unwrap();

            let mut rng = Rng::seed_from_u64(seed);
            let xm = rng.f32_vec((m * p) as usize, -1.0, 1.0);
            let ym = rng.f32_vec((p * n) as usize, -1.0, 1.0);
            let inputs = vec![
                Value::tensor_f32(&[m as usize, p as usize], xm),
                Value::tensor_f32(&[p as usize, n as usize], ym),
            ];
            let base = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
            let got = Interpreter::new(&tiled, &sizes).run(inputs).unwrap();
            prop_assert!(
                base[0].approx_eq(&got[0], 1e-3),
                "tiled gemm diverged at m={m}/{bm} n={n}/{bn} p={p}/{bp} seed={seed}"
            );
            Ok(())
        },
    );
}

/// A predicated reduction (tpchq6 shape) survives tiling for any threshold
/// and data.
#[test]
fn tiled_predicated_fold_equivalent() {
    Check::new("tiled_predicated_fold_equivalent")
        .cases(32)
        .run_shrink(
            |rng| {
                let n = rng.gen_range(16usize..128);
                (rng.f32_vec(n, 0.0, 100.0), rng.gen_range(0.0f32..100.0))
            },
            |(data, threshold)| {
                shrink::vec(data, 16)
                    .into_iter()
                    .map(|d| (d, *threshold))
                    .collect()
            },
            |(data, threshold)| {
                let threshold = *threshold;
                // Pad to a multiple of 8 so the tile divides.
                let mut data = data.clone();
                while data.len() % 8 != 0 {
                    data.push(0.0);
                }
                let n = data.len() as i64;

                let mut b = ProgramBuilder::new("predsum");
                let d = b.size("n");
                let x = b.input("x", DType::F32, vec![d.clone()]);
                let out = b.fold(
                    "s",
                    vec![d],
                    vec![],
                    ScalarType::Prim(DType::F32),
                    Init::zeros(),
                    |c, i, acc| {
                        let v = c.read(x, vec![c.var(i[0])]);
                        let contrib = c.select(c.lt(c.f32(threshold), v.clone()), v, c.f32(0.0));
                        c.add(c.var(acc), contrib)
                    },
                    |c, a, b2| c.add(c.var(a), c.var(b2)),
                );
                let prog = b.finish(vec![out]);

                let sizes = [("n", n)];
                let cfg = TileConfig::new(&[("n", 8)], &sizes);
                let tiled = tile_program(&prog, &cfg).unwrap();
                let inputs = vec![Value::tensor_f32(&[n as usize], data.clone())];
                let base = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
                let got = Interpreter::new(&tiled, &sizes).run(inputs).unwrap();
                prop_assert!(
                    base[0].approx_eq(&got[0], 1e-3),
                    "predicated fold diverged at n={n} threshold={threshold}"
                );
                Ok(())
            },
        );
}

/// Tiling never increases the modeled DRAM read traffic of gemm.
#[test]
fn tiling_never_increases_gemm_traffic() {
    Check::new("tiling_never_increases_gemm_traffic")
        .cases(8)
        .run(
            |rng| *rng.choose(&[2i64, 4, 8]),
            |&b| {
                let prog = gemm_program();
                let sizes = [("m", 16), ("n", 16), ("p", 16)];
                let env = pphw_ir::Size::env(&sizes);
                let cfg = TileConfig::new(&[("m", b), ("n", b), ("p", b)], &sizes);
                let tiled = tile_program(&prog, &cfg).unwrap();
                let before = pphw_transform::cost::analyze_cost(&prog)
                    .total_reads(&env)
                    .unwrap();
                let after = pphw_transform::cost::analyze_cost(&tiled)
                    .total_reads(&env)
                    .unwrap();
                prop_assert!(
                    after <= before,
                    "tiling increased traffic: {after} > {before}"
                );
                Ok(())
            },
        );
}
