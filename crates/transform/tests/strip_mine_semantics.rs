//! Semantic equivalence of strip mining (Table 1 / Table 2): the tiled
//! program must compute exactly what the original computes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::expr::Expr;
use pphw_ir::interp::{Interpreter, Value};
use pphw_ir::pattern::Init;
use pphw_ir::size::Size;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::{strip_mine_program, TileConfig};

fn check_equiv(prog: &Program, cfg: &TileConfig, sizes: &[(&str, i64)], inputs: Vec<Value>) {
    let tiled = strip_mine_program(prog, cfg).expect("strip mining succeeds");
    tiled.validate().expect("tiled program validates");
    let base = Interpreter::new(prog, sizes)
        .run(inputs.clone())
        .expect("original runs");
    let out = Interpreter::new(&tiled, sizes)
        .run(inputs)
        .expect("tiled runs");
    assert_eq!(base.len(), out.len());
    for (a, b) in base.iter().zip(&out) {
        assert!(
            a.approx_eq(b, 1e-5),
            "strip-mined output differs:\noriginal: {a:?}\ntiled: {b:?}\n\ntiled IR:\n{}",
            pphw_ir::pretty::print_program(&tiled)
        );
    }
}

fn vec_f32(n: usize, f: impl Fn(usize) -> f32) -> Value {
    Value::tensor_f32(&[n], (0..n).map(f).collect())
}

fn mat_f32(r: usize, c: usize, f: impl Fn(usize, usize) -> f32) -> Value {
    let mut data = Vec::with_capacity(r * c);
    for i in 0..r {
        for j in 0..c {
            data.push(f(i, j));
        }
    }
    Value::tensor_f32(&[r, c], data)
}

/// Table 2 row 1: element-wise map.
#[test]
fn strip_mine_map_1d() {
    let mut b = ProgramBuilder::new("double");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, idx| {
        c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    check_equiv(&prog, &cfg, &[("d", 64)], vec![vec_f32(64, |i| i as f32)]);
}

/// 2-D map with both dimensions tiled.
#[test]
fn strip_mine_map_2d_both_dims() {
    let mut b = ProgramBuilder::new("scale2d");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.map(vec![m, n], |c, idx| {
        c.add(c.read(x, vec![c.var(idx[0]), c.var(idx[1])]), c.f32(1.0))
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("m", 4), ("n", 8)], &[("m", 12), ("n", 24)]);
    check_equiv(
        &prog,
        &cfg,
        &[("m", 12), ("n", 24)],
        vec![mat_f32(12, 24, |i, j| (i * 31 + j) as f32)],
    );
}

/// 2-D map with only one dimension tiled (the other stays inner).
#[test]
fn strip_mine_map_2d_one_dim() {
    let mut b = ProgramBuilder::new("scale1of2");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.map(vec![m, n], |c, idx| {
        c.mul(c.read(x, vec![c.var(idx[0]), c.var(idx[1])]), c.f32(0.5))
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("m", 3)], &[("m", 9), ("n", 5)]);
    check_equiv(
        &prog,
        &cfg,
        &[("m", 9), ("n", 5)],
        vec![mat_f32(9, 5, |i, j| (i + j * 7) as f32)],
    );
}

/// Scalar full fold (tpchq6-style reduction).
#[test]
fn strip_mine_scalar_fold() {
    let mut b = ProgramBuilder::new("sum");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.fold(
        "sum",
        vec![d],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 8)], &[("d", 48)]);
    check_equiv(&prog, &cfg, &[("d", 48)], vec![vec_f32(48, |i| i as f32)]);
}

/// Argmin-style tuple fold: combine is a selection, not an addition.
#[test]
fn strip_mine_argmin_fold() {
    let mut b = ProgramBuilder::new("argmin");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.fold(
        "argmin",
        vec![d],
        vec![],
        ScalarType::Tuple(vec![DType::F32, DType::I32]),
        Init::argmin(),
        |c, i, acc| {
            let v = c.read(x, vec![c.var(i[0])]);
            let cand = c.tuple(vec![v.clone(), c.var(i[0])]);
            c.select(c.lt(c.field(c.var(acc), 0), v), c.var(acc), cand)
        },
        |c, a, b2| {
            c.select(
                c.lt(c.field(c.var(a), 0), c.field(c.var(b2), 0)),
                c.var(a),
                c.var(b2),
            )
        },
    );
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 6)], &[("d", 24)]);
    // Distinct values so the argmin is unique and order-insensitive.
    check_equiv(
        &prog,
        &cfg,
        &[("d", 24)],
        vec![vec_f32(24, |i| ((i * 7 + 3) % 24) as f32)],
    );
}

/// Table 2 row 2: sumrows as a MultiFold with a tracked (point) update.
#[test]
fn strip_mine_sumrows_tracked() {
    let mut b = ProgramBuilder::new("sumrows");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.multi_fold(
            "rowsums",
            vec![m.clone(), n.clone()],
            vec![m.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, idx| {
                let (i, j) = (idx[0], idx[1]);
                let v = c.read(x, vec![c.var(i), c.var(j)]);
                (
                    vec![Expr::var(i)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| c2.add(c2.var(acc), v)),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("m", 4), ("n", 8)], &[("m", 16), ("n", 32)]);
    check_equiv(
        &prog,
        &cfg,
        &[("m", 16), ("n", 32)],
        vec![mat_f32(16, 32, |i, j| ((i * j) % 13) as f32)],
    );
}

/// Histogram-style dynamic-location MultiFold (untracked dimension).
#[test]
fn strip_mine_dynamic_location_fold() {
    let mut b = ProgramBuilder::new("bincount");
    let n = b.size("n");
    let k = b.size("k");
    let x = b.input("x", DType::I32, vec![n.clone()]);
    let out = b.with_ctx(|c| {
        c.multi_fold(
            "counts",
            vec![n.clone()],
            vec![k.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, idx| {
                let bucket = c.scalar("bucket", c.read(x, vec![c.var(idx[0])]));
                (
                    vec![Expr::var(bucket)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| {
                        c2.add(c2.var(acc), c2.f32(1.0))
                    }),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("n", 8)], &[("n", 32), ("k", 4)]);
    let data = Value::tensor_i32(&[32], (0..32).map(|i| (i * 5 + 1) % 4).collect());
    check_equiv(&prog, &cfg, &[("n", 32), ("k", 4)], vec![data]);
}

/// Table 2 row 3: filter via FlatMap.
#[test]
fn strip_mine_filter() {
    let mut b = ProgramBuilder::new("pos");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.filter("pos", d, |c, i| {
        let v = c.read(x, vec![c.var(i)]);
        (c.lt(c.f32(10.0), v.clone()), v)
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 8)], &[("d", 40)]);
    check_equiv(
        &prog,
        &cfg,
        &[("d", 40)],
        vec![vec_f32(40, |i| ((i * 11) % 23) as f32)],
    );
}

/// Table 2 row 4: histogram via GroupByFold, tiled into a dict merge.
#[test]
fn strip_mine_histogram() {
    let mut b = ProgramBuilder::new("hist");
    let d = b.size("d");
    let x = b.input("x", DType::I32, vec![d.clone()]);
    let out = b.group_by_fold(
        "hist",
        d,
        ScalarType::Prim(DType::I32),
        Init::zero_i32(),
        |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
        |a, b| a.add(b),
    );
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    let data = Value::tensor_i32(&[64], (0..64).map(|i| (i * 7) % 50).collect());
    check_equiv(&prog, &cfg, &[("d", 64)], vec![data]);
}

/// Nested patterns: only the inner fold's dimension tiled.
#[test]
fn strip_mine_nested_inner_only() {
    let mut b = ProgramBuilder::new("sumrows_nested");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m], |c, i| {
            let i = i[0];
            c.fold(
                "rowsum",
                vec![n.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("n", 8)], &[("m", 6), ("n", 32)]);
    check_equiv(
        &prog,
        &cfg,
        &[("m", 6), ("n", 32)],
        vec![mat_f32(6, 32, |i, j| (i * 3 + j) as f32)],
    );
}

/// Nested patterns with both levels tiled.
#[test]
fn strip_mine_nested_both_levels() {
    let mut b = ProgramBuilder::new("sumrows_nested2");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m], |c, i| {
            let i = i[0];
            c.fold(
                "rowsum",
                vec![n.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("m", 2), ("n", 8)], &[("m", 6), ("n", 32)]);
    check_equiv(
        &prog,
        &cfg,
        &[("m", 6), ("n", 32)],
        vec![mat_f32(6, 32, |i, j| ((i * 17 + j * 3) % 29) as f32)],
    );
}

/// Strip mining with no matching tile config is the identity.
#[test]
fn strip_mine_noop_without_config() {
    let mut b = ProgramBuilder::new("id");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[], &[("d", 16)]);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    assert_eq!(
        pphw_ir::pretty::print_program(&tiled),
        pphw_ir::pretty::print_program(&prog)
    );
}

/// Indivisible tile sizes are rejected.
#[test]
fn strip_mine_rejects_indivisible() {
    let mut b = ProgramBuilder::new("bad");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 7)], &[("d", 16)]);
    assert!(strip_mine_program(&prog, &cfg).is_err());
}

/// The tiled program validates and contains a strided (d/b) domain.
#[test]
fn strip_mine_introduces_strided_domain() {
    let mut b = ProgramBuilder::new("double");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, idx| {
        c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
    });
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 64)]);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    let text = pphw_ir::pretty::print_program(&tiled);
    assert!(text.contains("multiFold(d/16)"), "got:\n{text}");
    assert!(text.contains("map(16)"), "got:\n{text}");
}

/// Two independent outputs both get tiled.
#[test]
fn strip_mine_multiple_outputs() {
    let mut b = ProgramBuilder::new("two");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let doubled = b.map(vec![d.clone()], |c, idx| {
        c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
    });
    let total = b.fold(
        "sum",
        vec![d],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    let prog = b.finish(vec![doubled, total]);
    let cfg = TileConfig::new(&[("d", 4)], &[("d", 16)]);
    check_equiv(&prog, &cfg, &[("d", 16)], vec![vec_f32(16, |i| i as f32)]);
}

/// Tile size equal to the dimension leaves the pattern untouched.
#[test]
fn strip_mine_full_tile_is_noop() {
    let mut b = ProgramBuilder::new("fulltile");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
    let prog = b.finish(vec![out]);
    let cfg = TileConfig::new(&[("d", 16)], &[("d", 16)]);
    let tiled = strip_mine_program(&prog, &cfg).unwrap();
    let text = pphw_ir::pretty::print_program(&tiled);
    assert!(text.contains("map(d)"), "got:\n{text}");
}

/// Size expressions in strided domains evaluate to the tile count.
#[test]
fn strided_domain_evaluates() {
    let s = (Size::var("d") / Size::Const(16)).simplified();
    assert_eq!(s.eval(&Size::env(&[("d", 64)])), Ok(4));
}
