//! Memory traffic and on-chip storage analysis (Figure 5c of the paper).
//!
//! Computes, per DRAM-resident tensor, the minimum number of words read
//! from main memory and the on-chip buffer words required, as symbolic
//! [`Size`] expressions. The model charges DRAM reads at *materialization
//! points*: a slice or copy of a resident tensor reads its extent once per
//! enclosing iteration (the data then lives in an on-chip buffer), and a
//! direct element read costs one word per enclosing iteration. Intermediate
//! pattern accumulators bound inside patterns contribute on-chip storage.
//!
//! Applied to the three k-means variants (fused / strip-mined /
//! interchanged) this reproduces the `n×d`, `n×k×d` vs `(n/b0)×k×d`, and
//! `2` vs `2×b0` entries of Figure 5c.

use std::collections::BTreeMap;

use pphw_ir::block::{Block, Op};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::Pattern;
use pphw_ir::program::Program;
use pphw_ir::size::{shape_elems, Size, SizeEnv};
use pphw_ir::types::{Sym, Type};

/// Cost entry for one tensor or intermediate.
#[derive(Debug, Clone)]
pub struct TensorCost {
    /// Display name (without the symbol id suffix).
    pub name: String,
    /// Words read from main memory (symbolic).
    pub dram_reads: Size,
    /// On-chip storage in words (symbolic; max across materializations).
    pub on_chip_words: Size,
}

/// Whole-program cost report.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Per-tensor costs, in first-touch order.
    pub tensors: Vec<TensorCost>,
}

impl CostReport {
    /// Looks up a tensor's cost by display name.
    pub fn get(&self, name: &str) -> Option<&TensorCost> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Total DRAM words read, evaluated under `env`.
    ///
    /// # Errors
    ///
    /// Returns a size-evaluation error if a dimension is unbound.
    pub fn total_reads(&self, env: &SizeEnv) -> Result<i64, pphw_ir::size::SizeError> {
        let mut total = 0;
        for t in &self.tensors {
            total += t.dram_reads.eval(env)?;
        }
        Ok(total)
    }

    /// Total on-chip words, evaluated under `env`.
    ///
    /// # Errors
    ///
    /// Returns a size-evaluation error if a dimension is unbound.
    pub fn total_on_chip(&self, env: &SizeEnv) -> Result<i64, pphw_ir::size::SizeError> {
        let mut total = 0;
        for t in &self.tensors {
            total += t.on_chip_words.eval(env)?;
        }
        Ok(total)
    }

    /// Formats the report as an aligned text table.
    pub fn to_table(&self, env: &SizeEnv) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:<28} {:>14}  {:<20} {:>12}\n",
            "tensor", "DRAM reads", "(value)", "on-chip words", "(value)"
        ));
        for t in &self.tensors {
            let reads_v = t
                .dram_reads
                .eval(env)
                .map(|v| v.to_string())
                .unwrap_or_else(|_| "?".into());
            let words_v = t
                .on_chip_words
                .eval(env)
                .map(|v| v.to_string())
                .unwrap_or_else(|_| "?".into());
            out.push_str(&format!(
                "{:<22} {:<28} {:>14}  {:<20} {:>12}\n",
                t.name,
                t.dram_reads.to_string(),
                reads_v,
                t.on_chip_words.to_string(),
                words_v
            ));
        }
        out
    }
}

/// Concrete analytic traffic prediction for one configuration — the cost
/// model of this module evaluated under a size environment. Used by the
/// design-space explorer to prune candidates before the expensive
/// compile+simulate path, and by the differential harness to cross-check
/// the model against simulated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficPrediction {
    /// Predicted words read from main memory (a lower bound: the model
    /// charges reads at materialization points and ignores burst padding).
    pub dram_read_words: i64,
    /// Predicted peak on-chip words across materializations.
    pub on_chip_words: i64,
}

impl TrafficPrediction {
    /// On-chip footprint in bytes for a given word size.
    #[must_use]
    pub fn on_chip_bytes(&self, word_bytes: u64) -> u64 {
        self.on_chip_words.max(0) as u64 * word_bytes
    }
}

/// Evaluates the analytic cost model for `prog` under `env`, producing the
/// per-candidate prediction the design-space explorer prunes with.
///
/// # Errors
///
/// Returns a size-evaluation error if a dimension of the program is not
/// bound in `env`.
pub fn predict_traffic(
    prog: &Program,
    env: &SizeEnv,
) -> Result<TrafficPrediction, pphw_ir::size::SizeError> {
    let report = analyze_cost(prog);
    Ok(TrafficPrediction {
        dram_read_words: report.total_reads(env)?,
        on_chip_words: report.total_on_chip(env)?,
    })
}

struct Acc {
    reads: Size,
    storage: Size,
    order: usize,
}

struct St<'a> {
    prog: &'a Program,
    resident: BTreeMap<Sym, Sym>, // alias (slice view) -> base tensor
    costs: BTreeMap<Sym, Acc>,
    counter: usize,
}

impl St<'_> {
    fn add_reads(&mut self, base: Sym, amount: Size) {
        let counter = self.counter;
        let e = self.costs.entry(base).or_insert_with(|| Acc {
            reads: Size::Const(0),
            storage: Size::Const(0),
            order: counter,
        });
        e.reads = (e.reads.clone() + amount).simplified();
        self.counter += 1;
    }

    fn max_storage(&mut self, base: Sym, amount: Size) {
        let counter = self.counter;
        let e = self.costs.entry(base).or_insert_with(|| Acc {
            reads: Size::Const(0),
            storage: Size::Const(0),
            order: counter,
        });
        // Keep the larger (by a heuristic static evaluation with all-1 env
        // fallback: prefer the structurally larger product).
        if size_rank(&amount) > size_rank(&e.storage) {
            e.storage = amount;
        }
        self.counter += 1;
    }
}

fn size_rank(s: &Size) -> i64 {
    // Evaluate with every variable at a nominal 1024 to order sizes.
    let mut env = SizeEnv::new();
    for v in s.vars() {
        env.insert(v, 1024);
    }
    s.eval(&env).unwrap_or(i64::MAX)
}

/// Analyzes the program and produces the cost report.
pub fn analyze_cost(prog: &Program) -> CostReport {
    let mut st = St {
        prog,
        resident: BTreeMap::new(),
        costs: BTreeMap::new(),
        counter: 0,
    };
    for i in &prog.inputs {
        if matches!(prog.ty(*i), Type::Tensor { .. }) {
            st.resident.insert(*i, *i);
        }
    }
    walk_block(&prog.body, &Size::Const(1), 0, &mut st);

    let mut entries: Vec<(Sym, Acc)> = st.costs.into_iter().collect();
    entries.sort_by_key(|(_, a)| a.order);
    CostReport {
        tensors: entries
            .into_iter()
            .map(|(sym, acc)| TensorCost {
                name: prog.syms.info(sym).name.clone(),
                dram_reads: acc.reads.simplified(),
                on_chip_words: acc.storage.simplified(),
            })
            .collect(),
    }
}

fn elems_of(dims: &[pphw_ir::block::SliceDim], base_shape: &[Size]) -> Size {
    let mut total = Size::Const(1);
    for (d, full) in dims.iter().zip(base_shape) {
        let len = match d {
            pphw_ir::block::SliceDim::Point(_) => Size::Const(1),
            pphw_ir::block::SliceDim::Window { len, .. } => len.clone(),
            pphw_ir::block::SliceDim::Full => full.clone(),
        };
        total = total * len;
    }
    total
}

fn walk_block(block: &Block, mult: &Size, depth: usize, st: &mut St<'_>) {
    for stmt in &block.stmts {
        match &stmt.op {
            Op::Expr(e) => count_expr_reads(e, mult, st),
            Op::VarVec(items) => {
                for it in items {
                    if let Some(g) = &it.guard {
                        count_expr_reads(g, mult, st);
                    }
                    count_expr_reads(&it.value, mult, st);
                }
            }
            Op::Slice(s) => {
                if let Some(&base) = st.resident.get(&s.tensor) {
                    let shape = st.prog.ty(s.tensor).shape().to_vec();
                    let elems = elems_of(&s.dims, &shape);
                    if depth > 0 {
                        st.add_reads(base, mult.clone() * elems.clone());
                        st.max_storage(base, elems);
                    }
                    // Reads of the view are then on-chip; don't track the
                    // alias as resident.
                } else {
                    // Slice of an on-chip value: free.
                }
            }
            Op::Copy(c) => {
                if let Some(&base) = st.resident.get(&c.tensor) {
                    let shape = st.prog.ty(c.tensor).shape().to_vec();
                    let elems = elems_of(&c.dims, &shape);
                    st.add_reads(base, mult.clone() * elems.clone());
                    st.max_storage(base, elems);
                }
            }
            Op::Pattern(p) => {
                let inner_mult = p
                    .domain()
                    .iter()
                    .fold(mult.clone(), |m, d| m * d.clone())
                    .simplified();
                for b in p.child_blocks() {
                    walk_block(b, &inner_mult, depth + 1, st);
                }
                if let Pattern::MultiFold(mf) = p {
                    // Accumulators bound inside patterns are on-chip
                    // intermediates.
                    if depth > 0 {
                        for (acc, sym) in mf.accs.iter().zip(&stmt.syms) {
                            let elems =
                                shape_elems(&acc.shape) * Size::Const(acc.elem.width() as i64);
                            st.max_storage(*sym, elems);
                        }
                    }
                }
            }
        }
    }
}

fn count_expr_reads(e: &Expr, mult: &Size, st: &mut St<'_>) {
    e.visit(&mut |sub| {
        if let Expr::Read { tensor, .. } = sub {
            if let Some(&base) = st.resident.get(tensor) {
                st.add_reads(base, mult.clone());
            }
        }
    });
}
