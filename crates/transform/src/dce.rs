//! Dead code elimination.
//!
//! PPL operations are pure, so any statement whose bound symbols are never
//! referenced later (transitively) can be removed. Runs innermost-first so
//! dead nested statements don't keep their dependencies alive.

use std::collections::BTreeSet;

use pphw_ir::block::{Block, Op};
use pphw_ir::program::Program;
use pphw_ir::types::Sym;

/// Removes dead statements from every block of the program.
pub fn dce_program(prog: &Program) -> Program {
    let mut out = prog.clone();
    dce_block(&mut out.body);
    out
}

/// Removes dead statements from `block` and all nested blocks.
pub fn dce_block(block: &mut Block) {
    dce_block_with(block, &BTreeSet::new());
}

/// DCE with additional externally-live symbols: bindings of this block that
/// later sibling blocks reference (e.g. a `MultiFold` pre-block binding
/// used by its update bodies) must be kept alive.
fn dce_block_with(block: &mut Block, extra_live: &BTreeSet<Sym>) {
    // Clean nested blocks first so their free-symbol sets shrink. Pattern
    // pre-blocks get the frees of the pattern's other blocks as live-out.
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            dce_pattern(p);
        }
    }
    // Backward liveness within this block. A statement's uses include
    // everything its nested blocks reference.
    let mut live: BTreeSet<Sym> = block.result.iter().copied().collect();
    live.extend(extra_live.iter().copied());
    let mut keep = vec![false; block.stmts.len()];
    for (i, stmt) in block.stmts.iter().enumerate().rev() {
        if stmt.syms.iter().any(|s| live.contains(s)) {
            keep[i] = true;
            live.extend(stmt_uses(stmt));
        }
    }
    let mut i = 0;
    block.stmts.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

fn dce_pattern(p: &mut pphw_ir::pattern::Pattern) {
    use pphw_ir::pattern::{GbfBody, Pattern};
    match p {
        Pattern::Map(m) => dce_block_with(&mut m.body.body, &BTreeSet::new()),
        Pattern::FlatMap(fm) => dce_block_with(&mut fm.body.body, &BTreeSet::new()),
        Pattern::MultiFold(mf) => {
            let mut ext: BTreeSet<Sym> = BTreeSet::new();
            for u in &mut mf.updates {
                dce_block_with(&mut u.body, &BTreeSet::new());
                for e in &u.loc {
                    ext.extend(e.syms());
                }
                ext.extend(u.body.free_syms());
            }
            for c in mf.combines.iter_mut().flatten() {
                dce_block_with(&mut c.body, &BTreeSet::new());
            }
            dce_block_with(&mut mf.pre, &ext);
        }
        Pattern::GroupByFold(g) => {
            let mut ext: BTreeSet<Sym> = BTreeSet::new();
            match &mut g.body {
                GbfBody::Element { key, update } => {
                    dce_block_with(&mut update.body, &BTreeSet::new());
                    ext.extend(key.syms());
                    for e in &update.loc {
                        ext.extend(e.syms());
                    }
                    ext.extend(update.body.free_syms());
                }
                GbfBody::Merge { dict } => {
                    ext.insert(*dict);
                }
            }
            dce_block_with(&mut g.combine.body, &BTreeSet::new());
            dce_block_with(&mut g.pre, &ext);
        }
    }
}

fn stmt_uses(stmt: &pphw_ir::block::Stmt) -> Vec<Sym> {
    let b = Block {
        stmts: vec![stmt.clone()],
        result: vec![],
    };
    b.free_syms()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::block::{Op, Stmt};
    use pphw_ir::expr::Expr;
    use pphw_ir::types::{SymTable, Type};

    #[test]
    fn removes_unused_stmt() {
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let mut block = Block::new();
        block.push(a, Op::Expr(Expr::f32(1.0)));
        block.push(b, Op::Expr(Expr::f32(2.0)));
        block.result = vec![b];
        dce_block(&mut block);
        assert_eq!(block.stmts.len(), 1);
        assert_eq!(block.stmts[0].sym(), b);
    }

    #[test]
    fn keeps_transitive_deps() {
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let c = syms.fresh("c", Type::f32());
        let mut block = Block::new();
        block.push(a, Op::Expr(Expr::f32(1.0)));
        block.push(b, Op::Expr(Expr::var(a).add(Expr::f32(1.0))));
        block.push(c, Op::Expr(Expr::var(b).add(Expr::f32(1.0))));
        block.result = vec![c];
        dce_block(&mut block);
        assert_eq!(block.stmts.len(), 3);
    }

    #[test]
    fn multi_output_stmt_kept_if_any_used() {
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let mut block = Block::new();
        block.stmts.push(Stmt {
            syms: vec![a, b],
            op: Op::Expr(Expr::f32(0.0)), // stand-in for a 2-output op
        });
        block.result = vec![a];
        dce_block(&mut block);
        assert_eq!(block.stmts.len(), 1);
    }
}
