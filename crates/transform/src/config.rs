//! Tiling configuration.

use std::collections::BTreeMap;
use std::fmt;

use pphw_ir::size::{Size, SizeEnv};

/// Configuration for the tiling transformation.
///
/// The paper requires the user to specify tile sizes for every dimension
/// that should be tiled (§4, *Discussion*); dimensions without an entry are
/// left untiled. Concrete dimension values are needed to check
/// divisibility and to drive the split-and-interchange heuristic
/// ("intermediate result … statically known to fit on the FPGA").
#[derive(Debug, Clone)]
pub struct TileConfig {
    /// Tile size per symbolic dimension name.
    pub tile_sizes: BTreeMap<String, i64>,
    /// Concrete values of the symbolic dimensions.
    pub sizes: SizeEnv,
    /// On-chip memory budget in bytes, used by the split heuristic and
    /// whole-tensor preloading decisions.
    pub on_chip_budget_bytes: u64,
}

impl TileConfig {
    /// Creates a configuration from `(dim, tile)` pairs and concrete sizes.
    pub fn new(tiles: &[(&str, i64)], sizes: &[(&str, i64)]) -> Self {
        TileConfig {
            tile_sizes: tiles.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            sizes: Size::env(sizes),
            on_chip_budget_bytes: 6 * 1024 * 1024, // ~Stratix V class on-chip RAM
        }
    }

    /// Sets the on-chip budget.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.on_chip_budget_bytes = bytes;
        self
    }

    /// Returns the tile size for a domain extent, if that extent is a
    /// tileable symbolic dimension: there is a configured tile size, the
    /// tile is smaller than the concrete dimension value, and it divides it
    /// evenly.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::Indivisible`] when a configured tile does not
    /// divide the dimension.
    pub fn tile_for(&self, size: &Size) -> Result<Option<i64>, TileError> {
        let Size::Var(v) = size else {
            return Ok(None);
        };
        let Some(&b) = self.tile_sizes.get(v) else {
            return Ok(None);
        };
        let Some(&dim) = self.sizes.get(v) else {
            return Err(TileError::UnknownSize(v.clone()));
        };
        if b <= 0 {
            return Err(TileError::InvalidTile {
                dim: v.clone(),
                tile: b,
            });
        }
        if b >= dim {
            return Ok(None); // tile covers the whole dimension: nothing to do
        }
        if dim % b != 0 {
            return Err(TileError::Indivisible {
                dim: v.clone(),
                value: dim,
                tile: b,
            });
        }
        Ok(Some(b))
    }
}

/// Errors produced by the tiling transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// A configured tile size does not evenly divide the dimension.
    Indivisible { dim: String, value: i64, tile: i64 },
    /// A configured tile size is zero or negative.
    InvalidTile { dim: String, tile: i64 },
    /// A tiled dimension has no concrete size.
    UnknownSize(String),
    /// A write-once `MultiFold` could not be tiled because an accumulator
    /// dimension is not tracked one-to-one by a tiled domain index.
    UntrackedWriteOnce { pattern: String },
    /// The program uses a structure the tiling passes do not support.
    Unsupported(String),
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::Indivisible { dim, value, tile } => {
                write!(f, "tile size {tile} does not divide dimension {dim} = {value}")
            }
            TileError::InvalidTile { dim, tile } => {
                write!(f, "tile size {tile} for dimension {dim} must be positive")
            }
            TileError::UnknownSize(v) => write!(f, "no concrete size for dimension `{v}`"),
            TileError::UntrackedWriteOnce { pattern } => write!(
                f,
                "cannot tile write-once {pattern}: accumulator dimension not tracked by a tiled index"
            ),
            TileError::Unsupported(m) => write!(f, "unsupported program structure: {m}"),
        }
    }
}

impl std::error::Error for TileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_for_configured_var() {
        let cfg = TileConfig::new(&[("n", 16)], &[("n", 64)]);
        assert_eq!(cfg.tile_for(&Size::var("n")), Ok(Some(16)));
        assert_eq!(cfg.tile_for(&Size::var("m")), Ok(None));
        assert_eq!(cfg.tile_for(&Size::from(8)), Ok(None));
    }

    #[test]
    fn tile_covering_whole_dim_is_skipped() {
        let cfg = TileConfig::new(&[("n", 64)], &[("n", 64)]);
        assert_eq!(cfg.tile_for(&Size::var("n")), Ok(None));
    }

    #[test]
    fn indivisible_tile_errors() {
        let cfg = TileConfig::new(&[("n", 24)], &[("n", 64)]);
        assert!(matches!(
            cfg.tile_for(&Size::var("n")),
            Err(TileError::Indivisible { .. })
        ));
    }

    #[test]
    fn unknown_size_errors() {
        let cfg = TileConfig::new(&[("n", 8)], &[]);
        assert!(matches!(
            cfg.tile_for(&Size::var("n")),
            Err(TileError::UnknownSize(_))
        ));
    }
}
