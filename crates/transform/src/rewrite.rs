//! Block rewriting utilities: expression substitution, alpha-renaming, and
//! lambda instantiation.
//!
//! Transformations duplicate and relocate pattern bodies; these helpers
//! keep symbol hygiene (every binding unique program-wide) intact.

use std::collections::BTreeMap;

use pphw_ir::block::{Block, Op, SliceDim, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::{GbfBody, Lambda, Pattern};
use pphw_ir::types::{Sym, SymTable};

/// Applies `f` to every expression tree inside `block`, recursively through
/// nested patterns, slice/copy dimensions, update locations, keys and
/// guards.
pub fn map_exprs(block: &mut Block, f: &mut impl FnMut(&Expr) -> Expr) {
    for stmt in &mut block.stmts {
        map_exprs_op(&mut stmt.op, f);
    }
}

fn map_exprs_op(op: &mut Op, f: &mut impl FnMut(&Expr) -> Expr) {
    match op {
        Op::Expr(e) => *e = f(e),
        Op::VarVec(items) => {
            for it in items {
                if let Some(g) = &mut it.guard {
                    *g = f(g);
                }
                it.value = f(&it.value);
            }
        }
        Op::Slice(s) => map_exprs_dims(&mut s.dims, f),
        Op::Copy(c) => map_exprs_dims(&mut c.dims, f),
        Op::Pattern(p) => map_exprs_pattern(p, f),
    }
}

fn map_exprs_dims(dims: &mut [SliceDim], f: &mut impl FnMut(&Expr) -> Expr) {
    for d in dims {
        match d {
            SliceDim::Point(e) => *e = f(e),
            SliceDim::Window { start, .. } => *start = f(start),
            SliceDim::Full => {}
        }
    }
}

fn map_exprs_pattern(p: &mut Pattern, f: &mut impl FnMut(&Expr) -> Expr) {
    match p {
        Pattern::Map(m) => map_exprs(&mut m.body.body, f),
        Pattern::MultiFold(mf) => {
            map_exprs(&mut mf.pre, f);
            for u in &mut mf.updates {
                for e in &mut u.loc {
                    *e = f(e);
                }
                map_exprs(&mut u.body, f);
            }
            for c in mf.combines.iter_mut().flatten() {
                map_exprs(&mut c.body, f);
            }
        }
        Pattern::FlatMap(fm) => map_exprs(&mut fm.body.body, f),
        Pattern::GroupByFold(g) => {
            map_exprs(&mut g.pre, f);
            match &mut g.body {
                GbfBody::Element { key, update } => {
                    *key = f(key);
                    for e in &mut update.loc {
                        *e = f(e);
                    }
                    map_exprs(&mut update.body, f);
                }
                GbfBody::Merge { .. } => {}
            }
            map_exprs(&mut g.combine.body, f);
        }
    }
}

/// Substitutes occurrences of variables per `subst` (as [`Expr::Var`]
/// replacements) throughout the block.
pub fn subst_vars(block: &mut Block, subst: &BTreeMap<Sym, Expr>) {
    map_exprs(block, &mut |e| e.subst_vars(&|s| subst.get(&s).cloned()));
}

/// Renames *symbol occurrences* (both variables and tensor references,
/// including statement bindings, pattern parameters, block results, slice
/// sources, and merge dictionaries) according to `map`. Symbols absent from
/// the map are left unchanged.
pub fn rename_syms(block: &mut Block, map: &BTreeMap<Sym, Sym>) {
    let get = |s: Sym| map.get(&s).copied().unwrap_or(s);
    for stmt in &mut block.stmts {
        for s in &mut stmt.syms {
            *s = get(*s);
        }
        rename_syms_op(&mut stmt.op, map);
    }
    for s in &mut block.result {
        *s = get(*s);
    }
    map_exprs(block, &mut |e| e.rename_syms(&get));
}

fn rename_syms_op(op: &mut Op, map: &BTreeMap<Sym, Sym>) {
    let get = |s: Sym| map.get(&s).copied().unwrap_or(s);
    match op {
        Op::Expr(_) | Op::VarVec(_) => {}
        Op::Slice(s) => s.tensor = get(s.tensor),
        Op::Copy(c) => c.tensor = get(c.tensor),
        Op::Pattern(p) => match p {
            Pattern::Map(m) => {
                for s in &mut m.body.params {
                    *s = get(*s);
                }
                rename_syms(&mut m.body.body, map);
            }
            Pattern::MultiFold(mf) => {
                for s in &mut mf.idx {
                    *s = get(*s);
                }
                rename_syms(&mut mf.pre, map);
                for u in &mut mf.updates {
                    u.acc_param = get(u.acc_param);
                    rename_syms(&mut u.body, map);
                }
                for c in mf.combines.iter_mut().flatten() {
                    for s in &mut c.params {
                        *s = get(*s);
                    }
                    rename_syms(&mut c.body, map);
                }
            }
            Pattern::FlatMap(fm) => {
                for s in &mut fm.body.params {
                    *s = get(*s);
                }
                rename_syms(&mut fm.body.body, map);
            }
            Pattern::GroupByFold(g) => {
                g.idx = get(g.idx);
                rename_syms(&mut g.pre, map);
                match &mut g.body {
                    GbfBody::Element { update, .. } => {
                        update.acc_param = get(update.acc_param);
                        rename_syms(&mut update.body, map);
                    }
                    GbfBody::Merge { dict } => *dict = get(*dict),
                }
                for s in &mut g.combine.params {
                    *s = get(*s);
                }
                rename_syms(&mut g.combine.body, map);
            }
        },
    }
}

/// Deep-clones `block` with fresh symbols for everything it binds
/// (statements, pattern parameters). Free symbols are untouched. Returns
/// the clone and the old→new symbol mapping.
pub fn alpha_rename(block: &Block, syms: &mut SymTable) -> (Block, BTreeMap<Sym, Sym>) {
    let mut clone = block.clone();
    let mut map = BTreeMap::new();
    for old in block.bound_syms() {
        let info = syms.info(old).clone();
        let fresh = syms.fresh(info.name, info.ty);
        map.insert(old, fresh);
    }
    rename_syms(&mut clone, &map);
    (clone, map)
}

/// Instantiates a scalar lambda on argument expressions: alpha-renames the
/// body, substitutes the parameters, appends the statements to `out`, and
/// returns the expression for the result.
///
/// # Panics
///
/// Panics if the argument count mismatches the lambda arity.
pub fn instantiate_lambda(
    lambda: &Lambda,
    args: &[Expr],
    syms: &mut SymTable,
    out: &mut Vec<Stmt>,
) -> Expr {
    assert_eq!(lambda.params.len(), args.len(), "lambda arity mismatch");
    let (mut body, map) = alpha_rename(&lambda.body, syms);
    let subst: BTreeMap<Sym, Expr> = lambda
        .params
        .iter()
        .zip(args)
        .map(|(p, a)| (*p, a.clone()))
        .collect();
    subst_vars(&mut body, &subst);
    let result = map
        .get(&lambda.body.result_sym())
        .copied()
        .unwrap_or(lambda.body.result_sym());
    out.extend(body.stmts);
    Expr::Var(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::block::Op;
    use pphw_ir::types::Type;

    fn simple_lambda(syms: &mut SymTable) -> Lambda {
        // (a, b) => a + b
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let r = syms.fresh("r", Type::f32());
        let mut body = Block::new();
        body.push(r, Op::Expr(Expr::var(a).add(Expr::var(b))));
        body.result = vec![r];
        Lambda::new(vec![a, b], body)
    }

    #[test]
    fn instantiate_lambda_substitutes_args() {
        let mut syms = SymTable::new();
        let l = simple_lambda(&mut syms);
        let mut out = Vec::new();
        let r = instantiate_lambda(&l, &[Expr::int(1), Expr::int(2)], &mut syms, &mut out);
        assert_eq!(out.len(), 1);
        match &out[0].op {
            Op::Expr(e) => assert_eq!(*e, Expr::int(1).add(Expr::int(2))),
            other => panic!("{other:?}"),
        }
        // The returned expression references the freshly-bound result.
        assert_eq!(r, Expr::Var(out[0].sym()));
    }

    #[test]
    fn alpha_rename_keeps_free_syms() {
        let mut syms = SymTable::new();
        let free = syms.fresh("x", Type::f32());
        let bound = syms.fresh("y", Type::f32());
        let mut block = Block::new();
        block.push(bound, Op::Expr(Expr::var(free).add(Expr::f32(1.0))));
        block.result = vec![bound];
        let (clone, map) = alpha_rename(&block, &mut syms);
        let new_bound = map[&bound];
        assert_ne!(new_bound, bound);
        assert_eq!(clone.result, vec![new_bound]);
        assert_eq!(clone.free_syms(), vec![free]);
    }

    #[test]
    fn subst_vars_rewrites_nested() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::f32());
        let y = syms.fresh("y", Type::f32());
        let mut block = Block::new();
        block.push(y, Op::Expr(Expr::var(x).mul(Expr::var(x))));
        block.result = vec![y];
        let mut subst = BTreeMap::new();
        subst.insert(x, Expr::f32(3.0));
        subst_vars(&mut block, &subst);
        match &block.stmts[0].op {
            Op::Expr(e) => assert_eq!(*e, Expr::f32(3.0).mul(Expr::f32(3.0))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rename_syms_covers_results() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::f32());
        let y = syms.fresh("y", Type::f32());
        let mut block = Block::new();
        block.push(y, Op::Expr(Expr::var(x)));
        block.result = vec![y];
        let z = syms.fresh("z", Type::f32());
        let mut map = BTreeMap::new();
        map.insert(y, z);
        rename_syms(&mut block, &map);
        assert_eq!(block.result, vec![z]);
        assert_eq!(block.stmts[0].sym(), z);
    }
}
