//! The full tiling pipeline.
//!
//! Composes the passes in the order the paper describes (§4): strip mining
//! (Table 1), the split heuristic for imperfect nests, pattern interchange,
//! tile-copy insertion, then code motion / CSE / DCE cleanups. After every
//! pass the program is re-checked via [`check_pass`] — structural
//! validation always, plus the driver-installed deep verifier in debug/CI
//! builds (see [`crate::pipeline`]) — so a miscompile is attributed to the
//! pass that introduced it.

use pphw_ir::program::Program;

use crate::config::{TileConfig, TileError};
use crate::copies::insert_copies;
use crate::cse::cse_program;
use crate::dce::dce_program;
use crate::interchange::{interchange_program, split_multifolds};
use crate::motion::hoist_program;
use crate::pipeline::check_pass;
use crate::strip_mine::strip_mine_program;

/// Runs the complete tiling pipeline on a (fused) PPL program.
///
/// # Errors
///
/// Returns a [`TileError`] if strip mining fails (indivisible tile size or
/// untileable write-once pattern), or if any pass produces a program the
/// per-pass verifier rejects.
pub fn tile_program(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let p = strip_mine_program(prog, cfg)?;
    check_pass(&p, "strip_mine")?;
    let p = split_multifolds(&p, cfg);
    check_pass(&p, "split_multifolds")?;
    let p = interchange_program(&p, cfg);
    check_pass(&p, "interchange")?;
    finish(p, cfg)
}

/// Runs only strip mining plus copies and cleanups (no interchange) —
/// the paper's "tiling without interchange" comparison point (Figure 5a).
///
/// # Errors
///
/// Returns a [`TileError`] if strip mining fails or a pass produces a
/// program the per-pass verifier rejects.
pub fn tile_program_no_interchange(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let p = strip_mine_program(prog, cfg)?;
    check_pass(&p, "strip_mine")?;
    finish(p, cfg)
}

/// The shared tail of both pipelines: copies, hoisting, CSE, DCE, each
/// followed by the per-pass check.
fn finish(p: Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let p = insert_copies(&p, cfg);
    check_pass(&p, "insert_copies")?;
    let p = hoist_program(&p);
    check_pass(&p, "hoist")?;
    let p = cse_program(&p);
    check_pass(&p, "cse")?;
    let p = dce_program(&p);
    check_pass(&p, "dce")?;
    Ok(p)
}
