//! The full tiling pipeline.
//!
//! Composes the passes in the order the paper describes (§4): strip mining
//! (Table 1), the split heuristic for imperfect nests, pattern interchange,
//! tile-copy insertion, then code motion / CSE / DCE cleanups.

use pphw_ir::program::Program;

use crate::config::{TileConfig, TileError};
use crate::copies::insert_copies;
use crate::cse::cse_program;
use crate::dce::dce_program;
use crate::interchange::{interchange_program, split_multifolds};
use crate::motion::hoist_program;
use crate::strip_mine::strip_mine_program;

/// Runs the complete tiling pipeline on a (fused) PPL program.
///
/// # Errors
///
/// Returns a [`TileError`] if strip mining fails (indivisible tile size or
/// untileable write-once pattern).
pub fn tile_program(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let p = strip_mine_program(prog, cfg)?;
    let p = split_multifolds(&p, cfg);
    let p = interchange_program(&p, cfg);
    let p = insert_copies(&p, cfg);
    let p = hoist_program(&p);
    let p = cse_program(&p);
    let p = dce_program(&p);
    validated(p)
}

/// Runs only strip mining plus copies and cleanups (no interchange) —
/// the paper's "tiling without interchange" comparison point (Figure 5a).
///
/// # Errors
///
/// Returns a [`TileError`] if strip mining fails.
pub fn tile_program_no_interchange(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let p = strip_mine_program(prog, cfg)?;
    let p = insert_copies(&p, cfg);
    let p = hoist_program(&p);
    let p = cse_program(&p);
    let p = dce_program(&p);
    validated(p)
}

/// Post-condition check: a structurally invalid tiled program (possible
/// for inputs outside what the passes support) is an error, not a panic in
/// whatever consumes it next.
fn validated(p: Program) -> Result<Program, TileError> {
    match p.validate() {
        Ok(()) => Ok(p),
        Err(e) => Err(TileError::Unsupported(format!(
            "tiled program failed validation: {e}"
        ))),
    }
}
