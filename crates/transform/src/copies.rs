//! Tile-copy insertion.
//!
//! After strip mining and interchange, reads of DRAM-resident tensors
//! inside tiled patterns have statically predictable windows: each index is
//! an affine sum of *strided* outer indices (window start) and at most one
//! unit-coefficient *local* index (window extent). This pass materializes
//! those windows as explicit [`CopyOp`]s — the paper's `x.copy(b + ii, *)`
//! — placed in the pre-block of the pattern binding the deepest strided
//! index, and rewrites all covered reads and slices to target the tile.
//!
//! Tensors whose every use is local/static (no strided start anywhere) are
//! *preloaded* whole at the top level when they fit the on-chip budget —
//! this is how k-means' centroid array becomes the preloaded buffer of
//! Figure 6 (Pipe 0). Tensors with any data-dependent access are left
//! untouched; hardware generation gives them caches instead.

use std::collections::{BTreeMap, BTreeSet};

use pphw_ir::access::{classify_index, IndexClass};
use pphw_ir::block::{Block, CopyOp, Op, SliceDim, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::Pattern;
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_ir::types::{Sym, SymTable, Type};

use crate::config::TileConfig;

/// Per-symbol index info: binding depth and extent.
#[derive(Debug, Clone)]
struct IdxInfo {
    level: usize,
    extent: Size,
}

type Ctl = BTreeMap<Sym, IdxInfo>;

/// One dimension of a use signature.
#[derive(Debug, Clone, PartialEq)]
enum DimSig {
    /// Window starting at a strided-index expression with a fixed extent.
    Window { start: Expr, len: Size },
    /// The whole dimension (purely local/static access).
    Full,
}

#[derive(Debug, Clone)]
struct TensorPlan {
    tensor: Sym,
    dims: Vec<DimSig>,
    /// Deepest level among start terms (0 = top-level preload).
    level: usize,
}

/// Inserts tile copies throughout the program; see the module docs.
pub fn insert_copies(prog: &Program, cfg: &TileConfig) -> Program {
    let mut out = prog.clone();
    let mut body = std::mem::take(&mut out.body);

    // DRAM-resident tensors: inputs plus top-level bound tensors.
    let mut resident: BTreeSet<Sym> = out
        .inputs
        .iter()
        .copied()
        .filter(|s| matches!(out.syms.ty(*s), Type::Tensor { .. }))
        .collect();
    for stmt in &body.stmts {
        for s in &stmt.syms {
            if matches!(out.syms.ty(*s), Type::Tensor { .. }) {
                resident.insert(*s);
            }
        }
    }

    let mut st = St {
        syms: &mut out.syms,
        cfg,
        resident,
        budget: cfg.on_chip_budget_bytes as i64,
    };

    // Top-level preloads (level 0).
    let plans = analyze_block(&body, &Ctl::new(), 1, &st);
    let preloads: Vec<TensorPlan> = plans.into_iter().filter(|p| p.level == 0).collect();
    for plan in preloads {
        apply_plan_at_top(&mut body, &plan, &mut st);
    }

    // Pattern-level copies.
    walk_block(&mut body, 1, &Ctl::new(), &mut st);

    out.body = body;
    out
}

struct St<'a> {
    syms: &'a mut SymTable,
    cfg: &'a TileConfig,
    resident: BTreeSet<Sym>,
    budget: i64,
}

impl St<'_> {
    fn tile_bytes(&self, tensor: Sym, dims: &[DimSig]) -> Option<i64> {
        let ty = self.syms.ty(tensor).clone();
        let Type::Tensor { elem, shape } = ty else {
            return None;
        };
        let mut elems: i64 = 1;
        for (d, full) in dims.iter().zip(&shape) {
            let len = match d {
                DimSig::Window { len, .. } => len.clone(),
                DimSig::Full => full.clone(),
            };
            elems = elems.checked_mul(len.eval(&self.cfg.sizes).ok()?)?;
        }
        Some(elems * elem.bytes() as i64)
    }
}

fn walk_block(block: &mut Block, level: usize, ctl: &Ctl, st: &mut St<'_>) {
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            walk_pattern(p, level, ctl, st);
        }
    }
}

fn pattern_indices(p: &Pattern) -> Vec<(Sym, Size)> {
    match p {
        Pattern::Map(m) => m
            .body
            .params
            .iter()
            .copied()
            .zip(m.domain.iter().cloned())
            .collect(),
        Pattern::MultiFold(mf) => mf
            .idx
            .iter()
            .copied()
            .zip(mf.domain.iter().cloned())
            .collect(),
        Pattern::FlatMap(fm) => vec![(fm.body.params[0], fm.domain.clone())],
        Pattern::GroupByFold(g) => vec![(g.idx, g.domain.clone())],
    }
}

fn walk_pattern(p: &mut Pattern, level: usize, ctl: &Ctl, st: &mut St<'_>) {
    let mut ctl2 = ctl.clone();
    for (sym, extent) in pattern_indices(p) {
        ctl2.insert(sym, IdxInfo { level, extent });
    }
    // Find copies that belong at this pattern's level, merging uses across
    // all of the pattern's blocks so inconsistent windows are rejected.
    let mut uses = UseMap::new();
    for b in p.child_blocks() {
        collect_uses(b, &ctl2, level + 1, st, &mut uses);
    }
    let mut plans = merge_uses(uses);
    plans.retain(|pl| pl.level == level);
    for plan in plans {
        apply_plan_at_pattern(p, &plan, &ctl2, st);
    }
    // Recurse.
    for b in p.child_blocks_mut() {
        walk_block(b, level + 1, &ctl2, st);
    }
}

type UseMap = BTreeMap<Sym, Vec<Option<(Vec<DimSig>, usize)>>>;

/// Collects tensor-use plans for the subtree rooted at `block`, merging
/// uses per tensor. Returns one plan per copyable tensor.
fn analyze_block(block: &Block, ctl: &Ctl, level: usize, st: &St<'_>) -> Vec<TensorPlan> {
    let mut uses = UseMap::new();
    collect_uses(block, ctl, level, st, &mut uses);
    merge_uses(uses)
}

/// Merges collected uses per tensor into copy plans; tensors with opaque
/// or inconsistent uses are dropped.
fn merge_uses(uses: UseMap) -> Vec<TensorPlan> {
    let mut plans = Vec::new();
    'tensors: for (tensor, sigs) in uses {
        let mut merged: Option<(Vec<DimSig>, usize)> = None;
        for sig in sigs {
            let Some((dims, lvl)) = sig else {
                continue 'tensors; // an opaque use poisons the tensor
            };
            match &mut merged {
                None => merged = Some((dims, lvl)),
                Some((mdims, mlvl)) => {
                    if *mdims != dims {
                        continue 'tensors; // inconsistent windows
                    }
                    *mlvl = (*mlvl).max(lvl);
                }
            }
        }
        if let Some((dims, lvl)) = merged {
            // Only worth copying when something is windowed, or the whole
            // tensor is being preloaded at top level.
            let windowed = dims.iter().any(|d| matches!(d, DimSig::Window { .. }));
            if windowed || lvl == 0 {
                plans.push(TensorPlan {
                    tensor,
                    dims,
                    level: lvl,
                });
            }
        }
    }
    plans
}

fn collect_uses(block: &Block, ctl: &Ctl, level: usize, st: &St<'_>, uses: &mut UseMap) {
    for stmt in &block.stmts {
        match &stmt.op {
            Op::Expr(e) => collect_expr_uses(e, ctl, st, uses),
            Op::VarVec(items) => {
                for it in items {
                    if let Some(g) = &it.guard {
                        collect_expr_uses(g, ctl, st, uses);
                    }
                    collect_expr_uses(&it.value, ctl, st, uses);
                }
            }
            Op::Slice(s) => {
                if st.resident.contains(&s.tensor) {
                    let sig = slice_sig(&s.dims, ctl);
                    uses.entry(s.tensor).or_default().push(sig);
                }
            }
            Op::Copy(c) => {
                if st.resident.contains(&c.tensor) {
                    // An existing explicit copy: leave this tensor alone.
                    uses.entry(c.tensor).or_default().push(None);
                }
            }
            Op::Pattern(p) => {
                let mut ctl2 = ctl.clone();
                for (sym, extent) in pattern_indices(p) {
                    ctl2.insert(sym, IdxInfo { level, extent });
                }
                if let Pattern::MultiFold(mf) = p {
                    for u in &mf.updates {
                        for e in &u.loc {
                            collect_expr_uses(e, &ctl2, st, uses);
                        }
                    }
                }
                for b in p.child_blocks() {
                    collect_uses(b, &ctl2, level + 1, st, uses);
                }
            }
        }
    }
}

fn collect_expr_uses(e: &Expr, ctl: &Ctl, st: &St<'_>, uses: &mut UseMap) {
    e.visit(&mut |sub| {
        if let Expr::Read { tensor, index } = sub {
            if st.resident.contains(tensor) {
                let sig = index_sig(index, ctl);
                uses.entry(*tensor).or_default().push(sig);
            }
        }
    });
}

/// Computes the per-dimension signature of an element read.
fn index_sig(index: &[Expr], ctl: &Ctl) -> Option<(Vec<DimSig>, usize)> {
    let mut dims = Vec::with_capacity(index.len());
    let mut level = 0usize;
    for e in index {
        let (sig, lvl) = dim_sig(e, ctl)?;
        level = level.max(lvl);
        dims.push(sig);
    }
    Some((dims, level))
}

fn slice_sig(dims: &[SliceDim], ctl: &Ctl) -> Option<(Vec<DimSig>, usize)> {
    let mut out = Vec::with_capacity(dims.len());
    let mut level = 0usize;
    for d in dims {
        match d {
            SliceDim::Full => out.push(DimSig::Full),
            SliceDim::Point(e) => {
                let (sig, lvl) = dim_sig(e, ctl)?;
                level = level.max(lvl);
                out.push(sig);
            }
            SliceDim::Window { .. } => return None, // pre-existing window: leave alone
        }
    }
    Some((out, level))
}

/// Splits one index expression into (window signature, deepest start level).
fn dim_sig(e: &Expr, ctl: &Ctl) -> Option<(DimSig, usize)> {
    let control: BTreeSet<Sym> = ctl.keys().copied().collect();
    match classify_index(e, &control) {
        IndexClass::Affine { terms, offset } => {
            let mut start_terms: Vec<(Sym, Size)> = Vec::new();
            let mut local: Option<Sym> = None;
            for (sym, coeff) in terms {
                if coeff == Size::Const(1) {
                    if local.is_some() {
                        return None; // two local terms: not a simple window
                    }
                    local = Some(sym);
                } else {
                    start_terms.push((sym, coeff));
                }
            }
            if start_terms.is_empty() && offset == Size::Const(0) {
                // Purely local: the whole dimension.
                return Some((DimSig::Full, 0));
            }
            let mut start = Expr::SizeOf(offset);
            let mut level = 0usize;
            for (sym, coeff) in start_terms {
                level = level.max(ctl.get(&sym).map(|i| i.level).unwrap_or(0));
                start = start.add(Expr::var(sym).mul(Expr::SizeOf(coeff)));
            }
            let len = match local {
                Some(sym) => ctl.get(&sym)?.extent.clone(),
                None => Size::Const(1),
            };
            Some((
                DimSig::Window {
                    start: simplify_start(start),
                    len,
                },
                level,
            ))
        }
        _ => None,
    }
}

fn simplify_start(e: Expr) -> Expr {
    // Drop the leading `0 +` produced by the constructor above.
    match e {
        Expr::Bin(pphw_ir::expr::BinOp::Add, a, b) => match *a {
            Expr::SizeOf(Size::Const(0)) => simplify_start(*b),
            other => Expr::Bin(
                pphw_ir::expr::BinOp::Add,
                Box::new(simplify_start(other)),
                Box::new(simplify_start(*b)),
            ),
        },
        other => other,
    }
}

/// The local remainder of an index expression after removing the window
/// start: the unit-coefficient term (or 0).
fn local_part(e: &Expr, ctl: &Ctl) -> Expr {
    let control: BTreeSet<Sym> = ctl.keys().copied().collect();
    match classify_index(e, &control) {
        IndexClass::Affine { terms, .. } | IndexClass::AffineDynamic { terms } => {
            for (sym, coeff) in terms {
                if coeff == Size::Const(1) {
                    return Expr::var(sym);
                }
            }
            Expr::int(0)
        }
        IndexClass::NonAffine => e.clone(),
    }
}

fn copy_stmt(plan: &TensorPlan, st: &mut St<'_>) -> Option<(Stmt, Sym)> {
    let bytes = st.tile_bytes(plan.tensor, &plan.dims)?;
    if bytes > st.budget {
        return None;
    }
    st.budget -= bytes;
    let dims: Vec<SliceDim> = plan
        .dims
        .iter()
        .map(|d| match d {
            DimSig::Full => SliceDim::Full,
            DimSig::Window { start, len } => SliceDim::Window {
                start: start.clone(),
                len: len.clone(),
            },
        })
        .collect();
    let ty = pphw_ir::builder::slice_result_type(st.syms.ty(plan.tensor), &dims);
    let name = format!("{}Tile", st.syms.info(plan.tensor).name.clone());
    let tile = st.syms.fresh(name, ty);
    Some((
        Stmt::new(
            tile,
            Op::Copy(CopyOp {
                tensor: plan.tensor,
                dims,
                reuse: 1,
            }),
        ),
        tile,
    ))
}

fn apply_plan_at_pattern(p: &mut Pattern, plan: &TensorPlan, ancestors: &Ctl, st: &mut St<'_>) {
    let Some((stmt, tile)) = copy_stmt(plan, st) else {
        return;
    };
    // Rewrite all uses in the subtree first. The control map must cover
    // ancestor indices too so window starts are recognized as non-local.
    let mut ctl = full_ctl(p);
    for (k, v) in ancestors {
        ctl.entry(*k).or_insert_with(|| v.clone());
    }
    for b in p.child_blocks_mut() {
        rewrite_uses(b, plan, tile, &ctl);
    }
    // Insert the copy at the head of the pattern's entry block.
    match p {
        Pattern::MultiFold(mf) => mf.pre.stmts.insert(0, stmt),
        Pattern::GroupByFold(g) => g.pre.stmts.insert(0, stmt),
        Pattern::Map(m) => m.body.body.stmts.insert(0, stmt),
        Pattern::FlatMap(fm) => fm.body.body.stmts.insert(0, stmt),
    }
}

fn apply_plan_at_top(body: &mut Block, plan: &TensorPlan, st: &mut St<'_>) {
    let Some((stmt, tile)) = copy_stmt(plan, st) else {
        return;
    };
    // Rewrite uses inside every pattern (the preload dominates them all),
    // then insert after the binding statement (or at the head for inputs).
    let ctl = Ctl::new();
    let pos = body
        .stmts
        .iter()
        .position(|s| s.syms.contains(&plan.tensor))
        .map(|i| i + 1)
        .unwrap_or(0);
    for s in body.stmts.iter_mut().skip(pos) {
        if let Op::Pattern(p) = &mut s.op {
            let pctl = full_ctl(p);
            let _ = &ctl;
            for b in p.child_blocks_mut() {
                rewrite_uses(b, plan, tile, &pctl);
            }
        }
    }
    body.stmts.insert(pos, stmt);
}

/// Control map covering the pattern's own indices and all nested ones.
fn full_ctl(p: &Pattern) -> Ctl {
    fn add_pattern(p: &Pattern, level: usize, ctl: &mut Ctl) {
        for (sym, extent) in pattern_indices(p) {
            ctl.insert(sym, IdxInfo { level, extent });
        }
        for b in p.child_blocks() {
            add_block(b, level + 1, ctl);
        }
    }
    fn add_block(b: &Block, level: usize, ctl: &mut Ctl) {
        for stmt in &b.stmts {
            if let Op::Pattern(q) = &stmt.op {
                add_pattern(q, level, ctl);
            }
        }
    }
    let mut ctl = Ctl::new();
    add_pattern(p, 0, &mut ctl);
    ctl
}

/// Rewrites reads/slices of the planned tensor to target the tile.
fn rewrite_uses(block: &mut Block, plan: &TensorPlan, tile: Sym, ctl: &Ctl) {
    for stmt in &mut block.stmts {
        match &mut stmt.op {
            Op::Slice(s) if s.tensor == plan.tensor => {
                s.tensor = tile;
                for (d, sig) in s.dims.iter_mut().zip(&plan.dims) {
                    if let (SliceDim::Point(e), DimSig::Window { .. }) = (&d.clone(), sig) {
                        *d = SliceDim::Point(local_part(e, ctl));
                    }
                }
            }
            Op::Pattern(p) => {
                for b in p.child_blocks_mut() {
                    rewrite_uses(b, plan, tile, ctl);
                }
                if let Pattern::MultiFold(mf) = p {
                    for u in &mut mf.updates {
                        for e in &mut u.loc {
                            *e = rewrite_expr(e, plan, tile, ctl);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    crate::rewrite::map_exprs(block, &mut |e| rewrite_expr(e, plan, tile, ctl));
}

fn rewrite_expr(e: &Expr, plan: &TensorPlan, tile: Sym, ctl: &Ctl) -> Expr {
    e.map(&mut |sub| match sub {
        Expr::Read { tensor, index } if tensor == plan.tensor => {
            let new_index: Vec<Expr> = index
                .iter()
                .zip(&plan.dims)
                .map(|(ie, sig)| match sig {
                    DimSig::Full => ie.clone(),
                    DimSig::Window { .. } => local_part(ie, ctl),
                })
                .collect();
            Expr::Read {
                tensor: tile,
                index: new_index,
            }
        }
        other => other,
    })
}
