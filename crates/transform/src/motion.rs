//! Code motion: hoisting loop-invariant statements out of pattern bodies.
//!
//! A statement in a pattern's entry block that does not depend on the
//! pattern's parameters (or on anything bound after them) computes the same
//! value in every iteration; it is moved in front of the pattern. The pass
//! iterates to a fixpoint so statements can bubble up several levels —
//! this is what lets duplicate tile copies meet in one block where CSE can
//! merge them.

use std::collections::BTreeSet;

use pphw_ir::block::{Block, Op, Stmt};
use pphw_ir::pattern::Pattern;
use pphw_ir::program::Program;
use pphw_ir::types::Sym;

/// Hoists invariant statements until fixpoint.
pub fn hoist_program(prog: &Program) -> Program {
    let mut out = prog.clone();
    loop {
        let mut changed = false;
        hoist_block(&mut out.body, &mut changed);
        if !changed {
            break;
        }
    }
    out
}

fn hoist_block(block: &mut Block, changed: &mut bool) {
    let stmts = std::mem::take(&mut block.stmts);
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for mut stmt in stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            // Recurse first so inner hoists surface here in one sweep.
            for b in p.child_blocks_mut() {
                hoist_block(b, changed);
            }
            let hoisted = extract_invariant(p);
            if !hoisted.is_empty() {
                *changed = true;
                out.extend(hoisted);
            }
        }
        out.push(stmt);
    }
    block.stmts = out;
}

/// Removes and returns the leading invariant statements of the pattern's
/// entry block.
fn extract_invariant(p: &mut Pattern) -> Vec<Stmt> {
    let params: BTreeSet<Sym> = p.param_syms().into_iter().collect();
    let entry: &mut Block = match p {
        Pattern::Map(m) => &mut m.body.body,
        Pattern::MultiFold(mf) => &mut mf.pre,
        Pattern::FlatMap(fm) => &mut fm.body.body,
        Pattern::GroupByFold(g) => &mut g.pre,
    };
    let mut dependent: BTreeSet<Sym> = params;
    let stmts = std::mem::take(&mut entry.stmts);
    let mut hoisted = Vec::new();
    let mut kept = Vec::new();
    for stmt in stmts {
        let free = {
            let b = Block {
                stmts: vec![stmt.clone()],
                result: vec![],
            };
            b.free_syms()
        };
        if free.iter().any(|s| dependent.contains(s)) {
            dependent.extend(stmt.syms.iter().copied());
            kept.push(stmt);
        } else {
            hoisted.push(stmt);
        }
    }
    entry.stmts = kept;
    hoisted
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::interp::{Interpreter, Value};
    use pphw_ir::types::DType;

    #[test]
    fn hoists_invariant_scalar_out_of_map() {
        let mut b = ProgramBuilder::new("hoist");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            // `two` is invariant: it does not mention the index.
            let two = c.scalar("two", c.add(c.f32(1.0), c.f32(1.0)));
            c.mul(c.var(two), c.read(x, vec![c.var(idx[0])]))
        });
        let prog = b.finish(vec![out]);
        let hoisted = hoist_program(&prog);
        hoisted.validate().unwrap();
        // The invariant statement moved to the top level.
        assert!(hoisted.body.stmts.len() > prog.body.stmts.len());
        let r = Interpreter::new(&hoisted, &[("d", 3)])
            .run(vec![Value::tensor_f32(&[3], vec![1.0, 2.0, 3.0])])
            .unwrap();
        assert_eq!(r[0].as_f32_slice(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn keeps_dependent_stmts() {
        let mut b = ProgramBuilder::new("keep");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| {
            let v = c.scalar("v", c.read(x, vec![c.var(idx[0])]));
            c.mul(c.var(v), c.var(v))
        });
        let prog = b.finish(vec![out]);
        let hoisted = hoist_program(&prog);
        assert_eq!(hoisted.body.stmts.len(), prog.body.stmts.len());
    }
}
