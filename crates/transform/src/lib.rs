//! # pphw-transform — pattern transformations
//!
//! The tiling half of the paper: target-agnostic cleanups (fusion, CSE,
//! code motion, DCE) plus the two tiling transformations — **strip mining**
//! (Table 1) and **pattern interchange** (§4) — together with tile-copy
//! insertion and the memory-traffic cost analysis that reproduces Figure 5c.
//!
//! The usual entry point is [`tiling::tile_program`], which runs the full
//! pipeline: strip mine → split → interchange → insert copies → clean up.

pub mod config;
pub mod copies;
pub mod cost;
pub mod cse;
pub mod dce;
pub mod fusion;
pub mod interchange;
pub mod motion;
pub mod pipeline;
pub mod rewrite;
pub mod strip_mine;
pub mod tiling;

pub use config::{TileConfig, TileError};
pub use pipeline::{check_pass, deep_verifier_runs, install_deep_verifier, verification_enabled};
pub use strip_mine::strip_mine_program;
pub use tiling::{tile_program, tile_program_no_interchange};
