//! Vertical pattern fusion.
//!
//! Inlines cheap `Map` producers into their consumers: a `Map` whose body
//! is pure scalar computation is replaced at each `Read` site by its body
//! instantiated on the read indices. This decreases the reuse distance of
//! producer/consumer pairs (the paper's vertical fusion); the now-dead
//! producer is removed by DCE. The paper assumes fusion has run before
//! tiling; this pass provides that normalization for programs written in
//! unfused style.

use std::collections::BTreeMap;

use pphw_ir::block::{Block, Op, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::{MapPat, Pattern};
use pphw_ir::program::Program;
use pphw_ir::types::{Sym, SymTable};

use crate::dce::dce_block;
use crate::rewrite::{alpha_rename, subst_vars};

/// Fuses cheap map producers into consumers, then removes dead producers.
pub fn fuse_program(prog: &Program) -> Program {
    let mut out = prog.clone();
    let mut body = std::mem::take(&mut out.body);
    // Collect inlineable producers bound anywhere in the program.
    let mut producers: BTreeMap<Sym, MapPat> = BTreeMap::new();
    collect_producers(&body, &mut producers);
    inline_block(&mut body, &producers, &mut out.syms);
    dce_block(&mut body);
    out.body = body;
    out
}

fn collect_producers(block: &Block, out: &mut BTreeMap<Sym, MapPat>) {
    for stmt in &block.stmts {
        if let Op::Pattern(p) = &stmt.op {
            if let Pattern::Map(m) = p {
                let pure = m
                    .body
                    .body
                    .stmts
                    .iter()
                    .all(|s| matches!(s.op, Op::Expr(_)));
                if pure && stmt.syms.len() == 1 {
                    out.insert(stmt.sym(), m.clone());
                }
            }
            for b in p.child_blocks() {
                collect_producers(b, out);
            }
        }
    }
}

fn inline_block(block: &mut Block, producers: &BTreeMap<Sym, MapPat>, syms: &mut SymTable) {
    let stmts = std::mem::take(&mut block.stmts);
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for mut stmt in stmts {
        // Recurse into nested blocks first.
        if let Op::Pattern(p) = &mut stmt.op {
            for b in p.child_blocks_mut() {
                inline_block(b, producers, syms);
            }
        }
        // Inline reads of producer tensors appearing directly in this
        // statement's expressions.
        let mut prefix: Vec<Stmt> = Vec::new();
        rewrite_stmt_exprs(&mut stmt, producers, syms, &mut prefix);
        out.extend(prefix);
        out.push(stmt);
    }
    block.stmts = out;
}

fn rewrite_stmt_exprs(
    stmt: &mut Stmt,
    producers: &BTreeMap<Sym, MapPat>,
    syms: &mut SymTable,
    prefix: &mut Vec<Stmt>,
) {
    if let Op::Expr(e) = &mut stmt.op {
        *e = inline_expr(e, producers, syms, prefix);
    }
    if let Op::VarVec(items) = &mut stmt.op {
        for it in items {
            if let Some(g) = &mut it.guard {
                *g = inline_expr(g, producers, syms, prefix);
            }
            it.value = inline_expr(&it.value, producers, syms, prefix);
        }
    }
}

fn inline_expr(
    e: &Expr,
    producers: &BTreeMap<Sym, MapPat>,
    syms: &mut SymTable,
    prefix: &mut Vec<Stmt>,
) -> Expr {
    e.map(&mut |sub| match &sub {
        Expr::Read { tensor, index } => match producers.get(tensor) {
            Some(m) if index.len() == m.body.params.len() => {
                // Instantiate the producer body on the read indices.
                let (mut body, rename) = alpha_rename(&m.body.body, syms);
                let subst: BTreeMap<Sym, Expr> = m
                    .body
                    .params
                    .iter()
                    .zip(index)
                    .map(|(p, ix)| (*p, ix.clone()))
                    .collect();
                subst_vars(&mut body, &subst);
                let result = rename
                    .get(&m.body.body.result_sym())
                    .copied()
                    .unwrap_or(m.body.body.result_sym());
                prefix.extend(body.stmts);
                Expr::Var(result)
            }
            _ => sub,
        },
        _ => sub,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::interp::{Interpreter, Value};
    use pphw_ir::pattern::Init;
    use pphw_ir::types::{DType, ScalarType};

    #[test]
    fn fuses_map_into_fold() {
        // sum(x.map{2*e}) becomes a single fold reading x directly.
        let mut b = ProgramBuilder::new("fused");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let doubled = b.map(vec![d.clone()], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let total = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(doubled, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![total]);
        let fused = fuse_program(&prog);
        fused.validate().unwrap();
        // Producer map is gone.
        assert_eq!(fused.body.stmts.len(), 1);
        let r = Interpreter::new(&fused, &[("d", 4)])
            .run(vec![Value::tensor_f32(&[4], vec![1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        assert_eq!(r[0], Value::scalar_f32(20.0));
    }

    #[test]
    fn producer_kept_when_also_an_output() {
        let mut b = ProgramBuilder::new("keep");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let doubled = b.map(vec![d.clone()], |c, idx| {
            c.mul(c.f32(2.0), c.read(x, vec![c.var(idx[0])]))
        });
        let total = b.fold(
            "sum",
            vec![d],
            vec![],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(doubled, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        let prog = b.finish(vec![doubled, total]);
        let fused = fuse_program(&prog);
        fused.validate().unwrap();
        // Both outputs still computed correctly.
        let r = Interpreter::new(&fused, &[("d", 2)])
            .run(vec![Value::tensor_f32(&[2], vec![1.0, 2.0])])
            .unwrap();
        assert_eq!(r[0].as_f32_slice(), vec![2.0, 4.0]);
        assert_eq!(r[1], Value::scalar_f32(6.0));
    }
}
