//! Pattern interchange — the second half of tiling (§4 of the paper).
//!
//! Two reordering rules (adapted from the Collect-Reduce rule) move
//! *strided* patterns out of *unstrided* ones to increase reuse of tile
//! copies:
//!
//! 1. A scalar strided fold inside an unstrided `Map` becomes a strided
//!    fold of a `Map` (the combine function becomes elementwise over the
//!    map's domain). This is the transformation behind Table 3 (matrix
//!    multiply) and Figure 5b (k-means).
//! 2. A strided write-once `MultiFold` (the outer pattern of a tiled `Map`)
//!    inside an unstrided fold becomes a strided `MultiFold` of a scalar
//!    fold.
//!
//! [`split_multifolds`] implements the paper's split heuristic for
//! imperfectly nested patterns: a strided sub-computation inside a
//! `MultiFold`'s body is extracted into its own `Map` over the fold's
//! domain — but only when the intermediate result is statically known to
//! fit on the FPGA.

use std::collections::{BTreeMap, BTreeSet};

use pphw_ir::block::{Block, Op, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::{AccDef, AccUpdate, Lambda, MapPat, MultiFoldPat, Pattern};
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_ir::types::{Sym, SymTable, Type};

use crate::config::TileConfig;
use crate::rewrite::{alpha_rename, subst_vars};

/// Returns `true` if any extent of the domain is strided (contains a tile
/// count `d/b`).
pub fn is_strided(domain: &[Size]) -> bool {
    fn strided(s: &Size) -> bool {
        match s {
            Size::Div(_, _) => true,
            Size::Const(_) | Size::Var(_) => false,
            Size::Add(a, b) | Size::Sub(a, b) | Size::Mul(a, b) => strided(a) || strided(b),
        }
    }
    domain.iter().any(strided)
}

/// Applies interchange rules throughout the program until fixpoint.
pub fn interchange_program(prog: &Program, cfg: &TileConfig) -> Program {
    let mut out = prog.clone();
    let mut body = std::mem::take(&mut out.body);
    loop {
        let mut changed = false;
        ic_block(&mut body, &mut out.syms, cfg, &mut changed);
        if !changed {
            break;
        }
    }
    out.body = body;
    out
}

/// Applies the split heuristic throughout the program.
pub fn split_multifolds(prog: &Program, cfg: &TileConfig) -> Program {
    let mut out = prog.clone();
    let mut body = std::mem::take(&mut out.body);
    split_block(&mut body, &mut out.syms, cfg);
    out.body = body;
    out
}

#[allow(clippy::only_used_in_recursion)]
fn ic_block(block: &mut Block, syms: &mut SymTable, cfg: &TileConfig, changed: &mut bool) {
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            for b in p.child_blocks_mut() {
                ic_block(b, syms, cfg, changed);
            }
            if let Some(new_pat) = try_interchange(p, syms) {
                stmt.op = Op::Pattern(new_pat);
                *changed = true;
            }
        }
    }
}

fn try_interchange(p: &Pattern, syms: &mut SymTable) -> Option<Pattern> {
    if let Some(r) = rule1_fold_out_of_map(p, syms) {
        return Some(r);
    }
    rule2_multifold_out_of_fold(p, syms)
}

/// Rule 1: `map(D){ …; fold(S strided)(z){ … } }` ⇒
/// `fold(S)(z'){ acc => map(D){ … } }` with a tensor accumulator over `D`.
fn rule1_fold_out_of_map(p: &Pattern, syms: &mut SymTable) -> Option<Pattern> {
    let Pattern::Map(m) = p else { return None };
    if is_strided(&m.domain) {
        return None; // only move strided folds out of *unstrided* maps
    }
    // The map body must end in a strided scalar fold whose result is the
    // map's element.
    let (fold_pos, fold) = m
        .body
        .body
        .stmts
        .iter()
        .enumerate()
        .find_map(|(i, s)| match &s.op {
            Op::Pattern(Pattern::MultiFold(mf))
                if mf.is_fold() && mf.accs[0].shape.is_empty() && is_strided(&mf.domain) =>
            {
                Some((i, mf.clone()))
            }
            _ => None,
        })?;
    if m.body.body.stmts[fold_pos].sym() != m.body.body.result_sym() {
        return None;
    }
    // No other pattern statements may follow the fold.
    if m.body.body.stmts[fold_pos + 1..]
        .iter()
        .any(|s| matches!(s.op, Op::Pattern(_)))
    {
        return None;
    }

    // Partition the fold's pre-statements: those independent of the map's
    // indices stay in the new outer fold (e.g. centroid tile copies, which
    // is the entire point — they get reused across the map's domain); the
    // rest move into the inner map.
    let map_locals: BTreeSet<Sym> = {
        let mut s: BTreeSet<Sym> = m.body.params.iter().copied().collect();
        for st in &m.body.body.stmts[..fold_pos] {
            s.extend(st.syms.iter().copied());
        }
        s
    };
    let mut hoisted: Vec<Stmt> = Vec::new();
    let mut moved: Vec<Stmt> = Vec::new();
    let mut moved_syms: BTreeSet<Sym> = map_locals.clone();
    for st in &fold.pre.stmts {
        let free = stmt_free_syms(st);
        if free.iter().any(|s| moved_syms.contains(s)) {
            moved_syms.extend(st.syms.iter().copied());
            moved.push(st.clone());
        } else {
            hoisted.push(st.clone());
        }
    }

    // Build the inner map: original map-body prefix + moved fold-pre
    // statements + the fold's update body, with the scalar accumulator
    // replaced by a read of the tensor accumulator at the map index.
    let elem = fold.accs[0].elem.clone();
    let acc_tensor = syms.fresh(
        "accT",
        Type::Tensor {
            elem: elem.clone(),
            shape: m.domain.clone(),
        },
    );
    let update = &fold.updates[0];
    let mut inner_stmts: Vec<Stmt> = m.body.body.stmts[..fold_pos].to_vec();
    inner_stmts.extend(moved);
    inner_stmts.extend(update.body.stmts.clone());
    let mut inner_body = Block {
        stmts: inner_stmts,
        result: vec![update.body.result_sym()],
    };
    let idx_exprs: Vec<Expr> = m.body.params.iter().map(|s| Expr::var(*s)).collect();
    let mut subst = BTreeMap::new();
    subst.insert(
        update.acc_param,
        Expr::Read {
            tensor: acc_tensor,
            index: idx_exprs,
        },
    );
    subst_vars(&mut inner_body, &subst);

    let inner_map = Pattern::Map(MapPat {
        domain: m.domain.clone(),
        body: Lambda::new(m.body.params.clone(), inner_body),
    });
    let map_out = syms.fresh(
        "newAcc",
        Type::Tensor {
            elem: elem.clone(),
            shape: m.domain.clone(),
        },
    );
    let mut update_body = Block::new();
    update_body.push(map_out, Op::Pattern(inner_map));
    update_body.result = vec![map_out];

    Some(Pattern::MultiFold(MultiFoldPat {
        domain: fold.domain.clone(),
        accs: vec![AccDef {
            name: format!("{}_vec", fold.accs[0].name),
            shape: m.domain.clone(),
            elem,
            init: fold.accs[0].init.clone(),
        }],
        idx: fold.idx.clone(),
        pre: Block {
            stmts: hoisted,
            result: vec![],
        },
        updates: vec![AccUpdate {
            loc: m.domain.iter().map(|_| Expr::int(0)).collect(),
            shape: m.domain.clone(),
            acc_param: acc_tensor,
            body: update_body,
        }],
        combines: fold.combines.clone(),
    }))
}

/// Rule 2: an unstrided fold whose body is a strided *write-once*
/// `MultiFold` merged elementwise into the accumulator becomes a strided
/// write-once `MultiFold` whose regions are produced by scalar folds.
///
/// This matches the shape `fold(D){ i => acc => combine(acc, W_i) }` where
/// `W_i` is a tiled map (strided write-once `MultiFold`): instead of
/// producing every tile of `W_i` for each `i`, the strided tile loop moves
/// outermost and each tile is reduced over `D` once.
fn rule2_multifold_out_of_fold(p: &Pattern, syms: &mut SymTable) -> Option<Pattern> {
    let Pattern::MultiFold(f) = p else {
        return None;
    };
    if !f.is_fold() || is_strided(&f.domain) || f.accs.len() != 1 {
        return None;
    }
    let combine = f.combines[0].as_ref()?;
    let update = &f.updates[0];
    // The update body must be exactly: a strided write-once MultiFold W
    // followed by an elementwise merge map of (acc, W).
    if update.body.stmts.len() != 2 {
        return None;
    }
    let w = match &update.body.stmts[0].op {
        Op::Pattern(Pattern::MultiFold(w))
            if is_strided(&w.domain)
                && w.accs.len() == 1
                && w.combines[0].is_none()
                && !f.pre.stmts.iter().any(|_| false) =>
        {
            w.clone()
        }
        _ => None?,
    };
    let w_sym = update.body.stmts[0].sym();
    // Merge map: map(acc.shape){ r => combine(acc(r), w(r)) } — recognize
    // structurally by checking the final statement is a Map over the
    // accumulator shape whose body reads both acc and w.
    let merge_ok = match &update.body.stmts[1].op {
        Op::Pattern(Pattern::Map(mm)) => {
            let frees = mm.body.body.free_syms();
            mm.domain == f.accs[0].shape
                && frees.contains(&update.acc_param)
                && frees.contains(&w_sym)
        }
        _ => false,
    };
    if !merge_ok || update.body.stmts[1].sym() != update.body.result_sym() {
        return None;
    }

    // New structure: W' over the strided tile domain (write-once), whose
    // update body folds over f.domain producing the tile region.
    let region = w.updates[0].shape.clone();
    let elem = f.accs[0].elem.clone();

    // Inner scalar fold over f.domain for one tile: reuse W's inner tile
    // computation per element by instantiating W's update body inside.
    let (w_update_body, _) = alpha_rename(&w.updates[0].body, syms);
    let (f_pre, f_pre_map) = alpha_rename(&f.pre, syms);

    let tile_acc = syms.fresh(
        "tileAcc",
        if region.is_empty() {
            Type::Scalar(elem.clone())
        } else {
            Type::Tensor {
                elem: elem.clone(),
                shape: region.clone(),
            }
        },
    );
    // fold(f.domain)(init){ i => acc => merge(acc, tile_i) }
    let mut fold_update = Block::new();
    fold_update.stmts.extend(f_pre.stmts);
    fold_update.stmts.extend(w_update_body.stmts.clone());
    let tile_val = w_update_body.result_sym();
    let merged = crate::strip_mine::merge_region(combine, tile_acc, tile_val, &region, &elem, syms);
    let merged_sym = merged.result_sym();
    fold_update.stmts.extend(merged.stmts);
    fold_update.result = vec![merged_sym];
    let _ = f_pre_map;

    let inner_fold = Pattern::MultiFold(MultiFoldPat {
        domain: f.domain.clone(),
        accs: vec![AccDef {
            name: "tile_acc".into(),
            shape: region.clone(),
            elem: elem.clone(),
            init: f.accs[0].init.clone(),
        }],
        idx: f.idx.clone(),
        pre: Block::new(),
        updates: vec![AccUpdate {
            loc: region.iter().map(|_| Expr::int(0)).collect(),
            shape: region.clone(),
            acc_param: tile_acc,
            body: fold_update,
        }],
        combines: vec![Some(crate::strip_mine::clone_lambda(combine, syms))],
    });

    let tile_out = syms.fresh(
        "tileOut",
        if region.is_empty() {
            Type::Scalar(elem.clone())
        } else {
            Type::Tensor {
                elem: elem.clone(),
                shape: region.clone(),
            }
        },
    );
    let mut outer_pre = Block::new();
    outer_pre.push(tile_out, Op::Pattern(inner_fold));
    let outer_acc_param = syms.fresh(
        "acc",
        if region.is_empty() {
            Type::Scalar(elem.clone())
        } else {
            Type::Tensor {
                elem: elem.clone(),
                shape: region.clone(),
            }
        },
    );

    Some(Pattern::MultiFold(MultiFoldPat {
        domain: w.domain.clone(),
        accs: f.accs.clone(),
        idx: w.idx.clone(),
        pre: outer_pre,
        updates: vec![AccUpdate {
            loc: w.updates[0].loc.clone(),
            shape: region,
            acc_param: outer_acc_param,
            body: Block {
                stmts: vec![],
                result: vec![tile_out],
            },
        }],
        combines: vec![None],
    }))
}

fn stmt_free_syms(stmt: &Stmt) -> Vec<Sym> {
    let b = Block {
        stmts: vec![stmt.clone()],
        result: vec![],
    };
    b.free_syms()
}

// ---------------------------------------------------------------------
// Split heuristic
// ---------------------------------------------------------------------

fn split_block(block: &mut Block, syms: &mut SymTable, cfg: &TileConfig) {
    // Recurse first.
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            for b in p.child_blocks_mut() {
                split_block(b, syms, cfg);
            }
        }
    }
    // Then split at this level, rebuilding the statement list.
    let stmts = std::mem::take(&mut block.stmts);
    let mut out = Vec::with_capacity(stmts.len());
    for mut stmt in stmts {
        if let Op::Pattern(Pattern::MultiFold(mf)) = &mut stmt.op {
            if let Some(extracted) = try_split(mf, syms, cfg) {
                out.push(extracted);
            }
        }
        out.push(stmt);
    }
    block.stmts = out;
}

/// Extracts a strided scalar sub-computation from a `MultiFold`'s pre block
/// into a separate `Map` over the fold's domain — when the intermediate is
/// statically known to fit on chip.
fn try_split(mf: &mut MultiFoldPat, syms: &mut SymTable, cfg: &TileConfig) -> Option<Stmt> {
    // Find a strided scalar pattern in the pre block.
    let pos = mf.pre.stmts.iter().position(|s| match &s.op {
        Op::Pattern(p) => {
            is_strided(&p.domain())
                && s.syms.len() == 1
                && matches!(syms.ty(s.syms[0]), Type::Scalar(_))
        }
        _ => false,
    })?;
    let target_sym = mf.pre.stmts[pos].sym();
    let elem = match syms.ty(target_sym) {
        Type::Scalar(s) => s.clone(),
        _ => return None,
    };

    // Heuristic: the intermediate (one scalar per fold-domain index) must
    // fit on chip.
    let elems: i64 = mf
        .domain
        .iter()
        .map(|s| s.eval(&cfg.sizes).unwrap_or(i64::MAX / 8))
        .product();
    let bytes = elems.checked_mul(elem.bytes() as i64)?;
    if bytes as u64 > cfg.on_chip_budget_bytes {
        return None;
    }

    // Backward slice of the target within the pre block.
    let mut needed: BTreeSet<Sym> = stmt_free_syms(&mf.pre.stmts[pos]).into_iter().collect();
    let mut slice_idx: Vec<usize> = vec![pos];
    for i in (0..pos).rev() {
        if mf.pre.stmts[i].syms.iter().any(|s| needed.contains(s)) {
            needed.extend(stmt_free_syms(&mf.pre.stmts[i]));
            slice_idx.push(i);
        }
    }
    slice_idx.reverse();

    // Build the extracted map over the fold's domain.
    let params: Vec<Sym> = mf
        .idx
        .iter()
        .map(|_| syms.fresh("i", Type::i32()))
        .collect();
    let slice_block = Block {
        stmts: slice_idx.iter().map(|i| mf.pre.stmts[*i].clone()).collect(),
        result: vec![target_sym],
    };
    let (mut map_body, rename) = alpha_rename(&slice_block, syms);
    let idx_subst: BTreeMap<Sym, Expr> = mf
        .idx
        .iter()
        .zip(&params)
        .map(|(old, new)| (*old, Expr::var(*new)))
        .collect();
    subst_vars(&mut map_body, &idx_subst);
    map_body.result = vec![rename[&target_sym]];

    let map_out = syms.fresh(
        format!("{}s", syms.info(target_sym).name.clone()),
        Type::Tensor {
            elem,
            shape: mf.domain.clone(),
        },
    );
    let extracted = Stmt::new(
        map_out,
        Op::Pattern(Pattern::Map(MapPat {
            domain: mf.domain.clone(),
            body: Lambda::new(params, map_body),
        })),
    );

    // Remove the target from the pre block and redirect its uses to reads
    // of the extracted tensor. (Dead prefix statements are left for DCE.)
    mf.pre.stmts.remove(pos);
    let idx_exprs: Vec<Expr> = mf.idx.iter().map(|s| Expr::var(*s)).collect();
    let mut subst = BTreeMap::new();
    subst.insert(
        target_sym,
        Expr::Read {
            tensor: map_out,
            index: idx_exprs,
        },
    );
    subst_vars(&mut mf.pre, &subst);
    for u in &mut mf.updates {
        for e in &mut u.loc {
            *e = e.subst_vars(&|s| subst.get(&s).cloned());
        }
        subst_vars(&mut u.body, &subst);
    }
    Some(extracted)
}
