//! Common subexpression elimination.
//!
//! Within a block, later statements that bind an operation structurally
//! identical to an earlier one are removed and their symbol redirected to
//! the earlier binding. Particularly important after tiling, which can
//! materialize the same tile copy from several rewritten use sites.

use std::collections::BTreeMap;

use pphw_ir::block::{Block, Op};
use pphw_ir::program::Program;
use pphw_ir::types::Sym;

use crate::rewrite::rename_syms;

/// Runs CSE on every block of the program.
pub fn cse_program(prog: &Program) -> Program {
    let mut out = prog.clone();
    cse_block(&mut out.body);
    out
}

/// Runs CSE on `block` and all nested blocks.
pub fn cse_block(block: &mut Block) {
    let stmts = std::mem::take(&mut block.stmts);
    let mut seen: Vec<(Op, Sym)> = Vec::new();
    let mut replace: BTreeMap<Sym, Sym> = BTreeMap::new();
    let mut kept = Vec::with_capacity(stmts.len());

    for mut stmt in stmts {
        // Apply accumulated replacements to this statement (including its
        // nested blocks).
        if !replace.is_empty() {
            let mut tmp = Block {
                stmts: vec![stmt],
                result: vec![],
            };
            rename_syms(&mut tmp, &replace);
            let Some(renamed) = tmp.stmts.pop() else {
                continue; // rename never drops the statement
            };
            stmt = renamed;
        }
        // Only single-output, pattern-free ops are deduplicated.
        let dedupable =
            matches!(stmt.op, Op::Expr(_) | Op::Slice(_) | Op::Copy(_)) && stmt.syms.len() == 1;
        if dedupable {
            if let Some((_, orig)) = seen.iter().find(|(op, _)| *op == stmt.op) {
                replace.insert(stmt.sym(), *orig);
                continue; // drop the duplicate
            }
            seen.push((stmt.op.clone(), stmt.sym()));
        }
        kept.push(stmt);
    }
    block.stmts = kept;
    if !replace.is_empty() {
        let mut results = std::mem::take(&mut block.result);
        for r in &mut results {
            if let Some(n) = replace.get(r) {
                *r = *n;
            }
        }
        block.result = results;
    }
    // Recurse into nested blocks.
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            for b in p.child_blocks_mut() {
                cse_block(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::block::{CopyOp, SliceDim};
    use pphw_ir::expr::Expr;
    use pphw_ir::size::Size;
    use pphw_ir::types::{DType, SymTable, Type};

    #[test]
    fn dedupes_identical_exprs() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::f32());
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let c = syms.fresh("c", Type::f32());
        let mut block = Block::new();
        block.push(a, Op::Expr(Expr::var(x).add(Expr::f32(1.0))));
        block.push(b, Op::Expr(Expr::var(x).add(Expr::f32(1.0))));
        block.push(c, Op::Expr(Expr::var(a).add(Expr::var(b))));
        block.result = vec![c];
        cse_block(&mut block);
        assert_eq!(block.stmts.len(), 2);
        match &block.stmts[1].op {
            Op::Expr(e) => assert_eq!(*e, Expr::var(a).add(Expr::var(a))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dedupes_identical_copies() {
        let mut syms = SymTable::new();
        let x = syms.fresh("x", Type::tensor(DType::F32, vec![Size::var("n")]));
        let t1 = syms.fresh("t1", Type::tensor(DType::F32, vec![Size::from(4)]));
        let t2 = syms.fresh("t2", Type::tensor(DType::F32, vec![Size::from(4)]));
        let copy = || {
            Op::Copy(CopyOp {
                tensor: x,
                dims: vec![SliceDim::Window {
                    start: Expr::int(0),
                    len: Size::from(4),
                }],
                reuse: 1,
            })
        };
        let mut block = Block::new();
        block.push(t1, copy());
        block.push(t2, copy());
        block.result = vec![t2];
        cse_block(&mut block);
        assert_eq!(block.stmts.len(), 1);
        assert_eq!(block.result, vec![t1]);
    }

    #[test]
    fn different_ops_not_merged() {
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let mut block = Block::new();
        block.push(a, Op::Expr(Expr::f32(1.0)));
        block.push(b, Op::Expr(Expr::f32(2.0)));
        block.result = vec![a, b];
        cse_block(&mut block);
        assert_eq!(block.stmts.len(), 2);
    }
}
